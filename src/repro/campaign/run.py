"""The campaign pipeline: plan → evaluate → execute → report.

:func:`evaluate` expands a :class:`~repro.campaign.spec.CampaignSpec`
into cells, diffs them against the campaign state file (what already
ran?) and the result cache (of the cells left, which seeds are already
content-addressed?), and returns a :class:`CampaignPlan` — the exact
work a run would do, without doing any of it.  Cache prediction
replicates :func:`repro.experiments.parallel.run_seeds`'s key routing
bit for bit (engine keys with the watchdog folded in when enabled;
fastpath keys in their ``("fastpath", ...)`` namespace when the cell
qualifies), so ``--dry-run``'s hit/miss counts are the ones the real
run observes.

:func:`run_campaign` executes the plan: missing cells go to a pluggable
:class:`~repro.campaign.executor.CellExecutor` in retry rounds under the
shared :class:`repro.retrypolicy.RetryPolicy`; a cell that fails every
attempt is *quarantined* — durably recorded, reported, and skipped on
resume — so one deterministically broken cell degrades the campaign by
one cell instead of aborting the grid.  Every state transition is one
atomic append to the state file, so a SIGKILL at any moment loses at
most the in-flight cell; resuming re-runs exactly the cells without a
durable ``cell-done`` record and nothing else (the serial executor
records cells one by one, making completions *exactly-once*; the pool
executor is at-least-once across a crash, with the result cache
absorbing any recompute).

Campaigns leave the same audit trail as everything else: one
``campaign-cell`` ledger record per executed cell and one ``campaign``
summary record per run, in the standard run ledger.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.cache import ResultCache, as_cache, run_key, run_key_batch
from repro.campaign.executor import (
    CellExecutor,
    CellFailure,
    CellResult,
    CellTask,
    LocalPoolExecutor,
    SerialExecutor,
)
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.state import CampaignState, StateView
from repro.experiments.parallel import SeedDigest
from repro.obs.report import jsonable
from repro.retrypolicy import RetryPolicy
from repro.sim.watchdog import Watchdog

__all__ = [
    "QUARANTINE_EXIT_CODE",
    "CampaignPlan",
    "CampaignReport",
    "CellPlan",
    "QuarantineEntry",
    "evaluate",
    "run_campaign",
]

#: Process exit code for a campaign that completed *with* quarantined
#: cells: distinct from success (0) and from hard errors (1/2), so CI
#: can tell "degraded but done" from "did not finish".
QUARANTINE_EXIT_CODE = 3

ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class CellPlan:
    """One cell's standing in the plan: identity plus predicted work."""

    index: int
    key: str
    label: str
    status: str  # "done" | "quarantined" | "missing"
    cache_hits: int
    cache_misses: int


@dataclass
class CampaignPlan:
    """What a run would do: every cell classified, nothing executed."""

    name: str
    spec_digest: str
    cells: List[CellPlan] = field(default_factory=list)

    def by_status(self, status: str) -> List[CellPlan]:
        """The plan rows with the given status."""
        return [c for c in self.cells if c.status == status]

    @property
    def counts(self) -> Dict[str, int]:
        """Cell counts by status plus predicted cache hits/misses."""
        return {
            "cells": len(self.cells),
            "done": len(self.by_status("done")),
            "quarantined": len(self.by_status("quarantined")),
            "missing": len(self.by_status("missing")),
            "cache_hits": sum(
                c.cache_hits for c in self.by_status("missing")
            ),
            "cache_misses": sum(
                c.cache_misses for c in self.by_status("missing")
            ),
        }


def _predict_cell_cache(
    cell: CampaignCell, cache_obj: Optional[ResultCache]
) -> Tuple[int, int]:
    """(hits, misses) the real run would observe for this cell.

    Mirrors ``run_seeds``'s routing exactly: fastpath qualification
    first (its keys live in the ``("fastpath", ...)`` namespace), the
    engine path otherwise (watchdog folded into keys when enabled).  A
    cell that cannot even build (poison, bad knobs) predicts all-miss —
    the run will fail it, not serve it from cache.
    """
    n = len(cell.seeds)
    if cache_obj is None:
        return 0, n
    try:
        instance = cell.workload()
        faults = cell.adversary.faults()
        jammer = cell.adversary.jammer()
        watchdog = (
            Watchdog(max_seconds=cell.timeout_seconds)
            if cell.timeout_seconds is not None
            else None
        )
        wd = (
            watchdog
            if watchdog is not None and watchdog.enabled
            else None
        )
        keys: Optional[List[str]] = None
        if cell.fastpath != "off":
            from repro.fastpath.batched import KERNEL_VERSION, plan_fastpath

            plan, _reason = plan_fastpath(
                instance,
                cell.protocol(instance),
                jammer=jammer,
                faults=faults,
                watchdog=watchdog,
                check_invariants=False,
            )
            if plan is not None:
                extra = (
                    "fastpath", plan.kind, KERNEL_VERSION, plan.watchdog,
                )
                keys = run_key_batch(
                    instance=plan.instance,
                    protocol=cell.protocol,
                    seeds=cell.seeds,
                    jammer=jammer,
                    faults=faults,
                    extra=extra,
                )
            elif cell.fastpath == "on":
                # The run would raise FastpathUnavailableError and the
                # cell would fail: nothing gets served from cache.
                return 0, n
        if keys is None:
            wd_extra = ("watchdog", wd) if wd is not None else None
            keys = [
                run_key(
                    instance=instance,
                    protocol=cell.protocol,
                    jammer=jammer,
                    seed=s,
                    faults=faults,
                    extra=wd_extra,
                )
                for s in cell.seeds
            ]
        hits = 0
        for s, key in zip(cell.seeds, keys):
            found = cache_obj.get(key)
            if isinstance(found, SeedDigest) and found.seed == s:
                hits += 1
        return hits, n - hits
    except Exception:
        return 0, n


def evaluate(
    spec: CampaignSpec, *, view: Optional[StateView] = None
) -> CampaignPlan:
    """Diff the spec's grid against state and cache; execute nothing.

    ``view`` lets a caller that already loaded (and header-checked) the
    state reuse it; by default the state file is read fresh — a missing
    file is simply an empty campaign.  Raises
    :class:`~repro.campaign.state.CampaignStateError` via
    ``ensure-header`` semantics only when the caller asks for it; plain
    evaluation never writes.
    """
    if view is None:
        view = CampaignState(spec.state_path).load()
    cache_path = spec.cache_path
    cache_obj = as_cache(str(cache_path)) if cache_path is not None else None
    plan = CampaignPlan(name=spec.name, spec_digest=spec.digest())
    for cell in spec.cells():
        key = cell.key()
        if key in view.done:
            status, hits, misses = "done", 0, 0
        elif key in view.quarantined:
            status, hits, misses = "quarantined", 0, 0
        else:
            status = "missing"
            hits, misses = _predict_cell_cache(cell, cache_obj)
        plan.cells.append(
            CellPlan(
                index=cell.index,
                key=key,
                label=cell.label(),
                status=status,
                cache_hits=hits,
                cache_misses=misses,
            )
        )
    return plan


@dataclass
class QuarantineEntry:
    """One quarantined cell as reported (durable record distilled)."""

    key: str
    label: str
    attempts: int
    error: str


@dataclass
class CampaignReport:
    """The outcome of one :func:`run_campaign` call (or dry run)."""

    name: str
    spec_digest: str
    dry_run: bool
    counts: Dict[str, int] = field(default_factory=dict)
    executed: List[CellResult] = field(default_factory=list)
    quarantined: List[QuarantineEntry] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def exit_code(self) -> int:
        """``0`` clean, :data:`QUARANTINE_EXIT_CODE` if any quarantine."""
        return QUARANTINE_EXIT_CODE if self.counts.get("quarantined") else 0

    def render(self) -> str:
        """Human-readable summary, one block."""
        c = self.counts
        head = "campaign plan" if self.dry_run else "campaign run"
        lines = [
            f"{head}: {self.name}  (grid {self.spec_digest[:12]})",
            (
                f"  cells: {c.get('cells', 0)}  done: {c.get('done', 0)}  "
                f"quarantined: {c.get('quarantined', 0)}  "
                f"missing: {c.get('missing', 0)}"
            ),
            (
                f"  cache: {c.get('cache_hits', 0)} hit(s), "
                f"{c.get('cache_misses', 0)} miss(es) predicted"
            ),
        ]
        if not self.dry_run:
            lines.append(
                f"  executed: {len(self.executed)} cell(s) in "
                f"{self.wall_seconds:.2f}s"
            )
        for q in self.quarantined:
            tail = q.error.strip().splitlines()[-1] if q.error else ""
            lines.append(
                f"  quarantined: {q.label} after {q.attempts} "
                f"attempt(s): {tail}"
            )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """Strict-JSON dict (non-finite floats become ``null``)."""
        return jsonable(
            {
                "name": self.name,
                "spec_digest": self.spec_digest,
                "dry_run": self.dry_run,
                "counts": dict(self.counts),
                "executed": [
                    {
                        "key": r.key,
                        "index": r.index,
                        "label": r.label,
                        "summary": r.summary,
                        "wall_seconds": r.wall_seconds,
                    }
                    for r in self.executed
                ],
                "quarantined": [
                    {
                        "key": q.key,
                        "label": q.label,
                        "attempts": q.attempts,
                        "error": q.error,
                    }
                    for q in self.quarantined
                ],
                "exit_code": self.exit_code,
            }
        )


def _make_executor(spec: CampaignSpec) -> CellExecutor:
    if spec.executor == "serial" or spec.workers == 1:
        return SerialExecutor()
    return LocalPoolExecutor(spec.workers)


def _ledger_cell_record(spec: CampaignSpec, result: CellResult) -> None:
    if spec.ledger_path is None:
        return
    from repro.obs.ledger import RunLedger, RunRecord

    RunLedger(spec.ledger_path).append(
        RunRecord(
            run_id="",
            kind="campaign-cell",
            started=time.time() - result.wall_seconds,
            wall_seconds=result.wall_seconds,
            status="ok",
            config={
                "campaign": spec.name,
                "cell": result.label,
                "index": result.index,
            },
            config_digest=result.key,
            counters=jsonable(dict(result.summary)),
        )
    )


def _ledger_campaign_record(
    spec: CampaignSpec, report: CampaignReport, started: float
) -> None:
    if spec.ledger_path is None:
        return
    from repro.obs.ledger import RunLedger, RunRecord

    RunLedger(spec.ledger_path).append(
        RunRecord(
            run_id="",
            kind="campaign",
            started=started,
            wall_seconds=report.wall_seconds,
            status="degraded" if report.quarantined else "ok",
            config={
                "name": spec.name,
                "spec_digest": report.spec_digest,
                "executor": spec.executor,
                "workers": spec.workers,
            },
            config_digest=report.spec_digest,
            counters={k: int(v) for k, v in report.counts.items()},
        )
    )


def run_campaign(
    spec: CampaignSpec,
    *,
    dry_run: bool = False,
    progress: Optional[ProgressCallback] = None,
    executor: Optional[CellExecutor] = None,
) -> CampaignReport:
    """Run (or, with ``dry_run``, only plan) a campaign to completion.

    The run is idempotent and resumable: cells with a durable
    ``cell-done`` record are skipped, quarantined cells stay
    quarantined, and the per-cell attempt budget (``1 + spec.retries``)
    survives crashes — a deterministically failing cell converges to
    quarantine across any number of interruptions.  ``dry_run`` writes
    nothing and executes nothing; it returns the plan's numbers.

    ``progress(done, total)`` is called after every cell executed in
    this process (``total`` = missing cells at entry).

    Chaos: when ``spec.kill_after_cells`` is set, the orchestrator
    SIGKILLs *itself* after that many cells have been durably recorded
    — the crash-drill hook the kill/resume tests use.  State appends
    happen before the kill check, so the drill only ever loses
    not-yet-recorded work, exactly like a real crash.
    """
    t0 = time.perf_counter()
    state = CampaignState(spec.state_path)
    if dry_run:
        plan = evaluate(spec)
        return CampaignReport(
            name=spec.name,
            spec_digest=plan.spec_digest,
            dry_run=True,
            counts=plan.counts,
            wall_seconds=time.perf_counter() - t0,
        )

    view = state.ensure_header(name=spec.name, spec_digest=spec.digest())
    plan = evaluate(spec, view=view)
    started_at = time.time()
    cells_by_key = {c.key(): c for c in spec.cells()}
    attempts: Dict[str, int] = dict(view.attempts)
    budget = 1 + spec.retries
    cache_knob = (
        str(spec.cache_path) if spec.cache_path is not None else None
    )
    exec_ = executor if executor is not None else _make_executor(spec)
    policy = RetryPolicy(retries=spec.retries, base_backoff=spec.retry_backoff)

    report = CampaignReport(
        name=spec.name, spec_digest=plan.spec_digest, dry_run=False
    )
    # Prior quarantines stay reported on every run: a resumed campaign's
    # report must not hide cells an earlier attempt gave up on.
    for rec in view.quarantined.values():
        report.quarantined.append(
            QuarantineEntry(
                key=str(rec.get("key", "")),
                label=str(rec.get("label", "")),
                attempts=int(rec.get("attempts", 0)),
                error=str(rec.get("error", "")),
            )
        )

    pending: List[CellTask] = []
    for row in plan.by_status("missing"):
        cell = cells_by_key[row.key]
        task = CellTask(key=row.key, cell=cell, cache=cache_knob)
        if attempts.get(row.key, 0) >= budget:
            # Prior (crashed) runs already burned the whole budget
            # without a completion: quarantine without another attempt.
            msg = (
                f"retry budget exhausted by {attempts[row.key]} prior "
                f"attempt(s) with no completion (crashed runs?)"
            )
            state.record_quarantined(
                row.key,
                label=row.label,
                attempts=attempts[row.key],
                error=msg,
            )
            report.quarantined.append(
                QuarantineEntry(
                    key=row.key,
                    label=row.label,
                    attempts=attempts[row.key],
                    error=msg,
                )
            )
        else:
            pending.append(task)

    total_todo = len(pending)
    done_now = 0

    def dispatched(tasks: Iterable[CellTask]) -> Iterable[CellTask]:
        # Attempts become durable exactly when a task is handed to the
        # executor (the serial executor pulls lazily, one per cell; the
        # pool executor pulls the whole round at submit time).
        for t in tasks:
            attempts[t.key] = attempts.get(t.key, 0) + 1
            state.record_attempt(t.key, attempts[t.key])
            yield t

    round_no = 0
    while pending:
        failures: Dict[str, CellFailure] = {}
        round_tasks = pending
        for outcome in exec_.map_unordered(dispatched(round_tasks)):
            if isinstance(outcome, CellResult):
                state.record_done(
                    outcome.key,
                    label=outcome.label,
                    summary=jsonable(dict(outcome.summary)),
                    wall_seconds=outcome.wall_seconds,
                )
                _ledger_cell_record(spec, outcome)
                report.executed.append(outcome)
                done_now += 1
                if progress is not None:
                    progress(done_now, total_todo)
                if (
                    spec.kill_after_cells is not None
                    and done_now >= spec.kill_after_cells
                ):
                    os.kill(os.getpid(), signal.SIGKILL)
            else:
                failures[outcome.key] = outcome
        if not failures:
            break
        retry_tasks: List[CellTask] = []
        for t in round_tasks:
            failure = failures.get(t.key)
            if failure is None:
                continue
            if attempts.get(t.key, 0) >= budget:
                state.record_quarantined(
                    t.key,
                    label=failure.label,
                    attempts=attempts[t.key],
                    error=failure.error,
                )
                report.quarantined.append(
                    QuarantineEntry(
                        key=t.key,
                        label=failure.label,
                        attempts=attempts[t.key],
                        error=failure.error,
                    )
                )
            else:
                retry_tasks.append(t)
        pending = retry_tasks
        if pending:
            round_no += 1
            policy.sleep(round_no)
    exec_.close()

    final_view = state.load()
    final_plan = evaluate(spec, view=final_view)
    report.counts = final_plan.counts
    report.wall_seconds = time.perf_counter() - t0
    _ledger_campaign_record(spec, report, started_at)
    return report
