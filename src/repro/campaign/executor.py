"""Pluggable campaign executors: dispatch cells, never lose an outcome.

The orchestrator (:mod:`repro.campaign.run`) speaks to execution
through one narrow interface — :meth:`CellExecutor.map_unordered`
takes :class:`CellTask` objects and yields a :class:`CellResult` or
:class:`CellFailure` for *every* task, in completion order.  Two
implementations ship today:

* :class:`SerialExecutor` — in-process, deterministic order.  Used by
  tests and crash drills (a SIGKILL lands between cells, never inside a
  half-tracked pool).
* :class:`LocalPoolExecutor` — a process pool.  A worker exception
  comes back as a :class:`CellFailure` (the worker entry point never
  raises); a worker dying *hard* breaks the pool, and every cell whose
  result had not yet arrived is reported as a ``pool-broken`` failure —
  the orchestrator's retry loop takes it from there.

The interface deliberately admits remote executors later (a cell task
is a small picklable value object; an implementation that ships tasks
to another machine only has to yield the same outcome types), which is
why the orchestrator never touches pools directly.

Failures are *values*, not exceptions: campaigns degrade cell by cell
(retry, then quarantine) instead of aborting the grid, and that only
works if every way a cell can die is representable as data.
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Union

from repro.campaign.spec import CampaignCell
from repro.experiments.parallel import aggregate, run_seeds
from repro.sim.watchdog import Watchdog

__all__ = [
    "CellExecutor",
    "CellFailure",
    "CellOutcome",
    "CellResult",
    "CellTask",
    "LocalPoolExecutor",
    "SerialExecutor",
    "execute_cell",
]


@dataclass(frozen=True)
class CellTask:
    """One dispatchable unit: a cell plus run-local knobs.

    Everything here is picklable (the cell carries builders, the cache
    travels as a path), so a task can cross a process — or, later, a
    machine — boundary.
    """

    key: str
    cell: CampaignCell
    cache: Optional[str] = None
    check_invariants: bool = False


@dataclass(frozen=True)
class CellResult:
    """A cell that completed: its aggregate outcome."""

    key: str
    index: int
    label: str
    summary: Dict[str, object]
    wall_seconds: float


@dataclass(frozen=True)
class CellFailure:
    """A cell that did not complete, as data.

    ``kind`` separates a worker-side exception (``"exception"``, with
    the formatted traceback in ``error``) from a pool that broke before
    the result arrived (``"pool-broken"`` — the cell may not even have
    started).
    """

    key: str
    index: int
    label: str
    error: str
    kind: str = "exception"


#: What :meth:`CellExecutor.map_unordered` yields per task.
CellOutcome = Union[CellResult, CellFailure]


def execute_cell(task: CellTask) -> CellOutcome:
    """Run one cell to completion; never raises.

    This is the worker entry point: it builds the workload, resolves
    the protocol, runs every seed through
    :func:`repro.experiments.parallel.run_seeds` (serially — campaign
    parallelism lives *across* cells), and returns the aggregate.  Any
    exception — a poison workload, a protocol bug, a watchdog-less
    hang cut by the per-cell timeout — becomes a :class:`CellFailure`
    the orchestrator can retry or quarantine.
    """
    cell = task.cell
    started = time.perf_counter()
    try:
        watchdog = (
            Watchdog(max_seconds=cell.timeout_seconds)
            if cell.timeout_seconds is not None
            else None
        )
        digests = run_seeds(
            cell.workload,
            cell.protocol,
            cell.seeds,
            faults=cell.adversary.faults(),
            jammer=cell.adversary.jammer(),
            watchdog=watchdog,
            check_invariants=task.check_invariants,
            processes=1,
            cache=task.cache,
            retries=0,
            fastpath=cell.fastpath,
        )
        summary = dict(aggregate(digests))
        # by_window is bulky and dict-keyed by int (not JSON-clean);
        # the per-cell record keeps the flat outcome numbers only.
        summary.pop("by_window", None)
        return CellResult(
            key=task.key,
            index=cell.index,
            label=cell.label(),
            summary=summary,
            wall_seconds=time.perf_counter() - started,
        )
    except Exception:
        return CellFailure(
            key=task.key,
            index=cell.index,
            label=cell.label(),
            error=traceback.format_exc(),
            kind="exception",
        )


class CellExecutor:
    """Executor interface: every task in, exactly one outcome out."""

    def map_unordered(
        self, tasks: Iterable[CellTask]
    ) -> Iterator[CellOutcome]:
        """Yield one :data:`CellOutcome` per task, in completion order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (default: nothing to release)."""


class SerialExecutor(CellExecutor):
    """Run cells one at a time, in order, in this process."""

    def map_unordered(
        self, tasks: Iterable[CellTask]
    ) -> Iterator[CellOutcome]:
        """Yield each task's outcome immediately after it runs."""
        for task in tasks:
            yield execute_cell(task)


class LocalPoolExecutor(CellExecutor):
    """Run cells across a local process pool.

    The pool is created per :meth:`map_unordered` call (the orchestrator
    calls once per retry round), so a pool broken by a dying worker
    never poisons the next round.
    """

    def __init__(self, workers: int = 2) -> None:
        self.workers = max(int(workers), 1)

    def map_unordered(
        self, tasks: Iterable[CellTask]
    ) -> Iterator[CellOutcome]:
        """Yield outcomes as cells finish; account for every task.

        On :class:`BrokenProcessPool`, tasks whose outcome never
        arrived are yielded as ``pool-broken`` :class:`CellFailure`\\ s —
        a cell that actually finished but whose result was lost with
        the pool simply re-runs next round (cells are deterministic, and
        the result cache absorbs the recompute).
        """
        tasks = list(tasks)
        if not tasks:
            return
        delivered = set()
        broken = False
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(tasks))
            ) as pool:
                futures = {
                    pool.submit(execute_cell, t): t for t in tasks
                }
                for fut in concurrent.futures.as_completed(futures):
                    outcome = fut.result()
                    delivered.add(futures[fut].key)
                    yield outcome
        except BrokenProcessPool:
            broken = True
        if broken:
            for t in tasks:
                if t.key not in delivered:
                    yield CellFailure(
                        key=t.key,
                        index=t.cell.index,
                        label=t.cell.label(),
                        error=(
                            "process pool broke before this cell's "
                            "result was received (worker died)"
                        ),
                        kind="pool-broken",
                    )
