"""Declarative campaign specs: a grid of cells compiled from YAML/JSON.

A *campaign* is the cross product ``workloads x protocols x adversaries``
with a shared seed range — the whole measurement grid behind a figure or
a claim, written down declaratively so it can be planned, diffed against
caches, executed, killed, and resumed without anyone re-typing CLI
flags.  This module owns the spec side of that pipeline:

* :class:`CampaignSpec` — the parsed, validated spec
  (:meth:`CampaignSpec.from_file` reads YAML or JSON by suffix);
* :meth:`CampaignSpec.cells` — the expanded grid, one
  :class:`CampaignCell` per combination, in a deterministic order;
* :meth:`CampaignSpec.digest` — a content address of everything that
  defines cell identity, written into the campaign state file's header
  so a resume against an edited grid is refused instead of silently
  mixing two campaigns.

Cells carry *builders*, not built objects: :class:`GridWorkload` and
:class:`GridProtocol` are frozen, picklable dataclasses that resolve
names through :mod:`repro.registry` when called.  That keeps cells
cheap to enumerate, safe to ship to worker processes, and — crucially —
digestible even when building would fail: a cell whose workload raises
still has a stable key, so it can be retried, quarantined, and reported
like any other (see the ``poison`` chaos workload below).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.cache import stable_digest
from repro.channel.jamming import Jammer
from repro.errors import InvalidParameterError
from repro.experiments.robustness import FAULT_FAMILIES, fault_plan
from repro.faults.plan import FaultPlan
from repro.registry import PROTOCOLS, WORKLOADS, build_workload, protocol_factory
from repro.sim.engine import ProtocolFactory
from repro.sim.instance import Instance

__all__ = [
    "SPEC_SCHEMA",
    "AdversarySpec",
    "CampaignCell",
    "CampaignSpec",
    "GridProtocol",
    "GridWorkload",
    "POISON_WORKLOAD",
]

#: Version of the spec schema (folded into :meth:`CampaignSpec.digest`).
SPEC_SCHEMA = 1

#: Reserved workload name that fails deterministically when built.
#:
#: Campaign crash tests need a cell that *always* fails so quarantine
#: can be exercised end to end; ``poison`` is that cell.  It is handled
#: here — not in :mod:`repro.registry` — so ordinary CLI users never see
#: it among the real workloads.
POISON_WORKLOAD = "poison"


def _items(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """A mapping as a sorted, hashable, digest-stable tuple of pairs."""
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class GridWorkload:
    """A named workload plus its knobs, as a picklable builder.

    Calling it resolves the name through
    :func:`repro.registry.build_workload`; the reserved
    :data:`POISON_WORKLOAD` name raises instead (deterministically), so
    campaigns can carry an always-failing cell for chaos tests.
    """

    items: Tuple[Tuple[str, Any], ...]

    @property
    def params(self) -> Dict[str, Any]:
        """The knob mapping this builder was declared with."""
        return dict(self.items)

    @property
    def name(self) -> str:
        """The workload's registry name."""
        return str(self.params.get("workload", "batch"))

    def __call__(self) -> Instance:
        if self.name == POISON_WORKLOAD:
            raise RuntimeError(
                "poison workload: this cell fails deterministically "
                "(campaign chaos knob)"
            )
        return build_workload(self.params)


@dataclass(frozen=True)
class GridProtocol:
    """A named protocol plus shared knobs, as a picklable factory builder.

    Calling it with an instance resolves the name through
    :func:`repro.registry.protocol_factory` — the same dispatch the CLI
    uses — so a campaign's ``"punctual"`` is byte-identical to the CLI's.
    """

    name: str
    items: Tuple[Tuple[str, Any], ...]

    @property
    def params(self) -> Dict[str, Any]:
        """The knob mapping this builder was declared with."""
        return dict(self.items)

    def __call__(self, instance: Instance) -> ProtocolFactory:
        return protocol_factory(self.name, self.params, instance)


@dataclass(frozen=True)
class AdversarySpec:
    """One adversary column of the grid: a fault family at a severity.

    ``severity <= 0`` is the clean channel (no faults, label ``none``);
    otherwise the plan comes from
    :func:`repro.experiments.robustness.fault_plan`, so campaign
    adversaries mean exactly what degradation profiles mean.
    """

    family: str = "jam"
    severity: float = 0.0

    @property
    def label(self) -> str:
        """Short human-readable name (``none`` or ``family@severity``)."""
        if self.severity <= 0.0:
            return "none"
        return f"{self.family}@{self.severity:g}"

    def faults(self) -> Optional[FaultPlan]:
        """The cell's :class:`FaultPlan`, or ``None`` on a clean channel."""
        if self.severity <= 0.0:
            return None
        return fault_plan(self.family, self.severity)

    def jammer(self) -> Optional[Jammer]:
        """Always ``None``: campaign adversaries travel inside the plan."""
        return None


@dataclass(frozen=True)
class CampaignCell:
    """One cell of the expanded grid: everything one run needs.

    The cell's :meth:`key` digests the *builders* (workload, protocol,
    adversary, seeds, fastpath) — not built objects — so it is stable
    across processes and defined even for cells that cannot build.
    """

    index: int
    workload: GridWorkload
    protocol: GridProtocol
    adversary: AdversarySpec
    seeds: Tuple[int, ...]
    fastpath: str = "off"
    timeout_seconds: Optional[float] = None

    def label(self) -> str:
        """Human-readable cell name for reports and logs."""
        return (
            f"{self.workload.name}/{self.protocol.name}"
            f"/{self.adversary.label}"
        )

    def key(self) -> str:
        """Content address of this cell within its campaign."""
        return stable_digest(
            (
                "campaign-cell",
                SPEC_SCHEMA,
                self.workload,
                self.protocol,
                self.adversary,
                self.seeds,
                self.fastpath,
                self.timeout_seconds,
            )
        )


def _as_workload(entry: Union[str, Mapping[str, Any]], knobs: Mapping[str, Any]) -> GridWorkload:
    if isinstance(entry, str):
        merged: Dict[str, Any] = dict(knobs)
        merged["workload"] = entry
    elif isinstance(entry, Mapping):
        merged = dict(knobs)
        merged.update(entry)
        merged.setdefault("workload", "batch")
    else:
        raise InvalidParameterError(
            f"workload entries must be names or mappings, got {entry!r}"
        )
    name = str(merged["workload"])
    if name != POISON_WORKLOAD and name not in WORKLOADS:
        raise InvalidParameterError(
            f"unknown workload: {name} (choices: {sorted(WORKLOADS)})"
        )
    return GridWorkload(items=_items(merged))


def _as_protocol(entry: Union[str, Mapping[str, Any]], knobs: Mapping[str, Any]) -> GridProtocol:
    if isinstance(entry, str):
        name, merged = entry, dict(knobs)
    elif isinstance(entry, Mapping):
        merged = dict(knobs)
        merged.update(entry)
        if "protocol" not in merged:
            raise InvalidParameterError(
                f"protocol mapping entries need a 'protocol' key: {entry!r}"
            )
        name = str(merged.pop("protocol"))
    else:
        raise InvalidParameterError(
            f"protocol entries must be names or mappings, got {entry!r}"
        )
    if name not in PROTOCOLS:
        raise InvalidParameterError(
            f"unknown protocol: {name} (choices: {sorted(PROTOCOLS)})"
        )
    return GridProtocol(name=name, items=_items(merged))


def _as_adversary(entry: Union[str, Mapping[str, Any]]) -> AdversarySpec:
    if entry in (None, "none", "clean"):
        return AdversarySpec()
    if isinstance(entry, Mapping):
        family = str(entry.get("family", "jam"))
        severity = float(entry.get("severity", 0.0))
    elif isinstance(entry, str):
        # "jam@0.5" shorthand
        if "@" not in entry:
            raise InvalidParameterError(
                f"adversary strings are 'none' or 'family@severity', "
                f"got {entry!r}"
            )
        family, _, sev = entry.partition("@")
        severity = float(sev)
    else:
        raise InvalidParameterError(
            f"adversary entries must be strings or mappings, got {entry!r}"
        )
    if severity > 0.0 and family not in FAULT_FAMILIES:
        raise InvalidParameterError(
            f"unknown fault family {family!r} "
            f"(choices: {sorted(FAULT_FAMILIES)})"
        )
    if not 0.0 <= severity <= 1.0:
        raise InvalidParameterError(
            f"severity must be in [0, 1], got {severity}"
        )
    return AdversarySpec(family=family, severity=severity)


@dataclass
class CampaignSpec:
    """A validated campaign: the grid plus how to run it.

    Grid-defining fields (workloads, protocols, adversaries, seeds,
    fastpath, timeout) are folded into :meth:`digest`; execution knobs
    (executor, workers, retries, paths, chaos) are not, so a campaign
    can be resumed with a different worker count or retry budget without
    tripping the state file's drift check.
    """

    name: str
    workloads: Tuple[GridWorkload, ...]
    protocols: Tuple[GridProtocol, ...]
    adversaries: Tuple[AdversarySpec, ...] = (AdversarySpec(),)
    seeds: int = 4
    seed_base: int = 0
    fastpath: str = "off"
    timeout_seconds: Optional[float] = None
    executor: str = "local"
    workers: int = 2
    retries: int = 1
    retry_backoff: float = 0.25
    cache: Optional[str] = None
    state: Optional[str] = None
    ledger: Optional[str] = None
    kill_after_cells: Optional[int] = None
    base_dir: Path = field(default_factory=Path)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise InvalidParameterError("campaign needs at least one workload")
        if not self.protocols:
            raise InvalidParameterError("campaign needs at least one protocol")
        if not self.adversaries:
            raise InvalidParameterError(
                "campaign needs at least one adversary (use 'none')"
            )
        if self.seeds < 1:
            raise InvalidParameterError(
                f"seeds must be >= 1, got {self.seeds}"
            )
        if self.fastpath not in ("off", "auto", "on"):
            raise InvalidParameterError(
                f"fastpath must be 'off', 'auto', or 'on', "
                f"got {self.fastpath!r}"
            )
        if self.executor not in ("local", "serial"):
            raise InvalidParameterError(
                f"executor must be 'local' or 'serial', got {self.executor!r}"
            )
        if self.workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.retries < 0:
            raise InvalidParameterError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise InvalidParameterError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.kill_after_cells is not None and self.kill_after_cells < 1:
            raise InvalidParameterError(
                f"kill_after_cells must be >= 1, got {self.kill_after_cells}"
            )

    # -- paths ---------------------------------------------------------

    def _resolve(self, path: str) -> Path:
        p = Path(path)
        return p if p.is_absolute() else self.base_dir / p

    @property
    def state_path(self) -> Path:
        """Where the resumable campaign state lives (JSONL)."""
        if self.state is not None:
            return self._resolve(self.state)
        return self.base_dir / f"{self.name}.campaign.jsonl"

    @property
    def cache_path(self) -> Optional[Path]:
        """The result-cache root, or ``None`` for no caching."""
        return self._resolve(self.cache) if self.cache is not None else None

    @property
    def ledger_path(self) -> Optional[Path]:
        """The run-ledger path, or ``None`` to skip ledger records."""
        return self._resolve(self.ledger) if self.ledger is not None else None

    # -- grid ----------------------------------------------------------

    def seed_range(self) -> Tuple[int, ...]:
        """The seeds every cell runs."""
        return tuple(range(self.seed_base, self.seed_base + self.seeds))

    def cells(self) -> List[CampaignCell]:
        """The expanded grid in deterministic (workload-major) order."""
        seeds = self.seed_range()
        out: List[CampaignCell] = []
        combos = itertools.product(
            self.workloads, self.protocols, self.adversaries
        )
        for index, (w, p, a) in enumerate(combos):
            out.append(
                CampaignCell(
                    index=index,
                    workload=w,
                    protocol=p,
                    adversary=a,
                    seeds=seeds,
                    fastpath=self.fastpath,
                    timeout_seconds=self.timeout_seconds,
                )
            )
        return out

    def digest(self) -> str:
        """Content address of the grid (what a resume must match)."""
        return stable_digest(
            (
                "campaign-spec",
                SPEC_SCHEMA,
                self.workloads,
                self.protocols,
                self.adversaries,
                self.seeds,
                self.seed_base,
                self.fastpath,
                self.timeout_seconds,
            )
        )

    # -- parsing -------------------------------------------------------

    _EXEC_KEYS = (
        "executor",
        "workers",
        "retries",
        "retry_backoff",
        "cache",
        "state",
        "ledger",
    )

    @classmethod
    def from_dict(
        cls,
        raw: Mapping[str, Any],
        *,
        base_dir: Union[str, Path, None] = None,
    ) -> "CampaignSpec":
        """Build and validate a spec from a parsed mapping.

        Unknown top-level keys are rejected (a typo'd knob silently
        ignored is a campaign that measures the wrong thing).
        """
        if not isinstance(raw, Mapping):
            raise InvalidParameterError(
                f"campaign spec must be a mapping, got {type(raw).__name__}"
            )
        known = {f.name for f in fields(cls)} | {"knobs", "chaos"}
        known -= {"base_dir"}
        unknown = set(raw) - known
        if unknown:
            raise InvalidParameterError(
                f"unknown campaign spec keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        knobs = raw.get("knobs", {})
        if not isinstance(knobs, Mapping):
            raise InvalidParameterError(
                f"knobs must be a mapping, got {type(knobs).__name__}"
            )
        chaos = raw.get("chaos", {}) or {}
        if not isinstance(chaos, Mapping):
            raise InvalidParameterError(
                f"chaos must be a mapping, got {type(chaos).__name__}"
            )
        chaos_unknown = set(chaos) - {"kill_after_cells"}
        if chaos_unknown:
            raise InvalidParameterError(
                f"unknown chaos keys: {sorted(chaos_unknown)}"
            )
        kill_after = chaos.get("kill_after_cells")
        kwargs: Dict[str, Any] = {
            "name": str(raw.get("name", "campaign")),
            "workloads": tuple(
                _as_workload(e, knobs) for e in raw.get("workloads", [])
            ),
            "protocols": tuple(
                _as_protocol(e, knobs) for e in raw.get("protocols", [])
            ),
            "seeds": int(raw.get("seeds", 4)),
            "seed_base": int(raw.get("seed_base", 0)),
            "fastpath": str(raw.get("fastpath", "off")),
            "kill_after_cells": (
                int(kill_after) if kill_after is not None else None
            ),
            "base_dir": Path(base_dir) if base_dir is not None else Path(),
        }
        if "adversaries" in raw:
            kwargs["adversaries"] = tuple(
                _as_adversary(e) for e in raw["adversaries"]
            )
        if raw.get("timeout_seconds") is not None:
            kwargs["timeout_seconds"] = float(raw["timeout_seconds"])
        for key in cls._EXEC_KEYS:
            if key in raw and raw[key] is not None:
                value = raw[key]
                if key in ("workers", "retries"):
                    value = int(value)
                elif key == "retry_backoff":
                    value = float(value)
                else:
                    value = str(value)
                kwargs[key] = value
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Parse a spec file: YAML for ``.yaml``/``.yml``, else JSON.

        Relative ``cache``/``state``/``ledger`` paths in the spec
        resolve against the spec file's directory, so a campaign is a
        self-contained directory that can be moved or mounted anywhere.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise InvalidParameterError(
                f"cannot read campaign spec {path}: {exc}"
            ) from exc
        if path.suffix in (".yaml", ".yml"):
            import yaml

            try:
                raw = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise InvalidParameterError(
                    f"invalid YAML in {path}: {exc}"
                ) from exc
        else:
            try:
                raw = json.loads(text)
            except json.JSONDecodeError as exc:
                raise InvalidParameterError(
                    f"invalid JSON in {path}: {exc}"
                ) from exc
        if raw is None:
            raise InvalidParameterError(f"campaign spec {path} is empty")
        return cls.from_dict(raw, base_dir=path.parent)
