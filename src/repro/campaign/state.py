"""The campaign state file: an append-only, crash-tolerant JSONL log.

Resumability is the whole point of a campaign, so its state file gets
the same durability contract as the run ledger (PR 8): every record is
one :func:`repro.obs.ledger.append_jsonl_atomic` call — a single
``os.write`` on an ``O_APPEND`` descriptor, with the healing newline for
a torn tail folded into the same write — and reads go through the
tolerant reader, which skips a half-written final line instead of
dying.  A SIGKILL at *any* byte offset therefore loses at most the
record being written, never an earlier one, and
:meth:`CampaignState.load` after the kill sees exactly the cells that
were durably recorded.

The first record is a header carrying the spec's grid digest.  Opening
the file for a spec whose digest differs raises
:class:`CampaignStateError`: resuming an edited grid against old state
would silently mix two different campaigns, which is strictly worse
than refusing.

Record types (all JSON objects, one per line):

* ``campaign-header`` — ``name``, ``spec_digest``, ``schema``;
* ``cell-attempt`` — a cell is about to be dispatched (``key``,
  ``attempt`` starting at 1);
* ``cell-done`` — a cell completed (``key``, ``summary``,
  ``wall_seconds``);
* ``cell-quarantined`` — a cell exhausted its retry budget (``key``,
  ``attempts``, ``error``).

``cell-attempt`` records persist the retry budget across crashes: a
poison cell that burned two attempts before a SIGKILL has two fewer
attempts after resume, so a deterministically failing cell converges to
quarantine no matter how often the orchestrator dies around it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ReproError
from repro.obs.ledger import append_jsonl_atomic, read_jsonl_tolerant

__all__ = [
    "STATE_SCHEMA",
    "CampaignState",
    "CampaignStateError",
    "StateView",
]

#: Version of the state-file record schema.
STATE_SCHEMA = 1


class CampaignStateError(ReproError):
    """The state file cannot serve this campaign (digest drift, etc.)."""


@dataclass
class StateView:
    """What the state file durably says about every cell.

    ``done`` and ``quarantined`` map cell keys to their terminal
    records; ``attempts`` counts dispatches per key (terminal or not),
    which is what survives of the retry budget across a crash.
    """

    header: Optional[Dict[str, Any]] = None
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    quarantined: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)

    def is_terminal(self, key: str) -> bool:
        """Whether ``key`` needs no further work."""
        return key in self.done or key in self.quarantined


class CampaignState:
    """Append-only view of one campaign's progress, keyed by cell.

    All mutation goes through the three ``record_*`` methods; each is
    one atomic append, so the file is consistent after a kill at any
    point between (or inside) calls.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # -- reads ---------------------------------------------------------

    def load(self) -> StateView:
        """Replay the log into a :class:`StateView` (missing file: empty)."""
        view = StateView()
        for rec in read_jsonl_tolerant(self.path):
            kind = rec.get("type")
            if kind == "campaign-header" and view.header is None:
                view.header = rec
            elif kind == "cell-attempt":
                key = str(rec.get("key", ""))
                view.attempts[key] = view.attempts.get(key, 0) + 1
            elif kind == "cell-done":
                view.done[str(rec.get("key", ""))] = rec
            elif kind == "cell-quarantined":
                view.quarantined[str(rec.get("key", ""))] = rec
        return view

    # -- writes --------------------------------------------------------

    def ensure_header(self, *, name: str, spec_digest: str) -> StateView:
        """Open the state for this spec, writing the header if new.

        Returns the current :class:`StateView` (after any header write).
        Raises :class:`CampaignStateError` when the file belongs to a
        different grid — a resume must match the spec it started from.
        """
        view = self.load()
        if view.header is None:
            header = {
                "type": "campaign-header",
                "schema": STATE_SCHEMA,
                "name": name,
                "spec_digest": spec_digest,
                "created": time.time(),
            }
            append_jsonl_atomic(self.path, header)
            view.header = header
            return view
        found = view.header.get("spec_digest")
        if found != spec_digest:
            raise CampaignStateError(
                f"state file {self.path} belongs to a different campaign "
                f"grid (state digest {str(found)[:12]}…, spec digest "
                f"{spec_digest[:12]}…); edit the spec back, or point "
                f"'state' at a fresh file"
            )
        return view

    def record_attempt(self, key: str, attempt: int) -> None:
        """Durably note that ``key`` is being dispatched (1-based)."""
        append_jsonl_atomic(
            self.path,
            {
                "type": "cell-attempt",
                "schema": STATE_SCHEMA,
                "key": key,
                "attempt": attempt,
                "t": time.time(),
            },
        )

    def record_done(
        self,
        key: str,
        *,
        label: str,
        summary: Dict[str, Any],
        wall_seconds: float,
    ) -> None:
        """Durably mark ``key`` complete with its outcome summary."""
        append_jsonl_atomic(
            self.path,
            {
                "type": "cell-done",
                "schema": STATE_SCHEMA,
                "key": key,
                "label": label,
                "summary": summary,
                "wall_seconds": wall_seconds,
                "t": time.time(),
            },
        )

    def record_quarantined(
        self, key: str, *, label: str, attempts: int, error: str
    ) -> None:
        """Durably quarantine ``key`` after its retry budget ran out."""
        append_jsonl_atomic(
            self.path,
            {
                "type": "cell-quarantined",
                "schema": STATE_SCHEMA,
                "key": key,
                "label": label,
                "attempts": attempts,
                "error": error,
                "t": time.time(),
            },
        )
