"""repro.campaign — declarative, crash-tolerant experiment campaigns.

A campaign is the full measurement grid behind a claim — workloads ×
protocols × adversaries × seeds — written down once in YAML/JSON and
driven through a ``plan → evaluate → execute → report`` pipeline:

* :class:`CampaignSpec` parses and validates the spec
  (:meth:`~CampaignSpec.from_file`) and expands the grid into
  :class:`CampaignCell` builders;
* :func:`evaluate` diffs the grid against the campaign state file and
  the result cache, predicting exactly which seeds would be served from
  cache (``--dry-run``);
* :func:`run_campaign` executes the missing cells on a pluggable
  :class:`~repro.campaign.executor.CellExecutor` with per-cell
  retry/backoff/timeout, quarantining cells that fail every attempt
  instead of aborting the grid;
* every transition is one atomic append to an append-only state file
  (:class:`~repro.campaign.state.CampaignState`), so a SIGKILL at any
  byte offset resumes bit-exactly: done cells stay done, quarantined
  cells stay quarantined, and only the genuinely missing cells run.

The CLI front end is ``repro campaign run|resume|status|manifest``.
"""

from repro.campaign.executor import (
    CellExecutor,
    CellFailure,
    CellResult,
    CellTask,
    LocalPoolExecutor,
    SerialExecutor,
    execute_cell,
)
from repro.campaign.run import (
    QUARANTINE_EXIT_CODE,
    CampaignPlan,
    CampaignReport,
    CellPlan,
    QuarantineEntry,
    evaluate,
    run_campaign,
)
from repro.campaign.spec import (
    POISON_WORKLOAD,
    AdversarySpec,
    CampaignCell,
    CampaignSpec,
    GridProtocol,
    GridWorkload,
)
from repro.campaign.state import (
    CampaignState,
    CampaignStateError,
    StateView,
)

__all__ = [
    "QUARANTINE_EXIT_CODE",
    "POISON_WORKLOAD",
    "AdversarySpec",
    "CampaignCell",
    "CampaignPlan",
    "CampaignReport",
    "CampaignSpec",
    "CampaignState",
    "CampaignStateError",
    "CellExecutor",
    "CellFailure",
    "CellPlan",
    "CellResult",
    "CellTask",
    "GridProtocol",
    "GridWorkload",
    "LocalPoolExecutor",
    "QuarantineEntry",
    "SerialExecutor",
    "StateView",
    "evaluate",
    "execute_cell",
    "run_campaign",
]
