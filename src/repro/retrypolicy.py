"""The shared transient-failure retry policy: backoff, cap, jitter.

Three layers of this codebase retry work that died for reasons unrelated
to its inputs — a worker OOM-killed under a process pool, a pool broken
by a signal, a campaign cell whose executor crashed:

* :func:`repro.experiments.parallel.run_seeds` re-runs failed seeds;
* :func:`repro.stream.shard.run_stream_shards` re-runs crashed shards;
* the campaign executor (:mod:`repro.campaign.executor`) re-runs cells.

They must share one policy, or the system's behavior under a recovering
resource becomes the union of three slightly different curves.  The rule
lives here, once:

* **exponential backoff** — attempt ``k`` waits ``base * 2**(k-1)``;
* **a hard cap** (:data:`BACKOFF_CAP_SECONDS`) — unbounded exponential
  growth past ~10s only delays recovery; transient faults either clear
  within seconds or need human attention anyway;
* **multiplicative jitter** — the computed delay is scaled by a uniform
  0.5-1.5x draw so many callers sharing one recovering resource do not
  retry in synchronized waves (the same thundering-herd argument the
  paper's backoff protocols make about channel contention).

:class:`RetryPolicy` is a frozen dataclass, so it is picklable, foldable
into :func:`repro.cache.stable_digest` content keys, and cheap to embed
in specs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["BACKOFF_CAP_SECONDS", "RetryPolicy"]

#: Upper bound on one retry-backoff sleep, in seconds.
BACKOFF_CAP_SECONDS = 10.0


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how often) to re-run transiently failed work.

    Parameters
    ----------
    retries:
        How many times failed work may be re-run (``0`` = fail fast).
    base_backoff:
        First-retry delay in seconds; attempt ``k`` backs off
        ``base_backoff * 2**(k-1)``, capped at ``cap_seconds``.
        ``0`` disables sleeping entirely (what unit tests want).
    cap_seconds:
        Hard ceiling on one sleep (:data:`BACKOFF_CAP_SECONDS`).
    jitter:
        Scale each delay by a uniform draw from
        ``[1 - jitter, 1 + jitter]``.  The default ``0.5`` reproduces
        the historical 0.5-1.5x rule; ``0`` makes delays deterministic.
    """

    retries: int = 0
    base_backoff: float = 0.25
    cap_seconds: float = BACKOFF_CAP_SECONDS
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.base_backoff < 0:
            raise ValueError("base_backoff must be >= 0")
        if self.cap_seconds < 0:
            raise ValueError("cap_seconds must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def should_retry(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based failures so far)
        may be followed by another try."""
        return attempt <= self.retries

    def delay(self, attempt: int, rand: Optional[Callable[[], float]] = None) -> float:
        """The sleep before retry ``attempt`` (1-based), jitter applied.

        ``rand`` is a ``random()``-like source for tests; the module
        default is :func:`random.random`.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if self.base_backoff <= 0:
            return 0.0
        raw = min(self.base_backoff * (2 ** (attempt - 1)), self.cap_seconds)
        if self.jitter <= 0:
            return raw
        draw = (rand if rand is not None else random.random)()
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * draw)

    def sleep(self, attempt: int) -> float:
        """Sleep for :meth:`delay` seconds; returns the slept duration."""
        d = self.delay(attempt)
        if d > 0:
            time.sleep(d)
        return d
