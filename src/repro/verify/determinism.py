"""The determinism audit: same inputs, same digest, everywhere.

Replays a corpus case's seed three ways and demands identical content:

* **in-process** — two back-to-back ``simulate`` calls must produce
  ``SeedDigest`` records with equal :func:`~repro.cache.stable_digest`;
* **fresh subprocess** — a new interpreter (``python -m
  repro.verify.determinism CASE SEED``) rebuilds the case from its
  corpus name and prints its digest and cache key as JSON; both must
  match the parent's (this is what catches accidental dependence on
  ``PYTHONHASHSEED``, dict order, interned-object ids, or wall clock);
* **cache round-trip** — the digest must survive
  :class:`~repro.cache.ResultCache` storage byte-for-byte, and a warm
  :func:`~repro.experiments.parallel.run_seeds` re-run must be served
  entirely from cache with an identical result list.

Along the way this exercises :func:`~repro.cache.stable_digest` on the
hard cases — protocol factory closures (captured params), frozen
dataclasses, numpy payloads — because ``run_key`` folds all of them in.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cache import ResultCache, run_key, stable_digest
from repro.experiments.parallel import SeedDigest, run_seeds
from repro.verify.corpus import VerifyCase, corpus_case
from repro.verify.report import Discrepancy

__all__ = [
    "case_fingerprint",
    "check_cache_roundtrip",
    "check_in_process_replay",
    "check_subprocess_replay",
]


def _digest_for(case: VerifyCase, seed: int) -> SeedDigest:
    """One inline run of the case at ``seed``, as a SeedDigest."""
    (digest,) = run_seeds(
        case.build, lambda instance: case.factory(),
        seeds=[seed], jammer=case.jammer(),
    )
    return digest


def case_fingerprint(name: str, seed: int) -> Dict[str, Union[str, int]]:
    """The reproducibility fingerprint of one corpus case at one seed.

    Everything a cross-process comparison needs: the content digest of
    the run's :class:`SeedDigest`, the cache key of the run, the content
    digest of the instance, and the headline counts.
    """
    case = corpus_case(name)
    digest = _digest_for(case, seed)
    instance = case.instance()
    return {
        "case": name,
        "seed": seed,
        "digest": stable_digest(digest),
        "run_key": run_key(
            instance=instance,
            protocol=case.factory(),
            jammer=case.jammer(),
            seed=seed,
        ),
        "instance_digest": stable_digest(instance),
        "n_succeeded": digest.n_succeeded,
        "slots_simulated": digest.slots_simulated,
    }


def _fingerprint_mismatches(
    name: str,
    seed: int,
    check: str,
    expected: Dict[str, Union[str, int]],
    actual: Dict[str, Union[str, int]],
    detail: str = "",
) -> List[Discrepancy]:
    out: List[Discrepancy] = []
    for field in sorted(set(expected) | set(actual)):
        if expected.get(field) != actual.get(field):
            out.append(
                Discrepancy(
                    case=name,
                    seed=seed,
                    check=check,
                    quantity=field,
                    expected=str(expected.get(field)),
                    actual=str(actual.get(field)),
                    detail=detail,
                )
            )
    return out


def check_in_process_replay(case: VerifyCase, seed: int) -> List[Discrepancy]:
    """Two in-process runs must produce content-identical digests."""
    first = case_fingerprint(case.name, seed)
    second = case_fingerprint(case.name, seed)
    return _fingerprint_mismatches(
        case.name, seed, "determinism-in-process", first, second
    )


def check_subprocess_replay(case: VerifyCase, seed: int) -> List[Discrepancy]:
    """A fresh interpreter must reproduce digest and cache key exactly."""
    expected = case_fingerprint(case.name, seed)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.verify.determinism", case.name, str(seed)],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return [
            Discrepancy(
                case=case.name,
                seed=seed,
                check="determinism-subprocess",
                quantity="exit status",
                expected="0",
                actual=str(proc.returncode),
                detail=proc.stderr.strip()[-500:],
            )
        ]
    try:
        actual = json.loads(proc.stdout)
    except json.JSONDecodeError:
        return [
            Discrepancy(
                case=case.name,
                seed=seed,
                check="determinism-subprocess",
                quantity="stdout",
                expected="JSON fingerprint",
                actual=proc.stdout.strip()[:200],
            )
        ]
    return _fingerprint_mismatches(
        case.name, seed, "determinism-subprocess", expected, actual,
        detail="fresh interpreter",
    )


def check_cache_roundtrip(
    case: VerifyCase, seed: int, cache_root: Union[str, Path]
) -> List[Discrepancy]:
    """Digests must survive cache storage and serve warm re-runs."""
    out: List[Discrepancy] = []
    cache = ResultCache(cache_root)

    def run_once() -> List[SeedDigest]:
        return run_seeds(
            case.build, lambda instance: case.factory(),
            seeds=[seed], jammer=case.jammer(), cache=cache,
        )

    (cold,) = run_once()
    puts_after_cold = cache.puts
    (warm,) = run_once()
    if stable_digest(cold) != stable_digest(warm):
        out.append(
            Discrepancy(
                case=case.name,
                seed=seed,
                check="determinism-cache",
                quantity="digest",
                expected=stable_digest(cold),
                actual=stable_digest(warm),
                detail="warm re-run returned different content",
            )
        )
    if cache.puts != puts_after_cold:
        out.append(
            Discrepancy(
                case=case.name,
                seed=seed,
                check="determinism-cache",
                quantity="cache writes on warm run",
                expected=str(puts_after_cold),
                actual=str(cache.puts),
                detail="a warm run must not rewrite entries",
            )
        )
    if cache.hits < 1:
        out.append(
            Discrepancy(
                case=case.name,
                seed=seed,
                check="determinism-cache",
                quantity="cache hits on warm run",
                expected=">= 1",
                actual=str(cache.hits),
                detail="the stored entry was not found again",
            )
        )
    return out


def _main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.verify.determinism CASE SEED`` → JSON fingerprint."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 2:
        print("usage: python -m repro.verify.determinism CASE SEED",
              file=sys.stderr)
        return 2
    name, seed = args[0], int(args[1])
    print(json.dumps(case_fingerprint(name, seed)))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(_main())
