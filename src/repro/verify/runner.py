"""The verification driver: corpus × checks → one report.

:func:`run_verification` walks the corpus and applies every applicable
check — differential (exact / dominance / statistical / paired-draw
kernel references / the full-protocol fastpath kernels and the
seed-major batched driver), metamorphic (time shift, presentation
order, zero jammer, observational toggles), and the determinism audit
(in-process, subprocess, cache round-trip) — collecting everything into
a :class:`~repro.verify.report.VerifyReport`.

``smoke=True`` is the CI profile: the slow corpus cases and the
subprocess replay run on a single representative case instead of all of
them, keeping the job under a minute while still crossing every
implementation boundary at least once.
"""

from __future__ import annotations

import tempfile
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.verify import determinism, differential, metamorphic
from repro.verify.corpus import CORPUS, VerifyCase, corpus_case, smoke_cases
from repro.verify.report import CheckResult, Discrepancy, VerifyReport

__all__ = ["run_verification"]


def _shrunk_jobs(
    case: VerifyCase, seed: int
) -> Tuple[Tuple[int, int, int], ...]:
    """Minimize a failing uniform-exact case; empty when not applicable."""

    def fails(instance, s) -> bool:
        probe = VerifyCase(
            name=case.name,
            build=lambda: instance,
            protocol=case.protocol,
            make_jammer=case.make_jammer,
            seeds=(s,),
            kind=case.kind,
        )
        return bool(differential.diff_uniform_exact(probe, s))

    minimal = differential.shrink_failing_instance(
        case.instance(), seed, fails
    )
    return tuple(
        (j.job_id, j.release, j.deadline) for j in minimal.by_release
    )


def _per_seed_check(
    report: VerifyReport,
    case: VerifyCase,
    check_name: str,
    seeds: Sequence[int],
    check: Callable[[VerifyCase, int], List[Discrepancy]],
    *,
    shrink: bool = False,
) -> None:
    found: List[Discrepancy] = []
    for seed in seeds:
        found.extend(check(case, seed))
    shrunk: Tuple[Tuple[int, int, int], ...] = ()
    if found and shrink:
        shrunk = _shrunk_jobs(case, found[0].seed)
    report.add(
        CheckResult(
            case=case.name,
            check=check_name,
            seeds=tuple(seeds),
            discrepancies=tuple(found),
            shrunk=shrunk,
        )
    )


def run_verification(
    *,
    smoke: bool = False,
    cases: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> VerifyReport:
    """Run the full verification battery and return the report.

    Parameters
    ----------
    smoke:
        CI profile: skip the slow corpus cases and run the subprocess
        replay once instead of per case.
    cases:
        Optional explicit case names (overrides the smoke filter).
    progress:
        Optional callback receiving one line per completed stage.
    """
    if cases is not None:
        selected: Tuple[VerifyCase, ...] = tuple(
            corpus_case(n) for n in cases
        )
    elif smoke:
        selected = smoke_cases()
    else:
        selected = tuple(CORPUS.values())

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    report = VerifyReport()

    # -- differential: engine ↔ kernels ---------------------------------
    for case in selected:
        if case.kind == "uniform-exact":
            _per_seed_check(
                report, case, "uniform-exact", case.seeds,
                differential.diff_uniform_exact, shrink=True,
            )
        elif case.kind == "uniform-dominance":
            _per_seed_check(
                report, case, "uniform-dominance", case.seeds,
                differential.diff_uniform_dominance,
            )
        elif case.kind == "statistical":
            found = differential.diff_uniform_statistical(case)
            report.add(
                CheckResult(
                    case=case.name,
                    check="uniform-statistical",
                    seeds=case.seeds,
                    discrepancies=tuple(found),
                )
            )
        elif case.kind == "fastpath-exact":
            _per_seed_check(
                report, case, "fastpath-exact", case.seeds,
                differential.diff_fastpath_exact,
            )
            found = differential.diff_fastpath_batched(case)
            report.add(
                CheckResult(
                    case=case.name,
                    check="fastpath-batched",
                    seeds=case.seeds,
                    discrepancies=tuple(found),
                )
            )
        elif case.kind == "streaming-equivalence":
            _per_seed_check(
                report, case, "streaming-equivalence", case.seeds,
                differential.diff_streaming_equivalence,
            )
        elif case.kind == "fastpath-statistical":
            found = differential.diff_fastpath_statistical(
                case, n_trials=200 if smoke else 400
            )
            report.add(
                CheckResult(
                    case=case.name,
                    check="fastpath-statistical",
                    seeds=case.seeds,
                    discrepancies=tuple(found),
                )
            )
        note(f"differential: {case.name}")

    # -- differential: paired-draw kernel references --------------------
    kernel_seeds = (0,) if smoke else (0, 1, 2)
    for name, check in (
        ("estimation-kernel", differential.diff_estimation_kernel),
        ("broadcast-kernel", differential.diff_broadcast_kernel),
        ("anarchist-kernel", differential.diff_anarchist_kernel),
        ("aligned-kernel", differential.diff_aligned_kernel),
    ):
        found = []
        for seed in kernel_seeds:
            found.extend(check(seed))
        report.add(
            CheckResult(
                case=name,
                check="paired-draws",
                seeds=kernel_seeds,
                discrepancies=tuple(found),
            )
        )
        note(f"kernel reference: {name}")

    # -- metamorphic ----------------------------------------------------
    for case in selected:
        meta_seeds = case.seeds[:1] if smoke else case.seeds[:2]
        _per_seed_check(
            report, case, "time-shift", meta_seeds,
            metamorphic.check_time_shift,
        )
        _per_seed_check(
            report, case, "presentation-order", meta_seeds,
            metamorphic.check_presentation_order,
        )
        if case.jammer() is None:
            _per_seed_check(
                report, case, "zero-jammer", meta_seeds,
                metamorphic.check_zero_jammer,
            )
        _per_seed_check(
            report, case, "observational-toggles", meta_seeds,
            metamorphic.check_observational_toggles,
        )
        note(f"metamorphic: {case.name}")

    # -- determinism audit ----------------------------------------------
    subprocess_cases = selected[:1] if smoke else selected
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
        for case in selected:
            seed = case.seeds[0]
            _per_seed_check(
                report, case, "determinism-in-process", (seed,),
                determinism.check_in_process_replay,
            )
            _per_seed_check(
                report, case, "determinism-cache", (seed,),
                lambda c, s, _tmp=tmp: determinism.check_cache_roundtrip(
                    c, s, _tmp
                ),
            )
            if case in subprocess_cases:
                _per_seed_check(
                    report, case, "determinism-subprocess", (seed,),
                    determinism.check_subprocess_replay,
                )
            note(f"determinism: {case.name}")

    return report
