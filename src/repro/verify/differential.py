"""The differential runner: engine ↔ fastpath kernel cross-execution.

Each fastpath kernel models a protocol the slot engine also runs, so the
two implementations can be diffed.  Three strengths of comparison apply,
depending on whether the draw orders can be made to coincide:

**Exact (offset replay).**  UNIFORM with ``attempts = 1`` depends only on
which window slot each job picks, and the engine's per-job draw is
replayable: job ``j`` draws from ``RngFactory(seed).fresh("job", j)``
exactly what :class:`~repro.core.uniform.UniformProtocol` draws in
``on_begin``.  Feeding those replayed offsets into
:func:`~repro.fastpath.uniform_fast.simulate_uniform_fast` (its
``offsets=`` parameter) makes the kernel bit-comparable to the engine:
per-job success flags, success counts, and the engine's slot count (the
union of the per-job active intervals) must all match exactly.

**Dominance.**  With ``attempts > 1`` the kernel has jobs transmit in
*all* chosen slots while the engine's jobs stop after a success, so the
kernel over-counts contention: any job the kernel marks successful must
also succeed in the engine (the converse may fail).  The replayed picks
make this a per-job, per-seed check, not a statistical one.

**Paired-draw naive references.**  The remaining kernels (estimation,
broadcast, anarchist, the aligned chain) vectorize their models in ways
the engine's draw order cannot reproduce.  For these the differential is
against a naive scalar re-implementation that consumes *exactly the same
generator draws* — same calls, same order — so any disagreement is a
logic bug in the vectorization (``np.unique`` bookkeeping, ``bincount``
indexing), not Monte-Carlo noise.

**Statistical.**  Jammed UNIFORM runs draw jam decisions in different
orders in the two implementations, so only distribution-level agreement
is checkable: mean success rates over many seeds/trials within an
empirically derived tolerance.

**Full-protocol kernels.**  The seed-major batched path
(:mod:`repro.fastpath.batched`) gets its own checks at the same two
strengths: the engine-exact UNIFORM replay must match the engine's
``SeedDigest`` field-for-field per seed — clean *and* jammed, and both
through :func:`~repro.fastpath.batched.simulate_fastpath` and through
the :func:`~repro.fastpath.batched.run_batch` driver — while the
ALIGNED/PUNCTUAL kernels
(:func:`~repro.fastpath.aligned_full.simulate_aligned_full`,
:func:`~repro.fastpath.punctual_full.simulate_punctual_full`) consume
their own RNG stream and are compared statistically, engine seeds
against kernel trials.

A failing exact check is handed to :func:`shrink_failing_instance`,
which greedily deletes jobs while the discrepancy reproduces, and the
minimized instance is attached to the check result.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.feedback import Feedback
from repro.core.broadcast import BroadcastSchedule
from repro.core.estimation import resolve_estimate
from repro.experiments.parallel import SeedDigest, run_seeds
from repro.fastpath.batched import plan_fastpath, run_batch, simulate_fastpath
from repro.fastpath.broadcast_fast import simulate_broadcast_fast
from repro.fastpath.estimation_fast import (
    estimation_success_counts,
    simulate_estimation_fast,
)
from repro.fastpath.anarchist_fast import simulate_anarchists_fast
from repro.fastpath.uniform_fast import simulate_uniform_fast
from repro.core.rounds import ROUND_LENGTH
from repro.params import AlignedParams, PunctualParams
from repro.sim.engine import simulate
from repro.sim.instance import Instance
from repro.sim.rng import RngFactory
from repro.stream.arrivals import materialize
from repro.stream.engine import stream_simulate
from repro.verify.corpus import VerifyCase
from repro.verify.report import Discrepancy

__all__ = [
    "diff_aligned_kernel",
    "diff_anarchist_kernel",
    "diff_broadcast_kernel",
    "diff_estimation_kernel",
    "diff_fastpath_batched",
    "diff_fastpath_exact",
    "diff_fastpath_statistical",
    "diff_streaming_equivalence",
    "diff_uniform_dominance",
    "diff_uniform_exact",
    "diff_uniform_statistical",
    "expected_uniform_slots",
    "replay_uniform_picks",
    "shrink_failing_instance",
]


# ---------------------------------------------------------------------------
# UNIFORM: offset replay
# ---------------------------------------------------------------------------


def replay_uniform_picks(
    instance: Instance, seed: int, attempts: int = 1
) -> List[np.ndarray]:
    """The slot picks each job's protocol draws in the engine.

    Replays, per job in ``by_release`` order, exactly the draw
    :class:`~repro.core.uniform.UniformProtocol.on_begin` makes from the
    job's stream: ``choice(window, size=min(attempts, window),
    replace=False)`` on a fresh ``("job", job_id)`` generator.
    """
    rngs = RngFactory(seed)
    picks: List[np.ndarray] = []
    for job in instance.by_release:
        rng = rngs.fresh("job", job.job_id)
        k = min(attempts, job.window)
        p = rng.choice(job.window, size=k, replace=False)
        picks.append(np.asarray(p, dtype=np.int64))
    return picks


def expected_uniform_slots(
    instance: Instance, offsets: Sequence[int]
) -> int:
    """The engine's slot count for UNIFORM/attempts=1, derived closed-form.

    Job ``j`` is live from its release through its single transmission
    slot ``release + offset`` (it retires right after), and the engine
    skips slots where nobody is live — so the simulated-slot count is the
    size of the union of the inclusive integer intervals
    ``[release_j, release_j + offset_j]``.
    """
    intervals = sorted(
        (j.release, j.release + int(off))
        for j, off in zip(instance.by_release, offsets)
    )
    total = 0
    cur_lo: Optional[int] = None
    cur_hi = 0
    for lo, hi in intervals:
        if cur_lo is None or lo > cur_hi + 1:
            if cur_lo is not None:
                total += cur_hi - cur_lo + 1
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    if cur_lo is not None:
        total += cur_hi - cur_lo + 1
    return total


def diff_uniform_exact(case: VerifyCase, seed: int) -> List[Discrepancy]:
    """Engine vs uniform kernel under offset replay: must be bit-equal."""
    instance = case.instance()
    picks = replay_uniform_picks(instance, seed, attempts=1)
    offsets = np.array([int(p[0]) for p in picks], dtype=np.int64)

    engine = simulate(
        instance, case.factory(), jammer=case.jammer(), seed=seed, trace=True
    )
    fast = simulate_uniform_fast(
        instance, np.random.default_rng(0), offsets=offsets
    )

    out: List[Discrepancy] = []

    def mismatch(quantity: str, expected, actual, detail: str = "") -> None:
        out.append(
            Discrepancy(
                case=case.name,
                seed=seed,
                check="uniform-exact",
                quantity=quantity,
                expected=str(expected),
                actual=str(actual),
                detail=detail,
            )
        )

    engine_success = [o.succeeded for o in engine.outcomes]
    fast_success = [bool(b) for b in fast.success]
    for i, (job, e, f) in enumerate(
        zip(instance.by_release, engine_success, fast_success)
    ):
        if e != f:
            mismatch(
                f"job[{job.job_id}].succeeded",
                e,
                f,
                detail=f"offset {int(offsets[i])}, window {job.window}",
            )
    if engine.n_succeeded != fast.n_succeeded:
        mismatch("n_succeeded", engine.n_succeeded, fast.n_succeeded)

    slots_expected = expected_uniform_slots(instance, offsets)
    if engine.slots_simulated != slots_expected:
        mismatch(
            "slots_simulated",
            slots_expected,
            engine.slots_simulated,
            detail="union of per-job active intervals",
        )

    assert engine.trace is not None
    n_success_slots = sum(
        1 for r in engine.trace.records if r.feedback is Feedback.SUCCESS
    )
    if n_success_slots != fast.n_successful_slots:
        mismatch(
            "n_successful_slots", n_success_slots, fast.n_successful_slots
        )
    n_collision_slots = sum(
        1
        for r in engine.trace.records
        if r.feedback is Feedback.NOISE and not r.jammed
    )
    if n_collision_slots != fast.n_collision_slots:
        mismatch(
            "n_collision_slots", n_collision_slots, fast.n_collision_slots
        )
    return out


def diff_uniform_dominance(case: VerifyCase, seed: int) -> List[Discrepancy]:
    """attempts > 1: kernel-model success must imply engine success.

    The kernel's model has every job transmit in all its chosen slots;
    the engine's jobs stop transmitting once they succeed, which can only
    *remove* collisions.  So with the same replayed picks, the set of
    jobs the always-transmit model delivers is a subset of the engine's.
    """
    instance = case.instance()
    picks = replay_uniform_picks(instance, seed, attempts=case.attempts)

    slot_count: Dict[int, int] = {}
    for job, p in zip(instance.by_release, picks):
        for off in p:
            s = job.release + int(off)
            slot_count[s] = slot_count.get(s, 0) + 1
    model_success = [
        any(slot_count[job.release + int(off)] == 1 for off in p)
        for job, p in zip(instance.by_release, picks)
    ]

    engine = simulate(instance, case.factory(), seed=seed)
    out: List[Discrepancy] = []
    for job, model_ok, outcome in zip(
        instance.by_release, model_success, engine.outcomes
    ):
        if model_ok and not outcome.succeeded:
            out.append(
                Discrepancy(
                    case=case.name,
                    seed=seed,
                    check="uniform-dominance",
                    quantity=f"job[{job.job_id}].succeeded",
                    expected="True (kernel model delivered it)",
                    actual="False",
                    detail="engine success must dominate the "
                    "always-transmit model",
                )
            )
    return out


def diff_uniform_statistical(
    case: VerifyCase, *, n_trials: int = 2000
) -> List[Discrepancy]:
    """Jammed UNIFORM: engine and kernel success rates must agree.

    Jam decisions are drawn in different orders by the two
    implementations, so the comparison is distributional: the mean
    per-run success rate over the case's seeds (engine) and over
    ``n_trials`` kernel trials must agree within five combined standard
    errors (plus a small absolute floor for tiny variances).
    """
    instance = case.instance()
    jammer = case.jammer()
    p_jam = float(getattr(jammer, "p_jam", 0.0))

    engine_rates = []
    for seed in case.seeds:
        res = simulate(
            instance, case.factory(), jammer=case.jammer(), seed=seed
        )
        engine_rates.append(res.success_rate)

    rng = np.random.default_rng(20200707)  # fixed: the check is a pin
    fast_rates = []
    for _ in range(n_trials):
        fast = simulate_uniform_fast(instance, rng, p_jam=p_jam)
        fast_rates.append(fast.success_rate)

    e = np.asarray(engine_rates)
    f = np.asarray(fast_rates)
    se = math.sqrt(
        float(e.var(ddof=1)) / e.size + float(f.var(ddof=1)) / f.size
    )
    gap = abs(float(e.mean()) - float(f.mean()))
    tol = 5.0 * se + 0.02
    if gap > tol:
        return [
            Discrepancy(
                case=case.name,
                seed=-1,
                check="uniform-statistical",
                quantity="mean success rate",
                expected=f"{float(f.mean()):.4f} ± {tol:.4f}",
                actual=f"{float(e.mean()):.4f}",
                detail=f"{e.size} engine seeds vs {f.size} kernel trials",
            )
        ]
    return []


# ---------------------------------------------------------------------------
# Paired-draw naive references for the model kernels
# ---------------------------------------------------------------------------

_AL = AlignedParams(lam=1, tau=4, min_level=9)
_PU = PunctualParams(
    aligned=AlignedParams(lam=1, tau=2, min_level=10),
    lam=2,
    pullback_exp=1,
    slingshot_exp=2,
)


def diff_estimation_kernel(seed: int) -> List[Discrepancy]:
    """Estimation kernel vs the shared resolve rule on identical draws.

    Running :func:`estimation_success_counts` and then resolving each
    row with :func:`~repro.core.estimation.resolve_estimate` consumes
    exactly the draws :func:`simulate_estimation_fast` consumes, so the
    two must agree element-for-element.
    """
    out: List[Discrepancy] = []
    for n_jobs, level, p_jam in ((12, 6, 0.0), (40, 8, 0.0), (12, 6, 0.3)):
        fast = simulate_estimation_fast(
            n_jobs, level, _AL, np.random.default_rng(seed),
            n_trials=16, p_jam=p_jam,
        )
        counts = estimation_success_counts(
            n_jobs, level, _AL, np.random.default_rng(seed),
            n_trials=16, p_jam=p_jam,
        )
        ref = np.array(
            [
                resolve_estimate(list(counts[t]), _AL.tau, level)
                for t in range(counts.shape[0])
            ],
            dtype=np.int64,
        )
        if not np.array_equal(fast, ref):
            out.append(
                Discrepancy(
                    case="estimation-kernel",
                    seed=seed,
                    check="paired-draws",
                    quantity=f"estimates(n={n_jobs}, level={level}, "
                    f"p_jam={p_jam})",
                    expected=str(ref.tolist()),
                    actual=str(fast.tolist()),
                )
            )
    return out


def _naive_broadcast(
    n_jobs: int,
    level: int,
    estimate: int,
    params: AlignedParams,
    rng: np.random.Generator,
    p_jam: float,
) -> Tuple[int, int]:
    """Scalar reference for the broadcast kernel, same draws, dict counts."""
    sched = BroadcastSchedule(level, estimate, params.lam)
    alive = n_jobs
    steps = 0
    for phase in range(sched.n_phases):
        x = sched.subphase_lengths[phase]
        for _ in range(params.lam):
            steps += x
            if alive == 0:
                continue
            picks = rng.integers(0, x, size=alive)
            jam = rng.random(x) < p_jam if p_jam > 0.0 else None
            counts: Dict[int, int] = {}
            for p in picks:
                counts[int(p)] = counts.get(int(p), 0) + 1
            delivered = 0
            for p in picks:
                if counts[int(p)] == 1 and (jam is None or not jam[int(p)]):
                    delivered += 1
            alive -= delivered
    return n_jobs - alive, steps


def diff_broadcast_kernel(seed: int) -> List[Discrepancy]:
    """Broadcast kernel vs a naive scalar reference on identical draws."""
    out: List[Discrepancy] = []
    for n_jobs, level, estimate, p_jam in (
        (10, 5, 16, 0.0),
        (30, 6, 32, 0.0),
        (10, 5, 16, 0.25),
    ):
        fast = simulate_broadcast_fast(
            n_jobs, level, estimate, _AL,
            np.random.default_rng(seed), p_jam=p_jam,
        )
        ref_ok, ref_steps = _naive_broadcast(
            n_jobs, level, estimate, _AL,
            np.random.default_rng(seed), p_jam,
        )
        if (fast.n_succeeded, fast.steps_used) != (ref_ok, ref_steps):
            out.append(
                Discrepancy(
                    case="broadcast-kernel",
                    seed=seed,
                    check="paired-draws",
                    quantity=f"(n_succeeded, steps) at n={n_jobs}, "
                    f"level={level}, est={estimate}, p_jam={p_jam}",
                    expected=str((ref_ok, ref_steps)),
                    actual=str((fast.n_succeeded, fast.steps_used)),
                )
            )
    return out


def diff_anarchist_kernel(seed: int) -> List[Discrepancy]:
    """Anarchist kernel vs a naive scalar reference on identical draws."""
    out: List[Discrepancy] = []
    for n_jobs, window, p_jam in ((8, 1024, 0.0), (20, 4096, 0.3)):
        fast = simulate_anarchists_fast(
            n_jobs, window, _PU, np.random.default_rng(seed), p_jam=p_jam
        )
        rng = np.random.default_rng(seed)
        p = _PU.anarchist_probability(window)
        n_slots = window // ROUND_LENGTH
        alive = n_jobs
        for _ in range(n_slots):
            if alive == 0:
                break
            tx = rng.binomial(alive, p)
            if tx == 1 and (p_jam == 0.0 or rng.random() >= p_jam):
                alive -= 1
        ref = (n_jobs, n_jobs - alive, n_slots)
        got = (fast.n_jobs, fast.n_succeeded, fast.slots_used)
        if got != ref:
            out.append(
                Discrepancy(
                    case="anarchist-kernel",
                    seed=seed,
                    check="paired-draws",
                    quantity=f"(n, ok, slots) at n={n_jobs}, w={window}, "
                    f"p_jam={p_jam}",
                    expected=str(ref),
                    actual=str(got),
                )
            )
    return out


def diff_aligned_kernel(seed: int) -> List[Discrepancy]:
    """Aligned chain kernel vs estimation + naive broadcast, same draws."""
    from repro.core.broadcast import total_active_steps
    from repro.core.estimation import estimation_length
    from repro.fastpath.aligned_fast import simulate_class_run_fast

    out: List[Discrepancy] = []
    for n_jobs, level in ((6, 5), (20, 7)):
        fast = simulate_class_run_fast(
            n_jobs, level, _AL, np.random.default_rng(seed)
        )
        rng = np.random.default_rng(seed)
        estimate = int(
            simulate_estimation_fast(n_jobs, level, _AL, rng, n_trials=1)[0]
        )
        est_len = estimation_length(level, _AL.lam)
        if estimate == 0:
            ref = (n_jobs, 0, 0, est_len, False)
        else:
            ref_ok, ref_steps = _naive_broadcast(
                n_jobs, level, estimate, _AL, rng, 0.0
            )
            total = total_active_steps(level, estimate, _AL.lam)
            used = est_len + ref_steps
            ref = (n_jobs, estimate, ref_ok, used, used < total)
        got = (
            fast.n_jobs,
            fast.estimate,
            fast.n_succeeded,
            fast.active_steps,
            fast.truncated,
        )
        if got != ref:
            out.append(
                Discrepancy(
                    case="aligned-kernel",
                    seed=seed,
                    check="paired-draws",
                    quantity=f"class run at n={n_jobs}, level={level}",
                    expected=str(ref),
                    actual=str(got),
                )
            )
    return out


# ---------------------------------------------------------------------------
# full-protocol kernels and the batched driver
# ---------------------------------------------------------------------------

_DIGEST_FIELDS = (
    "seed",
    "n_jobs",
    "n_succeeded",
    "by_window",
    "slots_simulated",
    "latency_sum",
    "watchdog_reason",
)


def _plan_discrepancy(case: VerifyCase, check: str, reason: str) -> Discrepancy:
    """The corpus promises these cases a kernel; a decline is a defect."""
    return Discrepancy(
        case=case.name,
        seed=-1,
        check=check,
        quantity="plan_fastpath",
        expected="a qualified kernel plan",
        actual="declined",
        detail=reason,
    )


def _digest_mismatches(
    case: VerifyCase,
    seed: int,
    check: str,
    engine: SeedDigest,
    kernel: SeedDigest,
    detail: str = "",
) -> List[Discrepancy]:
    out: List[Discrepancy] = []
    for field in _DIGEST_FIELDS:
        e, k = getattr(engine, field), getattr(kernel, field)
        if e != k:
            out.append(
                Discrepancy(
                    case=case.name,
                    seed=seed,
                    check=check,
                    quantity=field,
                    expected=str(e),
                    actual=str(k),
                    detail=detail,
                )
            )
    return out


def diff_fastpath_exact(case: VerifyCase, seed: int) -> List[Discrepancy]:
    """Engine vs the engine-exact UNIFORM fastpath trial: bit-equal digests.

    Unlike :func:`diff_uniform_exact` (which feeds replayed offsets into
    the component kernel), this goes through the production batched
    path: :func:`~repro.fastpath.batched.plan_fastpath` qualification
    and a :func:`~repro.fastpath.batched.simulate_fastpath` trial, which
    also replays the jam coins — so jammed cases are bit-exact here, not
    just statistical.
    """
    instance = case.instance()
    plan, reason = plan_fastpath(
        instance, case.factory(), jammer=case.jammer()
    )
    if plan is None:
        return [_plan_discrepancy(case, "fastpath-exact", reason)]
    (engine,) = run_seeds(
        case.build, lambda _i: case.factory(),
        seeds=[seed], jammer=case.jammer(),
    )
    kernel = simulate_fastpath(plan, seed)
    return _digest_mismatches(
        case, seed, "fastpath-exact", engine, kernel,
        detail="simulate_fastpath trial vs engine run_seeds",
    )


def diff_fastpath_batched(case: VerifyCase) -> List[Discrepancy]:
    """Seed-major ``run_batch`` vs the per-seed engine loop, all seeds.

    Exercises the batched driver itself — one plan, one shared-prefix
    key walk, ordered results — on top of the per-trial exactness that
    :func:`diff_fastpath_exact` already pins.
    """
    engine = run_seeds(
        case.build, lambda _i: case.factory(),
        seeds=list(case.seeds), jammer=case.jammer(),
    )
    try:
        batched = run_batch(
            case.build, lambda _i: case.factory(),
            case.seeds, jammer=case.jammer(),
        )
    except Exception as exc:  # FastpathUnavailableError included
        return [_plan_discrepancy(case, "fastpath-batched", str(exc))]
    out: List[Discrepancy] = []
    for seed, e, k in zip(case.seeds, engine, batched):
        out.extend(
            _digest_mismatches(
                case, seed, "fastpath-batched", e, k,
                detail="run_batch vs per-seed engine run_seeds",
            )
        )
    return out


def diff_fastpath_statistical(
    case: VerifyCase, *, n_trials: int = 300
) -> List[Discrepancy]:
    """ALIGNED/PUNCTUAL full kernels: success rates must agree with the engine.

    The full-protocol kernels draw from their own ``"fastpath"`` stream,
    so per-seed digests cannot match the engine's; instead the mean
    per-run success rate over the case's engine seeds must agree with
    the mean over ``n_trials`` kernel trials within five combined
    standard errors (plus a small absolute floor, as in
    :func:`diff_uniform_statistical`).
    """
    instance = case.instance()
    plan, reason = plan_fastpath(
        instance, case.factory(), jammer=case.jammer()
    )
    if plan is None:
        return [_plan_discrepancy(case, "fastpath-statistical", reason)]

    engine_rates = []
    for seed in case.seeds:
        res = simulate(
            instance, case.factory(), jammer=case.jammer(), seed=seed
        )
        engine_rates.append(res.success_rate)

    # Kernel trials use a disjoint seed range: the "fastpath" stream is
    # already independent of the engine's streams, this just makes the
    # two samples visibly unpaired.
    kernel_rates = [
        simulate_fastpath(plan, 10_000 + t).success_rate
        for t in range(n_trials)
    ]

    e = np.asarray(engine_rates)
    k = np.asarray(kernel_rates)
    se = math.sqrt(
        float(e.var(ddof=1)) / e.size + float(k.var(ddof=1)) / k.size
    )
    gap = abs(float(e.mean()) - float(k.mean()))
    tol = 5.0 * se + 0.02
    if gap > tol:
        return [
            Discrepancy(
                case=case.name,
                seed=-1,
                check="fastpath-statistical",
                quantity="mean success rate",
                expected=f"{float(k.mean()):.4f} ± {tol:.4f}",
                actual=f"{float(e.mean()):.4f}",
                detail=f"{e.size} engine seeds vs {k.size} "
                f"{plan.kind} kernel trials",
            )
        ]
    return []


# ---------------------------------------------------------------------------
# streaming-equivalence: closed engine ↔ open streaming engine
# ---------------------------------------------------------------------------


def diff_streaming_equivalence(
    case: VerifyCase, seed: int
) -> List[Discrepancy]:
    """Closed engine on the frozen prefix vs the open streaming engine.

    :func:`~repro.stream.arrivals.materialize` freezes the case's
    arrival stream over ``[0, horizon)`` into a closed instance using the
    very draws the streaming run makes; the closed engine on that
    instance and :func:`~repro.stream.engine.stream_simulate` on the
    live stream (``max_slots=horizon``, no budget) must then agree
    bit-for-bit — per-job status, completion slot, and transmission
    count, plus the headline counts — under the case's jammer and fault
    plan alike.
    """
    process = case.process()
    assert process is not None, "streaming-equivalence case without process"
    instance = materialize(
        process, RngFactory(seed).stream("arrivals"), case.horizon
    )
    engine = simulate(
        instance,
        case.factory(),
        jammer=case.jammer(),
        seed=seed,
        faults=case.faults(),
    )
    stream = stream_simulate(
        process,
        case.factory(),
        seed=seed,
        max_slots=case.horizon,
        jammer=case.jammer(),
        faults=case.faults(),
        record_outcomes=True,
    )

    out: List[Discrepancy] = []

    def mismatch(quantity: str, expected, actual, detail: str = "") -> None:
        out.append(
            Discrepancy(
                case=case.name,
                seed=seed,
                check="streaming-equivalence",
                quantity=quantity,
                expected=str(expected),
                actual=str(actual),
                detail=detail,
            )
        )

    assert stream.outcomes is not None
    if stream.jobs_released != len(instance):
        mismatch(
            "jobs_released",
            len(instance),
            stream.jobs_released,
            detail="materialized prefix vs released stream jobs",
        )
    for outcome in engine.outcomes:
        job = outcome.job
        got = stream.outcomes.get(job.job_id)
        want = (
            outcome.status,
            outcome.completion_slot,
            outcome.transmissions,
        )
        if got != want:
            mismatch(
                f"job[{job.job_id}] (status, completion, transmissions)",
                want,
                got,
                detail=f"release {job.release}, window {job.window}",
            )
    if engine.n_succeeded != stream.jobs_succeeded:
        mismatch("n_succeeded", engine.n_succeeded, stream.jobs_succeeded)
    if engine.slots_simulated != stream.slots_simulated:
        mismatch(
            "slots_simulated", engine.slots_simulated, stream.slots_simulated
        )
    return out


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


def shrink_failing_instance(
    instance: Instance,
    seed: int,
    fails: Callable[[Instance, int], bool],
) -> Instance:
    """Greedily minimize a failing instance by deleting jobs.

    Repeatedly removes any single job whose removal keeps ``fails``
    true, until no single removal reproduces the failure (1-minimality).
    Job ids are preserved, so per-job RNG streams — and therefore the
    discrepancy being minimized — stay meaningful throughout.
    """
    jobs = list(instance.by_release)
    changed = True
    while changed and len(jobs) > 1:
        changed = False
        for i in range(len(jobs)):
            candidate = Instance(jobs[:i] + jobs[i + 1 :])
            if fails(candidate, seed):
                jobs = list(candidate.by_release)
                changed = True
                break
    return Instance(jobs)
