"""The named corpus of verification cases.

Every verification activity in :mod:`repro.verify` — the differential
runner, the metamorphic checker, the determinism audit, and the golden
traces under ``tests/verify/golden/`` — operates on cases from this
registry.  Naming the cases (instead of constructing instances ad hoc)
buys two things:

* a **subprocess** can rebuild exactly the same case from its name, so
  the determinism audit can compare digests across interpreter
  boundaries without pickling anything;
* golden files can reference cases by name and stay meaningful across
  sessions.

Cases are plain frozen dataclasses built from module-level callables, so
they are picklable and independent of construction order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.baselines.nocd import nocd_factory
from repro.baselines.sawtooth import sawtooth_factory
from repro.baselines.slowfeedback import slowfeedback_factory
from repro.baselines.softened import softened_factory
from repro.channel.jamming import Jammer, StochasticJammer
from repro.core.aligned import aligned_factory
from repro.core.punctual import punctual_factory
from repro.core.uniform import uniform_factory
from repro.errors import InvalidParameterError
from repro.experiments.robustness import fault_plan
from repro.faults.plan import FaultPlan
from repro.params import AlignedParams, PunctualParams, UniformParams
from repro.sim.engine import ProtocolFactory
from repro.sim.instance import Instance
from repro.sim.rng import RngFactory
from repro.stream.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    PoissonProcess,
    materialize,
)
from repro.workloads import batch_instance, single_class_instance

__all__ = ["CORPUS", "VerifyCase", "corpus_case", "smoke_cases"]

_ALIGNED = AlignedParams(lam=1, tau=4, min_level=9)
_PUNCTUAL = PunctualParams(
    aligned=AlignedParams(lam=1, tau=2, min_level=10),
    lam=2,
    pullback_exp=1,
    slingshot_exp=2,
)
#: A low min_level so follower trimmed windows land *above* it and the
#: PUNCTUAL kernel's embedded pecking-region machine actually runs
#: (with the default min_level=10 most followers fall below it).
_PUNCTUAL_FOLLOW = PunctualParams(
    aligned=AlignedParams(lam=1, tau=2, min_level=5),
    lam=2,
    pullback_exp=1,
    slingshot_exp=2,
)


def _batch16() -> Instance:
    return batch_instance(16, window=64)


def _batch_sparse() -> Instance:
    return batch_instance(8, window=1024)


def _staggered() -> Instance:
    a = batch_instance(6, window=256)
    b = batch_instance(6, window=256).relabeled(start=50).shifted(96)
    return a.merged(b)


def _single_class() -> Instance:
    return single_class_instance(10, level=9)


def _punctual_batch() -> Instance:
    return batch_instance(8, window=4096)


def _punctual_follow_batch() -> Instance:
    return batch_instance(6, window=2048)


def _uniform() -> ProtocolFactory:
    return uniform_factory()


def _uniform_two_attempts() -> ProtocolFactory:
    return uniform_factory(UniformParams(attempts=2))


def _aligned() -> ProtocolFactory:
    return aligned_factory(_ALIGNED)


def _punctual() -> ProtocolFactory:
    return punctual_factory(_PUNCTUAL)


def _punctual_follow() -> ProtocolFactory:
    return punctual_factory(_PUNCTUAL_FOLLOW)


def _no_jammer() -> Optional[Jammer]:
    return None


# -- streaming-equivalence cases --------------------------------------------
#
# Each pins an arrival process and a finite horizon.  ``build`` freezes
# the stream's seed-0 prefix into a closed instance (what the metamorphic
# and determinism checks — and the golden fingerprints — run on), while
# the differential check re-materializes per seed and demands the open
# streaming engine agree with the closed engine job-for-job.

_STREAM_POISSON = PoissonProcess(rate=0.15, window_sizes=(16, 64))
_STREAM_BURSTY = BurstyProcess(
    calm_rate=0.05,
    burst_rate=0.8,
    p_enter=0.01,
    p_exit=0.08,
    window_sizes=(16, 64),
)
_STREAM_DIURNAL = DiurnalProcess(
    base_rate=0.12, amplitude=0.6, period=512, window_sizes=(32,)
)
_STREAM_POISSON_HORIZON = 2000
_STREAM_BURSTY_HORIZON = 3000
_STREAM_DIURNAL_HORIZON = 2000


def _stream_build(process: ArrivalProcess, horizon: int) -> Instance:
    return materialize(process, RngFactory(0).stream("arrivals"), horizon)


def _stream_poisson_build() -> Instance:
    return _stream_build(_STREAM_POISSON, _STREAM_POISSON_HORIZON)


def _stream_bursty_build() -> Instance:
    return _stream_build(_STREAM_BURSTY, _STREAM_BURSTY_HORIZON)


def _stream_diurnal_build() -> Instance:
    return _stream_build(_STREAM_DIURNAL, _STREAM_DIURNAL_HORIZON)


def _stream_poisson_process() -> Optional[ArrivalProcess]:
    return _STREAM_POISSON


def _stream_bursty_process() -> Optional[ArrivalProcess]:
    return _STREAM_BURSTY


def _stream_diurnal_process() -> Optional[ArrivalProcess]:
    return _STREAM_DIURNAL


def _sawtooth() -> ProtocolFactory:
    return sawtooth_factory()


def _soft() -> ProtocolFactory:
    return softened_factory()


def _slowfb() -> ProtocolFactory:
    return slowfeedback_factory()


def _nocd() -> ProtocolFactory:
    return nocd_factory()


def _no_process() -> Optional[ArrivalProcess]:
    return None


def _no_faults() -> Optional[FaultPlan]:
    return None


def _clock_faults() -> Optional[FaultPlan]:
    return fault_plan("clock", 0.3)


def _jam30() -> Optional[Jammer]:
    return StochasticJammer(0.3)


def _jam10() -> Optional[Jammer]:
    return StochasticJammer(0.1)


@dataclass(frozen=True)
class VerifyCase:
    """One named verification case: workload, protocol, adversary, seeds.

    ``kind`` routes the case through the differential runner:
    ``"uniform-exact"`` (engine ↔ uniform kernel, bit-exact offset
    replay), ``"uniform-dominance"`` (attempts > 1: kernel success must
    imply engine success), ``"statistical"`` (mean success rates must
    agree within Monte-Carlo tolerance), ``"fastpath-exact"`` (engine ↔
    the batched fastpath trial *and* the seed-major ``run_batch``
    driver, bit-exact digests, clean or jammed), ``"fastpath-statistical"``
    (engine ↔ ALIGNED/PUNCTUAL full-protocol kernel, mean success rates
    within Monte-Carlo tolerance), ``"streaming-equivalence"`` (closed
    engine on the materialized stream prefix ↔ open streaming engine on
    the live stream, bit-exact per-job outcomes), ``"engine-only"`` (no
    applicable kernel; metamorphic + determinism checks only).
    """

    name: str
    build: Callable[[], Instance]
    protocol: Callable[[], ProtocolFactory]
    make_jammer: Callable[[], Optional[Jammer]] = _no_jammer
    seeds: Tuple[int, ...] = (0, 1, 2)
    kind: str = "engine-only"
    attempts: int = 1
    smoke: bool = True
    #: streaming-equivalence only: the arrival process and the horizon
    #: (slots of releases) the differential re-materializes per seed.
    make_process: Callable[[], Optional[ArrivalProcess]] = _no_process
    make_faults: Callable[[], Optional[FaultPlan]] = _no_faults
    horizon: int = 0

    def instance(self) -> Instance:
        """Build a fresh instance for this case."""
        return self.build()

    def factory(self) -> ProtocolFactory:
        """Build a fresh protocol factory for this case."""
        return self.protocol()

    def jammer(self) -> Optional[Jammer]:
        """Build a fresh jammer for this case (None for a clean channel)."""
        return self.make_jammer()

    def process(self) -> Optional[ArrivalProcess]:
        """The case's arrival process (streaming-equivalence only)."""
        return self.make_process()

    def faults(self) -> Optional[FaultPlan]:
        """Build a fresh fault plan for this case (usually None)."""
        return self.make_faults()


_CASES = (
    VerifyCase(
        name="uniform-batch",
        build=_batch16,
        protocol=_uniform,
        seeds=(0, 1, 2, 3),
        kind="uniform-exact",
    ),
    VerifyCase(
        name="uniform-sparse",
        build=_batch_sparse,
        protocol=_uniform,
        seeds=(0, 1, 2),
        kind="uniform-exact",
    ),
    VerifyCase(
        name="uniform-staggered",
        build=_staggered,
        protocol=_uniform,
        seeds=(0, 1, 2),
        kind="uniform-exact",
    ),
    VerifyCase(
        name="uniform-two-attempts",
        build=_batch16,
        protocol=_uniform_two_attempts,
        seeds=(0, 1, 2),
        kind="uniform-dominance",
        attempts=2,
    ),
    VerifyCase(
        name="uniform-jammed",
        build=_batch16,
        protocol=_uniform,
        make_jammer=_jam30,
        seeds=tuple(range(40)),
        kind="statistical",
        smoke=False,
    ),
    VerifyCase(
        name="aligned-single-class",
        build=_single_class,
        protocol=_aligned,
        seeds=(0, 1),
        kind="engine-only",
    ),
    VerifyCase(
        name="punctual-batch",
        build=_punctual_batch,
        protocol=_punctual,
        seeds=(0, 1),
        kind="engine-only",
    ),
    VerifyCase(
        name="punctual-jammed",
        build=_punctual_batch,
        protocol=_punctual,
        make_jammer=_jam10,
        seeds=(0, 1),
        kind="engine-only",
        smoke=False,
    ),
    VerifyCase(
        name="fastpath-uniform-clean",
        build=_staggered,
        protocol=_uniform,
        seeds=(0, 1, 2, 3),
        kind="fastpath-exact",
    ),
    VerifyCase(
        name="fastpath-uniform-jammed",
        build=_batch16,
        protocol=_uniform,
        make_jammer=_jam30,
        seeds=(0, 1, 2, 3, 4, 5),
        kind="fastpath-exact",
    ),
    VerifyCase(
        name="fastpath-aligned-full",
        build=_single_class,
        protocol=_aligned,
        seeds=tuple(range(24)),
        kind="fastpath-statistical",
    ),
    VerifyCase(
        name="fastpath-punctual-full",
        build=_punctual_batch,
        protocol=_punctual,
        seeds=tuple(range(20)),
        kind="fastpath-statistical",
    ),
    VerifyCase(
        name="fastpath-punctual-follow",
        build=_punctual_follow_batch,
        protocol=_punctual_follow,
        seeds=tuple(range(20)),
        kind="fastpath-statistical",
        smoke=False,
    ),
    # -- the modern zoo (collision-softening / slow-feedback / no-CD) --
    #
    # No vectorized kernel exists for these, so the differential check
    # is the streaming engine: each protocol gets an engine-only
    # determinism + metamorphic case and a streaming-equivalence case
    # comparing the closed engine against the open streaming engine.
    VerifyCase(
        name="soft-batch",
        build=_batch16,
        protocol=_soft,
        seeds=(0, 1, 2),
        kind="engine-only",
    ),
    VerifyCase(
        name="slowfb-jammed",
        build=_batch_sparse,
        protocol=_slowfb,
        make_jammer=_jam30,
        seeds=(0, 1, 2),
        kind="engine-only",
        smoke=False,
    ),
    VerifyCase(
        name="nocd-batch",
        build=_batch16,
        protocol=_nocd,
        seeds=(0, 1, 2),
        kind="engine-only",
    ),
    VerifyCase(
        name="stream-poisson-soft",
        build=_stream_poisson_build,
        protocol=_soft,
        seeds=(0, 1),
        kind="streaming-equivalence",
        make_process=_stream_poisson_process,
        horizon=_STREAM_POISSON_HORIZON,
    ),
    VerifyCase(
        name="stream-poisson-slowfb",
        build=_stream_poisson_build,
        protocol=_slowfb,
        seeds=(0, 1),
        kind="streaming-equivalence",
        make_process=_stream_poisson_process,
        horizon=_STREAM_POISSON_HORIZON,
        smoke=False,
    ),
    VerifyCase(
        name="stream-diurnal-nocd",
        build=_stream_diurnal_build,
        protocol=_nocd,
        make_jammer=_jam10,
        seeds=(0, 1),
        kind="streaming-equivalence",
        make_process=_stream_diurnal_process,
        horizon=_STREAM_DIURNAL_HORIZON,
        smoke=False,
    ),
    VerifyCase(
        name="stream-poisson-uniform",
        build=_stream_poisson_build,
        protocol=_uniform,
        seeds=(0, 1, 2),
        kind="streaming-equivalence",
        make_process=_stream_poisson_process,
        horizon=_STREAM_POISSON_HORIZON,
    ),
    VerifyCase(
        name="stream-bursty-faulted",
        build=_stream_bursty_build,
        protocol=_sawtooth,
        seeds=(0, 1),
        kind="streaming-equivalence",
        make_process=_stream_bursty_process,
        make_faults=_clock_faults,
        horizon=_STREAM_BURSTY_HORIZON,
        smoke=False,
    ),
    VerifyCase(
        name="stream-diurnal-jammed",
        build=_stream_diurnal_build,
        protocol=_sawtooth,
        make_jammer=_jam10,
        seeds=(0, 1),
        kind="streaming-equivalence",
        make_process=_stream_diurnal_process,
        horizon=_STREAM_DIURNAL_HORIZON,
    ),
)

#: Every registered verification case, by name.
CORPUS: Dict[str, VerifyCase] = {c.name: c for c in _CASES}


def corpus_case(name: str) -> VerifyCase:
    """The registered case called ``name`` (raises on unknown names)."""
    try:
        return CORPUS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown verify case {name!r} (choices: {sorted(CORPUS)})"
        ) from None


def smoke_cases() -> Tuple[VerifyCase, ...]:
    """The CI-speed subset of the corpus (``repro verify --smoke``)."""
    return tuple(c for c in _CASES if c.smoke)
