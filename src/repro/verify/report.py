"""Verification results: discrepancy records, the report, the artifact.

A verification run produces a flat list of :class:`CheckResult` records
(one per executed check), each carrying zero or more
:class:`Discrepancy` records pinpointing what disagreed.  The
:class:`VerifyReport` renders them for humans and serializes them as a
telemetry JSONL artifact (via :mod:`repro.obs`) so CI can upload the
exact disagreement on failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_table
from repro.obs.telemetry import Telemetry

__all__ = ["CheckResult", "Discrepancy", "VerifyReport"]


@dataclass(frozen=True)
class Discrepancy:
    """One observed disagreement between two executions.

    ``expected`` / ``actual`` are kept as strings so the record stays
    JSON-serializable whatever the compared quantity was (an int, an
    array summary, a digest).
    """

    case: str
    seed: int
    check: str
    quantity: str
    expected: str
    actual: str
    detail: str = ""

    def as_record(self) -> Dict[str, Any]:
        """The JSONL payload of this discrepancy."""
        return {
            "case": self.case,
            "seed": self.seed,
            "check": self.check,
            "quantity": self.quantity,
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class CheckResult:
    """The outcome of one verification check on one case.

    ``shrunk`` is the minimized failing reproduction found by the
    differential shrink loop (empty when the check passed or shrinking
    does not apply): a tuple of ``(job_id, release, deadline)`` triples.
    """

    case: str
    check: str
    seeds: Tuple[int, ...]
    discrepancies: Tuple[Discrepancy, ...] = ()
    detail: str = ""
    shrunk: Tuple[Tuple[int, int, int], ...] = ()

    @property
    def ok(self) -> bool:
        return not self.discrepancies


@dataclass
class VerifyReport:
    """All check results of one verification run."""

    results: List[CheckResult] = field(default_factory=list)

    def add(self, result: CheckResult) -> None:
        self.results.append(result)

    @property
    def n_checks(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> Tuple[CheckResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    @property
    def discrepancies(self) -> Tuple[Discrepancy, ...]:
        return tuple(d for r in self.results for d in r.discrepancies)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        """The human-readable verification table plus failure details."""
        rows = []
        for r in self.results:
            rows.append([
                r.case,
                r.check,
                len(r.seeds),
                "ok" if r.ok else f"FAIL ({len(r.discrepancies)})",
            ])
        out = [
            format_table(
                ["case", "check", "seeds", "status"],
                rows,
                title=f"verification: {self.n_checks} checks, "
                f"{len(self.failures)} failing",
            )
        ]
        for r in self.failures:
            out.append("")
            out.append(f"FAIL {r.case} / {r.check}:")
            for d in r.discrepancies[:10]:
                out.append(
                    f"  seed {d.seed}: {d.quantity}: expected "
                    f"{d.expected}, got {d.actual}"
                    + (f" ({d.detail})" if d.detail else "")
                )
            if len(r.discrepancies) > 10:
                out.append(
                    f"  ... {len(r.discrepancies) - 10} more discrepancies"
                )
            if r.shrunk:
                jobs = ", ".join(
                    f"Job({j}, {rel}, {dl})" for j, rel, dl in r.shrunk
                )
                out.append(f"  minimized reproduction: [{jobs}]")
        return "\n".join(out)

    def telemetry(self, label: str = "repro verify") -> Telemetry:
        """A telemetry bundle carrying every check and discrepancy."""
        tele = Telemetry(label=label, context={"command": "verify"})
        for r in self.results:
            tele.metrics.counter("verify.checks").inc()
            if not r.ok:
                tele.metrics.counter("verify.failures").inc()
            tele.events.emit(
                "verify.check",
                -1,
                -1,
                case=r.case,
                check=r.check,
                seeds=list(r.seeds),
                ok=r.ok,
            )
            for d in r.discrepancies:
                tele.metrics.counter("verify.discrepancies").inc()
                tele.events.emit("verify.discrepancy", -1, -1, **d.as_record())
            if r.shrunk:
                tele.events.emit(
                    "verify.shrunk",
                    -1,
                    -1,
                    case=r.case,
                    check=r.check,
                    jobs=[list(t) for t in r.shrunk],
                )
        return tele

    def write_artifact(self, path: Union[str, Path]) -> Path:
        """Write the JSONL discrepancy artifact; returns the path."""
        return self.telemetry().write_jsonl(path)
