"""Differential, metamorphic, and determinism verification.

This package cross-checks the repo's redundant implementations against
each other and pins down reproducibility guarantees:

* :mod:`repro.verify.differential` — the slot engine vs every fastpath
  kernel, at the strongest comparison each pair admits (bit-exact offset
  replay, dominance, paired-draw naive references, statistical);
* :mod:`repro.verify.metamorphic` — invariances of the engine itself
  (time-shift equivariance, presentation-order insensitivity, zero-jam
  neutrality, observation-only instrumentation);
* :mod:`repro.verify.determinism` — same inputs ⇒ same content digest,
  in-process, across a fresh interpreter, and through a cache
  round-trip;
* :mod:`repro.verify.corpus` — the named cases everything above (and
  the golden traces under ``tests/verify/golden/``) runs on.

Entry points: :func:`run_verification` (library),
``repro verify [--smoke]`` (CLI).
"""

from repro.verify.corpus import CORPUS, VerifyCase, corpus_case, smoke_cases
from repro.verify.determinism import case_fingerprint
from repro.verify.report import CheckResult, Discrepancy, VerifyReport
from repro.verify.runner import run_verification

__all__ = [
    "CORPUS",
    "CheckResult",
    "Discrepancy",
    "VerifyCase",
    "VerifyReport",
    "case_fingerprint",
    "corpus_case",
    "run_verification",
    "smoke_cases",
]
