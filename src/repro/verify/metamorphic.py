"""Metamorphic invariances of the simulation engine.

Each check runs the same case twice under a transformation that must not
change the outcome, and reports any drift as discrepancies:

* **time shift** — translating every window by Δ shifts every completion
  slot by exactly Δ and changes nothing else (per-job streams are keyed
  by job id, ages are relative, and the channel stream advances through
  the same slot sequence);
* **presentation order** — shuffling the order jobs are listed in the
  ``Instance`` is invisible (every engine view sorts by release);
* **zero-probability jammer** — ``StochasticJammer(0.0)`` must be
  indistinguishable from no jammer at all: it consumes channel-stream
  draws, but that stream feeds no protocol;
* **observational toggles** — attaching telemetry, enabling the
  invariant checker, and arming a never-tripping watchdog are
  observation-only and must leave results bit-identical.

Deliberately *not* an invariance: permuting job **ids**.  Per-job
randomness is keyed by id (that is what makes paired comparisons and
replay possible), so re-labeling jobs re-deals their draws.  The sound
order-insensitivity claim is the presentation-order check above;
``docs/VERIFICATION.md`` discusses the distinction.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.channel.jamming import StochasticJammer
from repro.obs.telemetry import Telemetry
from repro.sim.engine import simulate
from repro.sim.instance import Instance
from repro.sim.metrics import SimulationResult
from repro.sim.watchdog import Watchdog
from repro.verify.corpus import VerifyCase
from repro.verify.report import Discrepancy

__all__ = [
    "check_observational_toggles",
    "check_presentation_order",
    "check_time_shift",
    "check_zero_jammer",
]


def _compare(
    case: VerifyCase,
    seed: int,
    check: str,
    base: SimulationResult,
    other: SimulationResult,
    *,
    shift: int = 0,
    detail: str = "",
) -> List[Discrepancy]:
    """Field-wise comparison; ``shift`` offsets the transformed run."""
    out: List[Discrepancy] = []

    def mismatch(quantity: str, expected, actual) -> None:
        out.append(
            Discrepancy(
                case=case.name,
                seed=seed,
                check=check,
                quantity=quantity,
                expected=str(expected),
                actual=str(actual),
                detail=detail,
            )
        )

    if base.slots_simulated != other.slots_simulated:
        mismatch("slots_simulated", base.slots_simulated, other.slots_simulated)
    if len(base.outcomes) != len(other.outcomes):
        mismatch("n_outcomes", len(base.outcomes), len(other.outcomes))
        return out
    for a, b in zip(base.outcomes, other.outcomes):
        jid = a.job.job_id
        if a.status is not b.status:
            mismatch(f"job[{jid}].status", a.status.name, b.status.name)
        expected_slot = (
            a.completion_slot + shift if a.completion_slot >= 0 else -1
        )
        if expected_slot != b.completion_slot:
            mismatch(
                f"job[{jid}].completion_slot",
                expected_slot,
                b.completion_slot,
            )
        if a.transmissions != b.transmissions:
            mismatch(
                f"job[{jid}].transmissions", a.transmissions, b.transmissions
            )
    return out


def check_time_shift(
    case: VerifyCase, seed: int, delta: Optional[int] = None
) -> List[Discrepancy]:
    """Shifting the whole instance by Δ must shift results by exactly Δ.

    Δ defaults to ``max_window * ROUND_LENGTH`` so the shift preserves
    both power-of-two window alignment (ALIGNED's structure) and round
    phase (PUNCTUAL's), keeping the equivariance claim exact for every
    protocol family.
    """
    base = simulate(
        case.instance(), case.factory(), jammer=case.jammer(), seed=seed
    )
    if delta is None:
        from repro.core.rounds import ROUND_LENGTH

        delta = max(case.instance().max_window, 1) * ROUND_LENGTH
    shifted = simulate(
        case.instance().shifted(delta),
        case.factory(),
        jammer=case.jammer(),
        seed=seed,
    )
    return _compare(
        case, seed, "time-shift", base, shifted,
        shift=delta, detail=f"delta={delta}",
    )


def check_presentation_order(case: VerifyCase, seed: int) -> List[Discrepancy]:
    """Shuffling the jobs tuple (ids untouched) must change nothing."""
    base = simulate(
        case.instance(), case.factory(), jammer=case.jammer(), seed=seed
    )
    jobs = list(case.instance().jobs)
    random.Random(seed).shuffle(jobs)
    shuffled = simulate(
        Instance(jobs), case.factory(), jammer=case.jammer(), seed=seed
    )
    return _compare(case, seed, "presentation-order", base, shuffled)


def check_zero_jammer(case: VerifyCase, seed: int) -> List[Discrepancy]:
    """A p_jam = 0 jammer must be indistinguishable from no jammer.

    Only meaningful for cases whose own jammer is ``None`` (otherwise
    the comparison would remove the case's adversary).
    """
    base = simulate(case.instance(), case.factory(), jammer=None, seed=seed)
    zero = simulate(
        case.instance(),
        case.factory(),
        jammer=StochasticJammer(0.0),
        seed=seed,
    )
    return _compare(case, seed, "zero-jammer", base, zero)


def check_observational_toggles(
    case: VerifyCase, seed: int
) -> List[Discrepancy]:
    """Telemetry + invariants + a slack watchdog must not change results."""
    base = simulate(
        case.instance(), case.factory(), jammer=case.jammer(), seed=seed
    )
    instrumented = simulate(
        case.instance(),
        case.factory(),
        jammer=case.jammer(),
        seed=seed,
        telemetry=Telemetry(label="verify-toggle"),
        invariants=True,
        watchdog=Watchdog(max_slots=10**9),
    )
    return _compare(
        case, seed, "observational-toggles", base, instrumented,
        detail="telemetry + invariants + slack watchdog",
    )
