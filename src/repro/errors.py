"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(ReproError):
    """An instance (set of jobs) violates a structural requirement.

    Raised, for example, when a job has a deadline before its release time,
    when a window claimed to be power-of-2 aligned is not, or when an
    instance that must be feasible fails the feasibility check.
    """


class InvalidParameterError(ReproError):
    """A protocol or simulation parameter is outside its legal range."""


class ProtocolViolationError(ReproError):
    """A protocol state machine was driven in an illegal order.

    This indicates a bug in the simulation engine or a protocol
    implementation (e.g. delivering feedback for a slot before asking the
    protocol for its action in that slot), never a property of the workload.
    """


class SimulationError(ReproError):
    """The simulation engine reached an internal inconsistency."""


class InvariantViolationError(SimulationError):
    """A runtime invariant of the simulation was violated.

    Raised by :class:`repro.sim.invariants.InvariantChecker` when a run
    breaks one of the model's ground rules (a success outside a job's
    window, a duplicate delivery, non-monotone protocol state, or
    contention bookkeeping inconsistent with Lemma 2).  Indicates a bug
    in a protocol or the engine — never a property of the workload.
    """


class PaperGuaranteeWarning(UserWarning):
    """A configuration leaves the regime covered by the paper's analysis.

    Emitted (not raised) when parameters are legal for experimentation
    but void a stated guarantee — e.g. a jamming probability above the
    ``p_jam <= 1/2`` threshold that Theorem 14's whp bound for ALIGNED
    requires.  Filter with ``warnings.simplefilter`` if the breakdown
    regime is being charted deliberately.
    """
