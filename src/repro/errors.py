"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(ReproError):
    """An instance (set of jobs) violates a structural requirement.

    Raised, for example, when a job has a deadline before its release time,
    when a window claimed to be power-of-2 aligned is not, or when an
    instance that must be feasible fails the feasibility check.
    """


class InvalidParameterError(ReproError):
    """A protocol or simulation parameter is outside its legal range."""


class ProtocolViolationError(ReproError):
    """A protocol state machine was driven in an illegal order.

    This indicates a bug in the simulation engine or a protocol
    implementation (e.g. delivering feedback for a slot before asking the
    protocol for its action in that slot), never a property of the workload.
    """


class SimulationError(ReproError):
    """The simulation engine reached an internal inconsistency."""
