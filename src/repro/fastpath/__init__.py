"""Vectorized numpy fast paths, cross-validated against the slot engine.

Two tiers live here:

* **component kernels** (``estimation_fast``, ``broadcast_fast``,
  ``aligned_fast`` class runs, ``anarchist_fast``, ``uniform_fast``) —
  one protocol stage at a time, used by analysis scripts and as paired
  references in the verify battery;
* **full-protocol kernels** (``aligned_full``, ``punctual_full``, the
  engine-exact UNIFORM replay in ``batched``) — whole engine runs as
  array programs, plus the seed-major batched driver (``batched``)
  that the experiment layer routes to via ``run_seeds(fastpath=...)``.
"""

from repro.fastpath.aligned_fast import ClassRunResult, simulate_class_run_fast
from repro.fastpath.aligned_full import run_pecking_region, simulate_aligned_full
from repro.fastpath.anarchist_fast import (
    AnarchistFastResult,
    simulate_anarchists_fast,
)
from repro.fastpath.batched import (
    KERNEL_VERSION,
    FastpathPlan,
    FastpathUnavailableError,
    plan_fastpath,
    run_batch,
    simulate_fastpath,
)
from repro.fastpath.broadcast_fast import BroadcastFastResult, simulate_broadcast_fast
from repro.fastpath.estimation_fast import (
    estimation_success_counts,
    simulate_estimation_fast,
)
from repro.fastpath.fullproto import (
    FullProtocolResult,
    digest_for,
    union_active_slots,
)
from repro.fastpath.punctual_full import simulate_punctual_full
from repro.fastpath.uniform_fast import UniformFastResult, simulate_uniform_fast

__all__ = [
    "ClassRunResult",
    "simulate_class_run_fast",
    "run_pecking_region",
    "simulate_aligned_full",
    "AnarchistFastResult",
    "simulate_anarchists_fast",
    "KERNEL_VERSION",
    "FastpathPlan",
    "FastpathUnavailableError",
    "plan_fastpath",
    "run_batch",
    "simulate_fastpath",
    "BroadcastFastResult",
    "simulate_broadcast_fast",
    "estimation_success_counts",
    "simulate_estimation_fast",
    "FullProtocolResult",
    "digest_for",
    "union_active_slots",
    "simulate_punctual_full",
    "UniformFastResult",
    "simulate_uniform_fast",
]
