"""Vectorized numpy fast paths, cross-validated against the slot engine."""

from repro.fastpath.aligned_fast import ClassRunResult, simulate_class_run_fast
from repro.fastpath.anarchist_fast import (
    AnarchistFastResult,
    simulate_anarchists_fast,
)
from repro.fastpath.broadcast_fast import BroadcastFastResult, simulate_broadcast_fast
from repro.fastpath.estimation_fast import (
    estimation_success_counts,
    simulate_estimation_fast,
)
from repro.fastpath.uniform_fast import UniformFastResult, simulate_uniform_fast

__all__ = [
    "ClassRunResult",
    "simulate_class_run_fast",
    "AnarchistFastResult",
    "simulate_anarchists_fast",
    "BroadcastFastResult",
    "simulate_broadcast_fast",
    "estimation_success_counts",
    "simulate_estimation_fast",
    "UniformFastResult",
    "simulate_uniform_fast",
]
