"""Vectorized end-to-end PUNCTUAL protocol for batch instances.

The engine steps PUNCTUAL's per-job state machines slot by slot; for a
*batch* instance — every job sharing one ``(release, deadline)`` window,
the setting of the paper's Section 4 experiments — the cohort moves in
lockstep and the whole run collapses to closed-form timeline arithmetic
plus a handful of array draws:

* all jobs listen for 13 slots, announce together, and synchronize on
  the common origin ``release + 13``;
* the first timekeeper slot is silent, so everyone enters SLINGSHOT and
  elections run every round while the pullback budget lasts: the number
  of claimants per election slot is Binomial(n, p_claim), a lone
  un-jammed claimant becomes the leader (uniformly random job);
* with no leader elected, the recheck finds an empty channel and the
  cohort goes ANARCHIST — per anarchy slot, Binomial(alive, p_anarch)
  with exactly one un-jammed transmitter delivers one job;
* with a leader, beacons tile the timekeeper slots up to the abdication
  round ``m``; the first un-jammed regular beacon gives followers the
  virtual time, they trim their (equal) windows and run the embedded
  ALIGNED machine through the shared
  :func:`~repro.fastpath.aligned_full.run_pecking_region` over virtual
  rounds (round ``v`` maps to real slot ``origin + 10·v + 5``); the
  leader succeeds iff its abdication beacon (round ``m``, carrying the
  data payload) is not jammed.

One deliberate approximation, relevant only under jamming: if *every*
beacon the leader sends is jammed, the engine's followers eventually
drop the expired claim and could re-enter slingshot; the kernel lets
them fail at the effective deadline instead.  Reaching that state needs
on the order of ``eff_window/10`` consecutive jammed single-transmitter
slots (probability ``p_jam^(m-k_e)``), far below Monte-Carlo resolution
at any jamming rate the experiments use.

Agreement with the engine is statistical (the kernel owns its RNG
stream); per-job timing bookkeeping — completion slots, give-up slots,
``slots_simulated`` — follows the engine's rules exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidParameterError
from repro.fastpath.aligned_full import run_pecking_region
from repro.fastpath.fullproto import FullProtocolResult
from repro.params import PunctualParams
from repro.sim.instance import Instance
from repro.sim.job import window_class

from repro.core.trimming import trimmed_window

__all__ = ["simulate_punctual_full"]

#: Slots of the sync preamble (``RoundSynchronizer.LISTEN_BUDGET``).
_LISTEN = 13
#: Round length and the in-round offsets of the special slots
#: (see ``ROLE_OF_INDEX`` in :mod:`repro.core.punctual`).
_ROUND = 10
_TK = 3
_ALIGNED = 5
_ELECTION = 7
_ANARCHY = 9


def _run_anarchy(
    alive: np.ndarray,
    slots: np.ndarray,
    p_tx: float,
    rng: np.random.Generator,
    p_jam: float,
    success: np.ndarray,
    completion: np.ndarray,
    retire: np.ndarray,
) -> None:
    """Play the anarchist stage over ``slots`` for the ``alive`` jobs.

    Per slot each live job transmits with probability ``p_tx``; a lone
    un-jammed transmitter succeeds and stops.  Vectorized in epochs of a
    fixed chunk of slots: the population only shrinks at a success, and
    successes arrive every few slots, so drawing a small chunk of
    per-slot transmitter counts (restarting from just past the first
    success) keeps the draw volume proportional to the success count —
    drawing the whole remaining tail per epoch costs slots × successes.
    """
    alive = np.array(alive, dtype=np.int64)
    n_alive = int(alive.size)
    total = int(slots.size)
    chunk = 32
    i = 0
    while n_alive and i < total:
        end = min(i + chunk, total)
        tx = rng.binomial(n_alive, p_tx, size=end - i)
        cand = np.flatnonzero(tx == 1)
        if p_jam > 0.0 and cand.size:
            coins = rng.random(cand.size)
            cand = cand[coins >= p_jam]
        if cand.size == 0:
            i = end
            continue
        pick = int(rng.integers(n_alive))
        winner = int(alive[pick])
        t = int(slots[i + int(cand[0])])
        success[winner] = True
        completion[winner] = t
        retire[winner] = t
        alive[pick] = alive[n_alive - 1]  # swap-remove, order is immaterial
        n_alive -= 1
        i += int(cand[0]) + 1


def simulate_punctual_full(
    instance: Instance,
    params: PunctualParams,
    rng: np.random.Generator,
    *,
    p_jam: float = 0.0,
) -> FullProtocolResult:
    """One full PUNCTUAL run over a batch instance, fully vectorized.

    Requires every job to share one ``(release, deadline)`` window (the
    cohort setting; :func:`repro.workloads.batch_instance`).  See the
    module docstring for the model and its one documented approximation.
    """
    if not 0.0 <= p_jam <= 1.0:
        raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
    jobs = instance.by_release
    n = len(jobs)
    if n == 0:
        return FullProtocolResult(
            np.zeros(0, dtype=bool),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            0,
        )
    if len(instance.by_window) != 1:
        raise InvalidParameterError(
            "simulate_punctual_full requires a batch instance "
            f"(one shared window, got {len(instance.by_window)})"
        )
    release = jobs[0].release
    deadline = jobs[0].deadline
    window = deadline - release
    eff_w = 1 << (window.bit_length() - 1)  # _floor_pow2(window)
    eff_end = release + eff_w
    fail_retire = min(eff_end, deadline - 1)

    success = np.zeros(n, dtype=bool)
    completion = np.full(n, -1, dtype=np.int64)
    retire = np.full(n, fail_retire, dtype=np.int64)

    def finish() -> FullProtocolResult:
        slots = int(retire.max()) - release + 1
        return FullProtocolResult(success, completion, retire, slots)

    # The first timekeeper slot is origin + 3 = release + 16; with
    # eff_w <= 16 it falls at/past the effective deadline, so no stage
    # past syncing is ever reached and every job times out.
    if eff_w < 32:
        return finish()

    origin = release + _LISTEN
    horizon = eff_w - _LISTEN  # slots from origin to eff_end
    # The abdication round: the first timekeeper slot t with
    # t + ROUND >= eff_end, i.e. the largest k with 10k + 3 < horizon.
    m = (horizon - 4) // _ROUND

    # -- election ---------------------------------------------------------
    # Stage SLINGSHOT holds while the pullback budget D lasts: the claim
    # at election slot t is drawn iff t <= release + 16 + D.
    D = params.pullback_duration(eff_w)
    p_claim = params.pullback_probability(eff_w)
    p_anarch = params.anarchist_probability(eff_w)
    leader: Optional[int] = None
    k_e = -1
    k = 0
    while True:
        t_e = origin + _ROUND * k + _ELECTION
        if t_e > release + 16 + D or t_e >= eff_end:
            break
        claims = int(rng.binomial(n, p_claim))
        if claims == 1 and (p_jam == 0.0 or rng.random() >= p_jam):
            leader = int(rng.integers(n))
            k_e = k
            break
        k += 1

    if leader is None:
        # Pullback expired with no leader: the recheck timekeeper slot is
        # silent and the whole cohort goes ANARCHIST.
        t_rc = release + 16 + _ROUND * ((D + _ROUND) // _ROUND)
        if t_rc < eff_end:
            anarchy = np.arange(t_rc + 6, eff_end, _ROUND, dtype=np.int64)
            _run_anarchy(
                np.arange(n), anarchy, p_anarch, rng, p_jam,
                success, completion, retire,
            )
        return finish()

    # -- leader timeline --------------------------------------------------
    t_last = origin + _ROUND * m + _TK  # abdication beacon slot
    if m < k_e + 1:
        # No timekeeper slot between the election and the effective
        # deadline: the leader never gets to beacon and everyone fails.
        return finish()
    reg_rounds = np.arange(k_e + 1, m)
    if p_jam > 0.0 and reg_rounds.size:
        ok = np.flatnonzero(rng.random(reg_rounds.size) >= p_jam)
        v0: Optional[int] = int(reg_rounds[ok[0]]) if ok.size else None
    else:
        v0 = int(reg_rounds[0]) if reg_rounds.size else None
    abd_ok = p_jam == 0.0 or rng.random() >= p_jam

    if abd_ok:
        success[leader] = True
        completion[leader] = t_last
        retire[leader] = t_last
    else:
        # FINISHED without own success: gives up at the next slot.
        retire[leader] = min(t_last + 1, fail_retire)

    followers = np.setdiff1d(np.arange(n), [leader])
    if followers.size == 0:
        return finish()

    if v0 is None:
        # Every regular beacon jammed.  If the abdication beacon gets
        # through it reveals the virtual time, but by then at most one
        # round remains, so the build attempt falls back to ANARCHIST.
        # If it is jammed too, followers never learn the virtual time
        # and fail at the effective deadline.
        if abd_ok:
            anarchy = np.arange(t_last + 6, eff_end, _ROUND, dtype=np.int64)
            _run_anarchy(
                followers, anarchy, p_anarch, rng, p_jam,
                success, completion, retire,
            )
        return finish()

    # Followers learn the virtual time from the first successful regular
    # beacon (round v0, slot t_b) and immediately try to build the
    # embedded ALIGNED machine over the trimmed virtual window.
    t_b = origin + _ROUND * v0 + _TK
    rounds_left = (eff_end - t_b) // _ROUND
    level = -1
    s = e = 0
    if rounds_left >= 3:
        s, e = trimmed_window(v0 + 1, v0 + rounds_left)
        level = window_class(e - s)
    if rounds_left < 3 or level < params.aligned.min_level:
        anarchy = np.arange(t_b + 6, eff_end, _ROUND, dtype=np.int64)
        _run_anarchy(
            followers, anarchy, p_anarch, rng, p_jam,
            success, completion, retire,
        )
        return finish()

    # Embedded machine: virtual round v <-> real slot origin + 10v + 5.
    v_succ = np.zeros(n, dtype=bool)
    v_win = np.full(n, -1, dtype=np.int64)
    v_done = np.full(n, -1, dtype=np.int64)
    run_pecking_region(
        s, level, params.aligned.min_level, {(level, s): followers},
        params.aligned, rng, p_jam, v_succ, v_win, v_done,
    )
    winners = followers[v_succ[followers]]
    success[winners] = True
    completion[winners] = origin + _ROUND * v_win[winners] + _ALIGNED
    retire[winners] = completion[winners]
    losers = followers[~v_succ[followers]]
    for i in losers:
        g = int(v_done[i]) + 1  # first machine step after the run's end
        if v_done[i] >= 0 and g < e:
            # The machine reports the completed run and the job gives up
            # at its next aligned slot.
            retire[i] = origin + _ROUND * g + _ALIGNED
        else:
            # Truncated run (or no step left inside the trim): the job
            # stays live until the trimmed window expires.
            retire[i] = origin + _ROUND * e
    return finish()
