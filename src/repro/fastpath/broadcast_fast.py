"""Vectorized batch-broadcast trials (experiments E5/E7 at scale).

Simulates the back-on broadcast protocol for one class occupancy: the
subphase structure comes verbatim from
:class:`repro.core.broadcast.BroadcastSchedule`; within a subphase of
length X every still-live job draws one uniform slot and succeeds iff its
slot is unique (and un-jammed).  Each subphase is a couple of
``bincount`` calls, so a full run is ``O(#subphases · (n + X))`` numpy
work regardless of λ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.broadcast import BroadcastSchedule
from repro.errors import InvalidParameterError
from repro.params import AlignedParams

__all__ = ["BroadcastFastResult", "simulate_broadcast_fast"]


@dataclass(frozen=True)
class BroadcastFastResult:
    """Outcome of one broadcast-stage run for a single class occupancy."""

    n_jobs: int
    n_succeeded: int
    steps_used: int  # total broadcast steps in the schedule

    @property
    def all_succeeded(self) -> bool:
        return self.n_succeeded == self.n_jobs

    @property
    def n_failed(self) -> int:
        return self.n_jobs - self.n_succeeded


def simulate_broadcast_fast(
    n_jobs: int,
    level: int,
    estimate: int,
    params: AlignedParams,
    rng: np.random.Generator,
    *,
    p_jam: float = 0.0,
    step_budget: Optional[int] = None,
) -> BroadcastFastResult:
    """One broadcast-stage run, vectorized per subphase.

    Parameters
    ----------
    n_jobs:
        True number of jobs ``n̂`` in the class occupancy.
    level, estimate:
        Class ℓ and the (power-of-two) estimate driving the schedule.
    p_jam:
        Stochastic jamming of would-be successes.
    step_budget:
        Optional truncation: only the first ``step_budget`` broadcast
        steps run (models a pecking-order truncation mid-broadcast).
    """
    if n_jobs < 0:
        raise InvalidParameterError(f"n_jobs must be >= 0, got {n_jobs}")
    if not 0.0 <= p_jam <= 1.0:
        raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
    sched = BroadcastSchedule(level, estimate, params.lam)
    alive = n_jobs
    steps_done = 0
    budget = sched.total_steps if step_budget is None else min(step_budget, sched.total_steps)
    for phase in range(sched.n_phases):
        x = sched.subphase_lengths[phase]
        for _ in range(params.lam):
            if steps_done + x > budget:
                return BroadcastFastResult(n_jobs, n_jobs - alive, steps_done)
            steps_done += x
            if alive == 0:
                continue
            picks = rng.integers(0, x, size=alive)
            counts = np.bincount(picks, minlength=x)
            unique = counts[picks] == 1
            if p_jam > 0.0:
                jam = rng.random(x) < p_jam
                unique &= ~jam[picks]
            alive -= int(unique.sum())
    return BroadcastFastResult(n_jobs, n_jobs - alive, steps_done)
