"""Vectorized end-to-end ALIGNED protocol (whole runs, not components).

The reference engine steps ALIGNED slot by slot through
:class:`~repro.core.schedule.PeckingOrderView`; this kernel reproduces a
whole run with array operations by exploiting the pecking order's
structure: at any slot the *smallest* unfinished class is active, so the
class-ℓ run of an aligned subwindow consumes exactly the earliest slots
of that subwindow not already consumed by smaller classes, in temporal
order.  Processing levels from ``min_level`` upward with a consumed-slot
mask therefore replays the schedule without stepping slots:

* an **empty** class run silently consumes ``λℓ²`` free slots (its
  estimation resolves to 0, no broadcast — the ``Σℓ²`` term of
  Lemma 12) and draws no randomness;
* an **occupied** run draws per-phase estimation success counts via
  :func:`~repro.fastpath.estimation_fast.estimation_success_counts`,
  resolves the estimate with the shared
  :func:`~repro.core.estimation.resolve_estimate` rule, then plays the
  broadcast subphases with bincount uniqueness per subphase, honouring
  truncation when the window runs out of free slots mid-run.

Agreement with the engine is **statistical** (the kernel consumes its
own RNG stream, not the engine's per-job streams); the differential
harness cross-checks mean success rates, and the per-job *timing*
bookkeeping (completion, retirement, ``slots_simulated``) follows the
engine's rules exactly:

* a successful job retires at its winning slot;
* a job whose run completes without success gives up at the *next* slot
  (capped at ``deadline - 1``);
* a job whose run is truncated by its window stays live until
  ``deadline - 1``.

Jamming follows :class:`~repro.channel.jamming.StochasticJammer` with
``jam_silence=False``: only would-be-successful (single-transmitter)
slots can be flipped, so empty-class estimations still resolve to 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.broadcast import BroadcastSchedule
from repro.core.estimation import estimation_length, resolve_estimate
from repro.errors import InvalidParameterError
from repro.fastpath.estimation_fast import estimation_success_counts
from repro.fastpath.fullproto import FullProtocolResult, union_active_slots
from repro.params import AlignedParams
from repro.sim.instance import Instance
from repro.sim.job import window_class

__all__ = ["run_pecking_region", "simulate_aligned_full"]

#: (level, absolute subwindow start) -> job indices (into result arrays).
Occupancy = Dict[Tuple[int, int], np.ndarray]


def _run_occupied(
    jobs_here: np.ndarray,
    level: int,
    free_units: np.ndarray,
    params: AlignedParams,
    rng: np.random.Generator,
    p_jam: float,
    success: np.ndarray,
    win_unit: np.ndarray,
    done_unit: np.ndarray,
) -> int:
    """One occupied class run over ``free_units``; returns units consumed.

    ``free_units`` are the absolute slot/round indices available to this
    run, already in temporal order.  Winners get ``success``/``win_unit``
    set; if the run completes (estimation + broadcast fit), every
    occupant gets ``done_unit`` = the run's last consumed unit.  A
    truncated run leaves ``done_unit`` at -1 (the job never observes its
    run finishing and stays live until its deadline).
    """
    lam, tau = params.lam, params.tau
    est_len = estimation_length(level, lam)
    nf = free_units.size
    if nf < est_len:
        return nf  # estimation itself is truncated: no estimate, no end
    counts = estimation_success_counts(
        len(jobs_here), level, params, rng, n_trials=1, p_jam=p_jam
    )[0]
    est = resolve_estimate([int(c) for c in counts], tau, level)
    if est == 0:
        # No broadcast stage: the run ends with the estimation.
        done_unit[jobs_here] = free_units[est_len - 1]
        return est_len

    schedule = BroadcastSchedule(level, est, lam)
    alive = jobs_here
    pos = est_len
    budget = nf - est_len
    for length in schedule.subphase_lengths:
        for _ in range(lam):
            if budget <= 0:
                return pos  # truncated mid-run: the run never completes
            # A partial subphase (b < length) still has every live job
            # draw over the full [0, length); picks landing past the cut
            # simply never transmit — exactly the engine's behaviour
            # when the window ends mid-subphase.
            b = min(length, budget)
            if alive.size:
                picks = rng.integers(0, length, size=alive.size)
                cnt = np.bincount(picks, minlength=length)
                unique = cnt[picks] == 1
                if p_jam > 0.0:
                    jam = rng.random(length) < p_jam
                    unique &= ~jam[picks]
                winners = unique & (picks < b)
                if winners.any():
                    w_jobs = alive[winners]
                    success[w_jobs] = True
                    win_unit[w_jobs] = free_units[pos + picks[winners]]
                    alive = alive[~winners]
            pos += b
            budget -= b
    if pos == est_len + schedule.total_steps:
        done_unit[alive] = free_units[pos - 1]
    return pos


def run_pecking_region(
    origin: int,
    top_level: int,
    min_level: int,
    occupants: Occupancy,
    params: AlignedParams,
    rng: np.random.Generator,
    p_jam: float,
    success: np.ndarray,
    win_unit: np.ndarray,
    done_unit: np.ndarray,
) -> None:
    """Play the pecking order over the region ``[origin, origin + 2^L)``.

    Every aligned subwindow of every level in ``[min_level, top_level]``
    hosts one class run (empty unless listed in ``occupants``); smaller
    classes pre-empt larger ones, which the consumed-mask model realizes
    by letting each level claim the earliest still-free slots of its
    subwindow.  Units are abstract slot indices — the ALIGNED wrapper
    maps them to real slots 1:1, PUNCTUAL's embedded machine maps them
    to virtual rounds.
    """
    region = 1 << top_level
    consumed = np.zeros(region, dtype=bool)
    for level in range(min_level, top_level + 1):
        size = 1 << level
        for sub in range(0, region, size):
            seg = consumed[sub:sub + size]
            if seg.all():
                continue
            free = (
                np.arange(sub, sub + size, dtype=np.int64)
                if not seg.any()
                else np.flatnonzero(~seg) + sub
            )
            jobs_here = occupants.get((level, origin + sub))
            if jobs_here is None or len(jobs_here) == 0:
                k = min(estimation_length(level, params.lam), free.size)
                consumed[free[:k]] = True
            else:
                used = _run_occupied(
                    jobs_here, level, free + origin, params, rng, p_jam,
                    success, win_unit, done_unit,
                )
                consumed[free[:used]] = True


def simulate_aligned_full(
    instance: Instance,
    params: AlignedParams,
    rng: np.random.Generator,
    *,
    p_jam: float = 0.0,
) -> FullProtocolResult:
    """One full ALIGNED run over ``instance``, fully vectorized.

    Requires an aligned instance whose classes are all ``>= min_level``
    (the same inputs :class:`~repro.core.aligned.AlignedProtocol`
    accepts) with ``min_level >= 1``.  Statistically equivalent to the
    engine; per-job timing bookkeeping matches the engine's rules
    exactly (see module docstring).
    """
    if not 0.0 <= p_jam <= 1.0:
        raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
    if params.min_level < 1:
        raise InvalidParameterError(
            "simulate_aligned_full requires min_level >= 1"
        )
    instance.require_aligned()
    jobs = instance.by_release
    n = len(jobs)
    if n == 0:
        return FullProtocolResult(
            np.zeros(0, dtype=bool),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            0,
        )
    releases = np.array([j.release for j in jobs], dtype=np.int64)
    deadlines = np.array([j.deadline for j in jobs], dtype=np.int64)
    levels = [window_class(j.window) for j in jobs]
    if min(levels) < params.min_level:
        raise InvalidParameterError(
            f"job class {min(levels)} below min_level {params.min_level}"
        )

    top = max(levels)
    block = 1 << top
    blocks: Dict[int, Occupancy] = {}
    grouping: Dict[Tuple[int, int, int], List[int]] = {}
    for i, job in enumerate(jobs):
        b0 = (job.release // block) * block
        grouping.setdefault((b0, levels[i], job.release), []).append(i)
    for (b0, level, start), idx in grouping.items():
        blocks.setdefault(b0, {})[(level, start)] = np.array(
            idx, dtype=np.int64
        )

    success = np.zeros(n, dtype=bool)
    win_unit = np.full(n, -1, dtype=np.int64)
    done_unit = np.full(n, -1, dtype=np.int64)
    for b0 in sorted(blocks):
        run_pecking_region(
            b0, top, params.min_level, blocks[b0], params, rng, p_jam,
            success, win_unit, done_unit,
        )

    completion = np.where(success, win_unit, -1)
    retire = np.where(
        success,
        win_unit,
        np.where(
            done_unit >= 0,
            np.minimum(done_unit + 1, deadlines - 1),
            deadlines - 1,
        ),
    )
    slots = union_active_slots(releases, retire)
    return FullProtocolResult(success, completion, retire, slots)
