"""Vectorized anarchist-stage trials (PUNCTUAL's release stage).

Simulates a cohort of anarchists sharing the anarchy slots of their
overlapping windows: in each anarchy slot every still-live anarchist
transmits with its release probability, succeeding iff alone (and not
jammed).  Used by statistical experiments on the anarchist regime
(where does the stage saturate?  what does Corollary 20 predict?)
without paying the slot engine's per-slot overhead.

Simplification (documented): all jobs share one window in lockstep, so
the anarchy-slot sequence is common — the regime Lemma 18 reasons about
within one interval ``[t, t + w]``.  The slot engine covers the general
staggered case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rounds import ROUND_LENGTH
from repro.errors import InvalidParameterError
from repro.params import PunctualParams

__all__ = ["AnarchistFastResult", "simulate_anarchists_fast"]


@dataclass(frozen=True)
class AnarchistFastResult:
    """Outcome of one anarchist-cohort trial."""

    n_jobs: int
    n_succeeded: int
    slots_used: int

    @property
    def success_rate(self) -> float:
        return self.n_succeeded / self.n_jobs if self.n_jobs else 1.0


def simulate_anarchists_fast(
    n_jobs: int,
    window: int,
    params: PunctualParams,
    rng: np.random.Generator,
    *,
    p_jam: float = 0.0,
    overhead_slots: int = 0,
) -> AnarchistFastResult:
    """One anarchist-cohort run over the window's anarchy slots.

    Parameters
    ----------
    n_jobs:
        Cohort size (all release together, all anarchists).
    window:
        The (effective) window size in real slots.
    overhead_slots:
        Slots consumed before the anarchist stage begins
        (synchronization + pullback); defaults to 0 for the pure-stage
        statistics.
    """
    if n_jobs < 0:
        raise InvalidParameterError(f"n_jobs must be >= 0, got {n_jobs}")
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if not 0.0 <= p_jam <= 1.0:
        raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
    p = params.anarchist_probability(window)
    n_slots = max(0, (window - overhead_slots)) // ROUND_LENGTH
    alive = n_jobs
    for _ in range(n_slots):
        if alive == 0:
            break
        tx = rng.binomial(alive, p)
        if tx == 1 and (p_jam == 0.0 or rng.random() >= p_jam):
            alive -= 1
    return AnarchistFastResult(n_jobs, n_jobs - alive, n_slots)
