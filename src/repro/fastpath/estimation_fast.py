"""Vectorized size-estimation trials (experiment E4 at scale).

One estimation run for a class with ``n̂`` jobs needs only, per slot, the
*number* of simultaneous transmitters — a ``Binomial(n̂, 1/2^i)`` draw —
so thousands of independent runs reduce to a few binomial arrays.  The
estimate rule itself is shared verbatim with the stepwise protocol via
:func:`repro.core.estimation.resolve_estimate`, so the fast path cannot
drift from the real protocol's semantics (tests also cross-validate the
distributions).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.estimation import resolve_estimate
from repro.errors import InvalidParameterError
from repro.params import AlignedParams

__all__ = ["simulate_estimation_fast", "estimation_success_counts"]


def estimation_success_counts(
    n_jobs: int,
    level: int,
    params: AlignedParams,
    rng: np.random.Generator,
    *,
    n_trials: int = 1,
    p_jam: float = 0.0,
) -> np.ndarray:
    """Per-phase success counts for many independent estimation runs.

    Returns an ``(n_trials, level)`` int array: entry ``[t, i-1]`` is the
    number of slots of phase ``i`` in trial ``t`` that carried a
    successful (exactly-one-transmitter, un-jammed) transmission.
    """
    if n_jobs < 0:
        raise InvalidParameterError(f"n_jobs must be >= 0, got {n_jobs}")
    if level < 0:
        raise InvalidParameterError(f"level must be >= 0, got {level}")
    if not 0.0 <= p_jam <= 1.0:
        raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
    phase_len = params.lam * level
    counts = np.zeros((n_trials, level), dtype=np.int64)
    for i in range(1, level + 1):
        p = 1.0 / (1 << i)
        # number of transmitters per slot, per trial
        tx = rng.binomial(n_jobs, p, size=(n_trials, phase_len))
        ok = tx == 1
        if p_jam > 0.0:
            ok &= rng.random((n_trials, phase_len)) >= p_jam
        counts[:, i - 1] = ok.sum(axis=1)
    return counts


def simulate_estimation_fast(
    n_jobs: int,
    level: int,
    params: AlignedParams,
    rng: np.random.Generator,
    *,
    n_trials: int = 1,
    p_jam: float = 0.0,
) -> np.ndarray:
    """Resolved estimates ``n_ℓ`` for many independent estimation runs.

    Returns an ``(n_trials,)`` int array of estimates (0 = "class looks
    empty"), each produced by the exact rule of the stepwise protocol.
    """
    counts = estimation_success_counts(
        n_jobs, level, params, rng, n_trials=n_trials, p_jam=p_jam
    )
    return np.array(
        [
            resolve_estimate(list(counts[t]), params.tau, level)
            for t in range(n_trials)
        ],
        dtype=np.int64,
    )
