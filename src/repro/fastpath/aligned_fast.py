"""Vectorized single-class ALIGNED runs (estimation + broadcast).

Chains the fast estimation and fast broadcast for one class occupancy —
the statistics behind Theorem 14 at the granularity of one window, with
optional jamming and an optional active-step budget (truncation).  The
pecking-order interaction across classes is exercised by the (slower)
slot engine; this fast path answers "given the active steps, does the
class algorithm deliver everyone?" over many trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.broadcast import total_active_steps
from repro.core.estimation import estimation_length
from repro.fastpath.broadcast_fast import BroadcastFastResult, simulate_broadcast_fast
from repro.fastpath.estimation_fast import simulate_estimation_fast
from repro.params import AlignedParams

__all__ = ["ClassRunResult", "simulate_class_run_fast"]


@dataclass(frozen=True)
class ClassRunResult:
    """Outcome of one full class run (estimation + broadcast)."""

    n_jobs: int
    estimate: int
    n_succeeded: int
    active_steps: int
    truncated: bool

    @property
    def all_succeeded(self) -> bool:
        return self.n_succeeded == self.n_jobs

    @property
    def n_failed(self) -> int:
        return self.n_jobs - self.n_succeeded

    @property
    def estimate_in_lemma8_band(self) -> bool:
        """Whether ``2n̂ <= n_ℓ <= τ²n̂`` — without τ's value this is
        meaningless, so callers pass their own τ via the params used."""
        return self.estimate >= 2 * self.n_jobs if self.n_jobs else True


def simulate_class_run_fast(
    n_jobs: int,
    level: int,
    params: AlignedParams,
    rng: np.random.Generator,
    *,
    p_jam: float = 0.0,
    active_step_budget: Optional[int] = None,
) -> ClassRunResult:
    """One class run: estimate, then broadcast, within an optional budget.

    ``active_step_budget`` models pecking-order truncation: if the budget
    ends during estimation the estimate resolves to 0 and nobody
    broadcasts (the paper's truncation rule); if it ends mid-broadcast
    the remaining jobs give up.
    """
    est_len = estimation_length(level, params.lam)
    budget = active_step_budget
    if budget is not None and budget < est_len:
        return ClassRunResult(n_jobs, 0, 0, budget, True)
    estimate = int(
        simulate_estimation_fast(
            n_jobs, level, params, rng, n_trials=1, p_jam=p_jam
        )[0]
    )
    if estimate == 0:
        return ClassRunResult(n_jobs, 0, 0, est_len, False)
    bcast_budget = None if budget is None else budget - est_len
    res: BroadcastFastResult = simulate_broadcast_fast(
        n_jobs, level, estimate, params, rng, p_jam=p_jam, step_budget=bcast_budget
    )
    total = total_active_steps(level, estimate, params.lam)
    used = est_len + res.steps_used
    truncated = used < total
    return ClassRunResult(n_jobs, estimate, res.n_succeeded, used, truncated)
