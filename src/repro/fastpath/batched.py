"""Seed-major batched execution through the full-protocol kernels.

The per-seed experiment loop (:func:`repro.experiments.parallel.run_seeds`)
pays three per-seed costs that dwarf a vectorized kernel trial: a fresh
instance build, a full :func:`repro.cache.run_key` content walk, and the
engine's per-slot Python stepping.  :func:`run_batch` makes the *seed
vector* the unit of work instead: the instance is built once, the plan is
qualified once, cache keys for every seed come from one shared-prefix
hash walk (:func:`repro.cache.run_key_batch`), and each trial runs a
whole protocol execution as a handful of array operations
(:func:`~repro.fastpath.aligned_full.simulate_aligned_full`,
:func:`~repro.fastpath.punctual_full.simulate_punctual_full`, or the
engine-exact UNIFORM replay below).

Qualification is explicit and conservative: :func:`plan_fastpath`
returns a :class:`FastpathPlan` only when the kernel provably models the
configuration — no fault injection, no invariant checking, a benign or
success-jamming stochastic adversary, a watchdog that cannot trip, and
an instance shape the kernel covers.  Everything else gets a reason
string back and stays on the reference engine.

Exactness contract per kind:

* ``uniform`` — **bit-exact** with the engine, including under
  :class:`~repro.channel.jamming.StochasticJammer`: single-attempt
  UNIFORM lets the kernel replay the engine's per-job offset draws and
  its channel-stream jam coins (drawn per single-transmitter slot in
  slot order), so digests are equal field-for-field;
* ``aligned`` / ``punctual`` — **statistically equivalent**: the kernels
  consume their own ``"fastpath"`` RNG stream, so per-seed digests
  differ from the engine's but agree in distribution (cross-checked by
  the ``repro verify`` battery).

Cache keys carry an ``("fastpath", kind, KERNEL_VERSION, ...)`` extra so
kernel digests can never collide with engine digests — even for the
bit-exact UNIFORM replay the namespaces stay separate, which keeps a
kernel bug from ever poisoning engine-path results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

import numpy as np

from repro.cache import ResultCache, as_cache, run_key_batch
from repro.channel.jamming import Jammer, NoJammer, StochasticJammer
from repro.errors import ReproError
from repro.experiments.parallel import (
    FactoryBuilder,
    InstanceBuilder,
    ProgressCallback,
    SeedDigest,
)
from repro.fastpath.aligned_full import simulate_aligned_full
from repro.fastpath.fullproto import (
    FullProtocolResult,
    digest_for,
    union_active_slots,
)
from repro.fastpath.punctual_full import simulate_punctual_full
from repro.sim.instance import Instance
from repro.sim.job import window_class
from repro.sim.rng import RngFactory
from repro.sim.watchdog import Watchdog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan
    from repro.obs.telemetry import Telemetry

__all__ = [
    "KERNEL_VERSION",
    "FastpathPlan",
    "FastpathUnavailableError",
    "plan_fastpath",
    "record_trial",
    "run_batch",
    "simulate_fastpath",
]

#: Bump when any kernel's semantics change; folded into every kernel
#: cache key so stale digests can never be served after a fix.
KERNEL_VERSION = 1


class FastpathUnavailableError(ReproError):
    """``fastpath="on"`` was requested for a configuration no kernel covers."""


@dataclass(frozen=True)
class FastpathPlan:
    """A qualified kernel execution: everything a trial needs but the seed.

    Produced by :func:`plan_fastpath`; consumed by
    :func:`simulate_fastpath` and :func:`run_batch`.  ``watchdog`` is the
    caller's enabled-but-vacuous watchdog (or ``None``) — the kernel
    never trips it, but it must still join cache keys because the
    engine path folds it into its own keys.
    """

    kind: str  # "uniform" | "aligned" | "punctual"
    instance: Instance
    params: Any
    p_jam: float
    watchdog: Optional[Watchdog] = None


def _watchdog_is_vacuous(wd: Watchdog, instance: Instance) -> bool:
    """Whether ``wd`` provably cannot trip on any run of ``instance``.

    The engine simulates at most ``horizon - first_release`` slots (the
    active-interval union is contained in that span), so slot budgets
    and stall windows at least that large can never fire.  Wall-clock
    budgets depend on machine load and are never vacuous.
    """
    if wd.max_seconds is not None:
        return False
    if len(instance) == 0:
        return True
    span = instance.horizon - instance.first_release
    if wd.max_slots is not None and wd.max_slots < span:
        return False
    if (
        wd.stall_factor is not None
        and wd.stall_slots(instance.max_window) < span
    ):
        return False
    return True


def plan_fastpath(
    instance: Instance,
    factory: Any,
    *,
    jammer: Optional[Jammer] = None,
    faults: Optional["FaultPlan"] = None,
    watchdog: Optional[Watchdog] = None,
    check_invariants: bool = False,
) -> Tuple[Optional[FastpathPlan], str]:
    """Qualify a configuration for kernel execution.

    Returns ``(plan, "")`` when a kernel covers it, else
    ``(None, reason)`` with a human-readable reason the caller can
    surface (``fastpath="on"`` turns it into an error, ``"auto"`` into a
    silent engine fallback).

    ``factory`` is the protocol factory returned by
    ``uniform_factory``/``aligned_factory``/``punctual_factory`` — those
    attach ``fastpath_kind``/``fastpath_params`` markers; any other
    callable (custom protocols, instrumented wrappers) has no marker and
    declines.
    """
    kind = getattr(factory, "fastpath_kind", None)
    params = getattr(factory, "fastpath_params", None)
    if kind is None or params is None:
        return None, "protocol factory exposes no fastpath kernel marker"
    if check_invariants:
        return None, "invariant checking requires the engine"
    if faults is not None and not getattr(faults, "is_noop", False):
        return None, "fault injection requires the engine"

    if jammer is None or isinstance(jammer, NoJammer):
        p_jam = 0.0
    elif isinstance(jammer, StochasticJammer) and not jammer.jam_silence:
        p_jam = jammer.p_jam
    else:
        return None, (
            f"jammer {type(jammer).__name__} is not modelled by the "
            "kernels (only NoJammer / success-jamming StochasticJammer)"
        )

    wd = watchdog if watchdog is not None and watchdog.enabled else None
    if wd is not None and not _watchdog_is_vacuous(wd, instance):
        return None, (
            "watchdog could trip on this instance (kernels cannot "
            "reproduce partial digests)"
        )

    if kind == "uniform":
        if params.attempts != 1:
            return None, (
                f"UNIFORM kernel replays single-attempt runs only "
                f"(attempts={params.attempts})"
            )
    elif kind == "aligned":
        if params.min_level < 1:
            return None, "ALIGNED kernel requires min_level >= 1"
        if not instance.is_aligned:
            return None, "ALIGNED kernel requires an aligned instance"
        low = [
            j for j in instance if window_class(j.window) < params.min_level
        ]
        if low:
            return None, (
                f"{len(low)} job(s) below min_level {params.min_level}"
            )
    elif kind == "punctual":
        if len(instance.by_window) > 1:
            return None, (
                "PUNCTUAL kernel covers batch instances (one shared "
                f"window; got {len(instance.by_window)} groups)"
            )
    else:  # pragma: no cover - marker from a future factory
        return None, f"unknown fastpath kind {kind!r}"

    return FastpathPlan(kind, instance, params, p_jam, wd), ""


# ---------------------------------------------------------------------------
# per-kind trials
# ---------------------------------------------------------------------------


def _uniform_exact(
    instance: Instance, seed: int, p_jam: float
) -> FullProtocolResult:
    """Engine-exact replay of a single-attempt UNIFORM run.

    Reproduces the engine's randomness stream-for-stream: each job's
    slot offset is the first (only) ``choice`` draw of its ``"job"``
    stream, and jam coins come off the ``"channel"`` stream exactly
    where :class:`~repro.channel.jamming.StochasticJammer` draws them —
    once per single-transmitter slot, in increasing slot order.  Every
    job retires at its transmit slot (success or exhausted), so the
    digest matches the engine field-for-field.
    """
    jobs = instance.by_release
    n = len(jobs)
    factory = RngFactory(seed)
    releases = np.array([j.release for j in jobs], dtype=np.int64)
    offsets = np.empty(n, dtype=np.int64)
    for i, job in enumerate(jobs):
        picks = factory.fresh("job", job.job_id).choice(
            job.window, size=1, replace=False
        )
        offsets[i] = int(picks[0])
    slots = releases + offsets
    uniq, inverse, counts = np.unique(
        slots, return_inverse=True, return_counts=True
    )
    success = counts[inverse] == 1
    if p_jam > 0.0 and success.any():
        single = uniq[counts == 1]  # ascending: np.unique sorts
        coins = factory.fresh("channel").random(single.size)
        jammed = single[coins < p_jam]
        if jammed.size:
            success &= ~np.isin(slots, jammed)
    completion = np.where(success, slots, -1)
    # Single-attempt UNIFORM transmits exactly once per job, jammed or
    # not — engine-exact energy accounting for free.
    return FullProtocolResult(
        success,
        completion,
        slots,
        union_active_slots(releases, slots),
        attempts=np.ones(n, dtype=np.int64),
    )


def simulate_fastpath(plan: FastpathPlan, seed: int) -> SeedDigest:
    """One kernel trial; returns the engine-shaped :class:`SeedDigest`.

    ``aligned``/``punctual`` trials draw from the seed's dedicated
    ``"fastpath"`` stream (untouched by the engine, so statistical
    comparisons never share randomness with engine runs); ``uniform``
    replays the engine's own streams bit-exactly.
    """
    if plan.kind == "uniform":
        result = _uniform_exact(plan.instance, seed, plan.p_jam)
    elif plan.kind == "aligned":
        result = simulate_aligned_full(
            plan.instance,
            plan.params,
            RngFactory(seed).fresh("fastpath"),
            p_jam=plan.p_jam,
        )
    else:
        result = simulate_punctual_full(
            plan.instance,
            plan.params,
            RngFactory(seed).fresh("fastpath"),
            p_jam=plan.p_jam,
        )
    return digest_for(seed, plan.instance, result)


def record_trial(
    telemetry: "Telemetry", jammer: Optional[Jammer], digest: SeedDigest
) -> None:
    """Mirror the engine's run-level telemetry counters for one trial.

    The kernels have no per-slot stream to feed
    :meth:`~repro.obs.telemetry.Telemetry.record_slot`, but the run- and
    job-level counters (``runs.total``, ``runs.jammed``, ``jobs.*``)
    keep the same meaning, so observability reports stay comparable
    across execution paths.
    """
    m = telemetry.metrics
    m.counter("runs.total").inc()
    if jammer is not None and type(jammer) is not NoJammer:
        # The engine normalizes NoJammer to "no adversary" before
        # telemetry (sim/engine.py); match it.
        m.counter("runs.jammed").inc()
    m.counter("jobs.total").inc(digest.n_jobs)
    m.counter("jobs.succeeded").inc(digest.n_succeeded)
    m.counter("jobs.gave_up").inc(digest.n_jobs - digest.n_succeeded)
    if digest.attempts_sum >= 0:
        m.counter("jobs.energy").inc(digest.attempts_sum)


# ---------------------------------------------------------------------------
# the batched driver
# ---------------------------------------------------------------------------


def run_batch(
    build: InstanceBuilder,
    protocol: FactoryBuilder,
    seeds: Sequence[int],
    *,
    jammer: Optional[Jammer] = None,
    faults: Optional["FaultPlan"] = None,
    check_invariants: bool = False,
    watchdog: Optional[Watchdog] = None,
    cache: Union[None, bool, str, ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    telemetry: Optional["Telemetry"] = None,
    plan: Optional[FastpathPlan] = None,
) -> List[SeedDigest]:
    """Run every seed through the qualified kernel, seed-major.

    The drop-in batched counterpart of
    :func:`repro.experiments.parallel.run_seeds` for configurations a
    kernel covers: same builder/protocol/seed signature, same ordered
    ``SeedDigest`` list back, same ``cache``/``progress``/``telemetry``
    contracts.  Raises :class:`FastpathUnavailableError` when no kernel
    qualifies (callers wanting a silent fallback use
    :func:`plan_fastpath` first, or ``run_seeds(..., fastpath="auto")``).

    ``plan`` lets a caller that already qualified the configuration skip
    re-planning; it must match the other arguments.
    """
    seeds = list(seeds)
    total = len(seeds)
    cache_obj = as_cache(cache)
    t_started = time.perf_counter()
    if telemetry is not None and cache_obj is not None:
        c_hits, c_misses, c_puts = (
            cache_obj.hits, cache_obj.misses, cache_obj.puts,
        )

    if plan is None:
        instance = build()
        plan, reason = plan_fastpath(
            instance,
            protocol(instance),
            jammer=jammer,
            faults=faults,
            watchdog=watchdog,
            check_invariants=check_invariants,
        )
        if plan is None:
            raise FastpathUnavailableError(reason)

    results: List[Optional[SeedDigest]] = [None] * total
    done = 0

    def tick() -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total)

    pending: List[Tuple[int, int, Optional[str]]] = []  # (pos, seed, key)
    if cache_obj is not None:
        # One shared-prefix walk covers the whole seed vector; the extra
        # namespaces kernel digests away from engine digests and pins
        # the kernel semantics version (plus the vacuous watchdog, which
        # the engine path also folds into its keys when enabled).
        extra = ("fastpath", plan.kind, KERNEL_VERSION, plan.watchdog)
        keys = run_key_batch(
            instance=plan.instance,
            protocol=protocol,
            seeds=seeds,
            jammer=jammer,
            faults=faults,
            extra=extra,
        )
        for pos, (s, key) in enumerate(zip(seeds, keys)):
            hit = cache_obj.get(key)
            if isinstance(hit, SeedDigest) and hit.seed == s:
                results[pos] = hit
                tick()
            else:
                pending.append((pos, s, key))
    else:
        pending = [(pos, s, None) for pos, s in enumerate(seeds)]

    for pos, s, key in pending:
        digest = simulate_fastpath(plan, s)
        results[pos] = digest
        if telemetry is not None:
            record_trial(telemetry, jammer, digest)
        if cache_obj is not None and key is not None:
            cache_obj.put(key, digest)
        tick()

    if telemetry is not None:
        telemetry.add_span("run_batch", time.perf_counter() - t_started)
        telemetry.metrics.counter("runs.fastpath_trials").inc(len(pending))
        if cache_obj is not None:
            telemetry.record_cache(
                cache_obj.hits - c_hits,
                cache_obj.misses - c_misses,
                cache_obj.puts - c_puts,
            )
    return results  # type: ignore[return-value]  # every slot filled above
