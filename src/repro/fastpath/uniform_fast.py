"""Vectorized UNIFORM simulation (experiments E1/E2 at scale).

The slot engine runs UNIFORM faithfully but costs ``O(Σ w_j)`` per trial,
which is prohibitive for the harmonic instance at ``n`` in the thousands
(Lemma 5's effect is polynomial in ``n``).  UNIFORM's outcome, however,
depends only on which slots the jobs pick — so one trial reduces to a
handful of numpy array ops, per the vectorize-the-inner-loop guidance.

Semantics: with ``attempts = 1`` this is *exactly* the engine's UNIFORM
(cross-validated by tests).  With ``attempts > 1`` the fast path has jobs
transmit in all chosen slots even after an early success, whereas the
engine's jobs stop once they succeed; the fast path therefore slightly
*over*-counts contention, making its success rates a lower bound.  The
difference is irrelevant for the paper's claims (which are stated for
Θ(1) attempts) and is documented here and in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.instance import Instance

__all__ = ["UniformFastResult", "simulate_uniform_fast"]


@dataclass(frozen=True)
class UniformFastResult:
    """Per-job success flags plus slot-level aggregates for one trial."""

    success: np.ndarray  # bool, shape (n_jobs,), instance.by_release order
    n_successful_slots: int
    n_collision_slots: int

    @property
    def n_succeeded(self) -> int:
        return int(self.success.sum())

    @property
    def success_rate(self) -> float:
        return float(self.success.mean()) if self.success.size else 1.0


def simulate_uniform_fast(
    instance: Instance,
    rng: np.random.Generator,
    *,
    attempts: int = 1,
    p_jam: float = 0.0,
    offsets: Optional[np.ndarray] = None,
) -> UniformFastResult:
    """One UNIFORM trial, fully vectorized.

    Parameters
    ----------
    instance:
        The jobs; each picks ``attempts`` distinct slots of its window
        (all window slots when the window is smaller).
    rng:
        Randomness source.
    p_jam:
        Stochastic jamming of would-be successes (Section 3's adversary).
    offsets:
        Optional per-job slot offsets (``by_release`` order) replacing the
        internal draw; requires ``attempts == 1``.  The differential
        verifier uses this to replay the *engine's* per-job draws through
        the kernel, turning the statistical cross-check into an exact one.

    Returns
    -------
    UniformFastResult
        Success flags in ``instance.by_release`` order.
    """
    if attempts < 1:
        raise InvalidParameterError(f"attempts must be >= 1, got {attempts}")
    if not 0.0 <= p_jam <= 1.0:
        raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
    if offsets is not None and attempts != 1:
        raise InvalidParameterError(
            "explicit offsets require attempts == 1"
        )
    jobs = instance.by_release
    n = len(jobs)
    if offsets is not None and len(offsets) != n:
        raise InvalidParameterError(
            f"offsets has length {len(offsets)}, instance has {n} jobs"
        )
    if n == 0:
        return UniformFastResult(np.zeros(0, dtype=bool), 0, 0)

    releases = np.array([j.release for j in jobs], dtype=np.int64)
    windows = np.array([j.window for j in jobs], dtype=np.int64)

    # Draw per-job attempt slots.  With attempts == 1 a single uniform
    # draw per job; otherwise sample without replacement per job (windows
    # can differ, so a small per-job loop only for multi-attempt mode).
    if attempts == 1:
        if offsets is not None:
            offs = np.asarray(offsets, dtype=np.int64)
            if np.any(offs < 0) or np.any(offs >= windows):
                raise InvalidParameterError(
                    "offsets must satisfy 0 <= offset < window per job"
                )
        else:
            offs = (rng.random(n) * windows).astype(np.int64)
        job_idx = np.arange(n)
        slots = releases + offs
    else:
        job_list = []
        slot_list = []
        for i in range(n):
            k = min(attempts, int(windows[i]))
            picks = rng.choice(int(windows[i]), size=k, replace=False)
            job_list.append(np.full(k, i, dtype=np.int64))
            slot_list.append(releases[i] + picks.astype(np.int64))
        job_idx = np.concatenate(job_list)
        slots = np.concatenate(slot_list)

    uniq, inverse, counts = np.unique(slots, return_inverse=True, return_counts=True)
    unique_slot = counts[inverse] == 1
    if p_jam > 0.0:
        jam_roll = rng.random(uniq.size) < p_jam
        unique_slot = unique_slot & ~jam_roll[inverse]

    success = np.zeros(n, dtype=bool)
    np.logical_or.at(success, job_idx, unique_slot)
    n_success_slots = int(np.sum(unique_slot))
    n_collision_slots = int(np.sum(counts > 1))
    return UniformFastResult(success, n_success_slots, n_collision_slots)
