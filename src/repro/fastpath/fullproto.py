"""Shared result plumbing for the full-protocol fastpath kernels.

`simulate_aligned_full` and `simulate_punctual_full` replace an entire
engine run, so unlike the per-component kernels they must report
everything a :class:`~repro.experiments.parallel.SeedDigest` carries:
per-job success, completion slots, *retirement* slots (the last slot a
job occupies the channel model, needed to reproduce the engine's
``slots_simulated`` accounting), per-window tallies and latency sums.
:class:`FullProtocolResult` is that record; :func:`digest_for` converts
it into the exact ``SeedDigest`` shape the experiment layer ships
around, and :func:`union_active_slots` reproduces the engine's
idle-gap-skipping slot count (the size of the union of the per-job
inclusive ``[release, retire]`` intervals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.experiments.parallel import SeedDigest
from repro.sim.instance import Instance

__all__ = ["FullProtocolResult", "digest_for", "union_active_slots"]


@dataclass(frozen=True)
class FullProtocolResult:
    """Per-job outcome of one full-protocol kernel trial.

    All arrays are in ``instance.by_release`` order.  ``completion`` is
    the slot of the successful delivery (-1 on failure); ``retire`` is
    the last slot the job was active in the engine's sense (the slot at
    whose end it would have been retired), which both paths need to
    agree on for ``slots_simulated`` to match.

    ``attempts`` is the per-job send-attempt (energy) count, when the
    kernel models it exactly — the engine-exact UNIFORM replay does;
    the statistical ALIGNED/PUNCTUAL kernels leave it ``None`` and their
    digests carry ``attempts_sum=-1`` (not tracked).
    """

    success: np.ndarray  # bool, shape (n,)
    completion: np.ndarray  # int64, shape (n,), -1 on failure
    retire: np.ndarray  # int64, shape (n,)
    slots_simulated: int
    attempts: Optional[np.ndarray] = None  # int64, shape (n,)

    @property
    def n_succeeded(self) -> int:
        return int(self.success.sum())

    @property
    def success_rate(self) -> float:
        return float(self.success.mean()) if self.success.size else 1.0


def union_active_slots(releases: np.ndarray, retires: np.ndarray) -> int:
    """Size of the union of the inclusive ``[release, retire]`` intervals.

    ``releases`` must be ascending (``by_release`` order).  This is the
    engine's ``slots_simulated``: it steps every slot in which at least
    one job is active and skips idle gaps between them.
    """
    n = len(releases)
    if n == 0:
        return 0
    hi = np.maximum.accumulate(np.maximum(retires, releases))
    # A new merged group starts where an interval begins past the
    # running maximum end.  Adjacent-but-disjoint groups count the same
    # slots either way, so strict overlap is the only merge needed.
    brk = np.flatnonzero(releases[1:] > hi[:-1]) + 1
    starts = np.concatenate(([0], brk))
    ends = np.concatenate((brk, [n]))
    return int(np.sum(hi[ends - 1] - releases[starts] + 1))


def digest_for(
    seed: int, instance: Instance, result: FullProtocolResult
) -> SeedDigest:
    """The ``SeedDigest`` of one kernel trial (engine-compatible shape).

    ``by_window`` is sorted by window size, matching
    :meth:`repro.sim.metrics.SimulationResult.success_by_window`.
    """
    jobs = instance.by_release
    windows = np.array([j.window for j in jobs], dtype=np.int64)
    releases = np.array([j.release for j in jobs], dtype=np.int64)
    by_window = tuple(
        (
            int(w),
            int(result.success[windows == w].sum()),
            int((windows == w).sum()),
        )
        for w in np.unique(windows)
    )
    ok = result.success
    latency_sum = int((result.completion[ok] - releases[ok] + 1).sum())
    return SeedDigest(
        seed=seed,
        n_jobs=len(jobs),
        n_succeeded=result.n_succeeded,
        by_window=by_window,
        slots_simulated=result.slots_simulated,
        latency_sum=latency_sum,
        attempts_sum=(
            int(result.attempts.sum()) if result.attempts is not None else -1
        ),
        watchdog_reason=None,
    )
