"""Composable fault plans: everything that can go wrong, in one object.

The paper's headline results are robustness claims — ALIGNED survives a
stochastic adversary with ``p_jam <= 1/2`` (Theorem 14) and PUNCTUAL
assumes no global clock — so the simulator needs to *perturb* more than
it needs to idealize.  A :class:`FaultPlan` bundles up to four
orthogonal fault families and rides into :func:`repro.sim.engine.simulate`
as a single optional argument:

* a channel adversary (any :class:`~repro.channel.jamming.Jammer`,
  including the budget-bounded families);
* :class:`FeedbackFault` — per-listener corruption of the trinary
  feedback (SILENCE↔NOISE flips, success erasure) with asymmetric rates;
* :class:`ClockFault` — per-job clock skew and drift, stressing
  PUNCTUAL's no-global-clock assumption and ALIGNED's reliance on a
  shared slot index;
* :class:`JobFault` — workload perturbations: late release (a job
  activates after its window opened) and crash-before-deadline (a job
  silently stops mid-window).

All fault randomness draws from dedicated :class:`~repro.sim.rng.RngFactory`
streams (``"fault-feedback"`` per run, ``"fault-job"`` per job), so
attaching a plan never perturbs protocol or jammer randomness — paired
comparisons of the same seed with and without faults share every other
stream.  Ground truth is never faulted: the engine still decides
delivery from real channel outcomes; faults only change what protocols
*perceive* and when jobs run.

Plans are frozen dataclasses, so they pickle (multi-process sweeps ship
them to workers) and content-digest stably
(:func:`repro.cache.run_key` folds them into cache keys — a faulted run
can never collide with a clean one).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.channel.feedback import Feedback, Observation
from repro.channel.jamming import Jammer
from repro.errors import InvalidInstanceError, InvalidParameterError
from repro.sim.instance import Instance
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol
from repro.sim.rng import RngFactory

__all__ = ["ClockFault", "FaultPlan", "FeedbackFault", "JobFault"]


def _check_prob(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(f"{name} must be in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class FeedbackFault:
    """Per-listener corruption of the trinary channel feedback.

    Each live job's observation of each slot is corrupted independently
    (listeners disagree — exactly the failure the paper's common-feedback
    assumption rules out).  Rates are asymmetric:

    Attributes
    ----------
    p_silence_to_noise:
        A silent slot is perceived as noise (phantom interference).
    p_noise_to_silence:
        A collided/jammed slot is perceived as silence (deaf receiver) —
        the dual of collision detection loss in
        :mod:`repro.channel.masking`, but stochastic per listener.
    p_success_erasure:
        A successful broadcast is perceived as noise and its message
        content lost to that listener.
    affect_transmitters:
        If True, the successful *transmitter's* own observation may also
        be erased — it then never learns it succeeded and keeps
        contending (ground-truth delivery is unaffected).  Off by
        default because it voids the model's acknowledgement guarantee.
    """

    p_silence_to_noise: float = 0.0
    p_noise_to_silence: float = 0.0
    p_success_erasure: float = 0.0
    affect_transmitters: bool = False

    def __post_init__(self) -> None:
        _check_prob("p_silence_to_noise", self.p_silence_to_noise)
        _check_prob("p_noise_to_silence", self.p_noise_to_silence)
        _check_prob("p_success_erasure", self.p_success_erasure)

    @property
    def is_noop(self) -> bool:
        return (
            self.p_silence_to_noise == 0.0
            and self.p_noise_to_silence == 0.0
            and self.p_success_erasure == 0.0
        )

    def corrupt(
        self, obs: Observation, rng: np.random.Generator
    ) -> Observation:
        """One listener's (possibly corrupted) view of ``obs``.

        Draws from ``rng`` only when the relevant rate is positive, so a
        zero-rate fault consumes no randomness.
        """
        fb = obs.feedback
        if fb is Feedback.SILENCE:
            p = self.p_silence_to_noise
            if p > 0.0 and rng.random() < p:
                return Observation.noise(obs.transmitted)
        elif fb is Feedback.NOISE:
            p = self.p_noise_to_silence
            if p > 0.0 and rng.random() < p:
                return Observation.silence(obs.transmitted)
        else:  # SUCCESS
            if obs.own_success and not self.affect_transmitters:
                return obs
            p = self.p_success_erasure
            if p > 0.0 and rng.random() < p:
                return Observation.noise(obs.transmitted)
        return obs


@dataclass(frozen=True)
class ClockFault:
    """Per-job clock skew and drift.

    Each job draws ``skew_j`` uniform in ``[-max_skew, max_skew]`` and
    ``drift_j`` uniform in ``[-drift, drift]``, fixed for the run.  Its
    protocol always experiences a *contiguous* local timeline (protocols
    are strict state machines); the mismatch with engine time is
    absorbed at the channel boundary.  A fast clock (``skew_j > 0`` /
    ``drift_j > 0``) lives through phantom slots that never reach the
    real channel — transmissions there are wasted — and hits its local
    deadline early, giving up with window slack unused.  A slow clock
    joins the channel late and occasionally stalls (a real slot passes
    without a local tick), and the engine's hard deadline cuts it off
    while its local clock still shows time remaining.  PUNCTUAL is
    *designed* for this setting (no global clock — only local ages
    matter), while ALIGNED leans on the shared slot index of the aligned
    model, so clock faults degrade them very differently; that asymmetry
    is the point of the fault.
    """

    max_skew: int = 0
    drift: float = 0.0

    def __post_init__(self) -> None:
        if self.max_skew < 0:
            raise InvalidParameterError(
                f"max_skew must be >= 0, got {self.max_skew}"
            )
        if not 0.0 <= self.drift < 1.0:
            raise InvalidParameterError(
                f"drift must be in [0, 1), got {self.drift}"
            )

    @property
    def is_noop(self) -> bool:
        return self.max_skew == 0 and self.drift == 0.0


@dataclass(frozen=True)
class JobFault:
    """Workload perturbations applied per job.

    Attributes
    ----------
    p_late:
        Probability a job is released late: activation is delayed by a
        uniform ``1..max_delay`` slots (capped so at least one window
        slot remains).  The deadline does not move — lateness eats slack.
    max_delay:
        Largest possible release delay, in slots.
    p_crash:
        Probability a job crashes strictly before its deadline: at a
        uniform slot in the remainder of its window it silently stops
        transmitting and ignores all further feedback.  A crashed job
        finalizes as ``GAVE_UP`` unless it was already delivered.
    """

    p_late: float = 0.0
    max_delay: int = 0
    p_crash: float = 0.0

    def __post_init__(self) -> None:
        _check_prob("p_late", self.p_late)
        _check_prob("p_crash", self.p_crash)
        if self.max_delay < 0:
            raise InvalidParameterError(
                f"max_delay must be >= 0, got {self.max_delay}"
            )
        if self.p_late > 0.0 and self.max_delay == 0:
            raise InvalidParameterError(
                "p_late > 0 requires max_delay >= 1"
            )

    @property
    def is_noop(self) -> bool:
        return self.p_late == 0.0 and self.p_crash == 0.0


@dataclass(frozen=True)
class _JobRecord:
    """Per-job fault decisions, fixed before the run starts.

    ``activation`` is the engine slot at which the job's protocol is
    constructed; ``begin`` is the *local* slot the protocol perceives at
    that moment (a slow clock has ``begin < activation``).  ``skew_ff``
    counts phantom slots a fast clock has already lived through at
    activation, and ``drift`` is the local clock's rate error.
    ``crash_slot`` (engine time, ``-1`` = never) silences the job.
    """

    activation: int
    begin: int
    skew_ff: int
    drift: float
    crash_slot: int


def job_fault_record(
    jf: Optional[JobFault],
    cf: Optional[ClockFault],
    job: Job,
    rng: np.random.Generator,
) -> Optional[_JobRecord]:
    """Draw one job's fault decisions from its dedicated stream.

    The single source of the per-job draw order, shared by the closed
    engine (:class:`BoundFaults` precomputes every record up front) and
    the streaming engine (records are drawn lazily at arrival).  The
    stream is keyed on the job id, so the decisions are identical
    either way — which is what keeps faulted streaming runs
    bit-identical to their closed-instance replays.

    Returns ``None`` for a job the plan leaves untouched.
    """
    begin = job.release
    if jf is not None and jf.p_late > 0.0:
        if rng.random() < jf.p_late:
            delay = int(rng.integers(1, jf.max_delay + 1))
            begin = min(job.release + delay, job.deadline - 1)
    activation = begin
    skew_ff = 0
    drift = 0.0
    if cf is not None:
        skew = 0
        if cf.max_skew > 0:
            skew = int(rng.integers(-cf.max_skew, cf.max_skew + 1))
        if cf.drift > 0.0:
            drift = float(rng.uniform(-cf.drift, cf.drift))
        if skew > 0:
            # Fast clock: the protocol already "lived" skew slots
            # before the window truly opened.
            skew_ff = skew
        elif skew < 0:
            # Slow clock: the job joins late but its local clock
            # still reads the release slot.
            activation = min(activation - skew, job.deadline - 1)
    crash_slot = -1
    if jf is not None and jf.p_crash > 0.0:
        if rng.random() < jf.p_crash and activation + 1 < job.deadline:
            crash_slot = int(rng.integers(activation + 1, job.deadline))
    if (
        activation != job.release
        or begin != activation
        or skew_ff
        or drift
        or crash_slot >= 0
    ):
        return _JobRecord(activation, begin, skew_ff, drift, crash_slot)
    return None


class _ClockDriver:
    """Reconcile engine time with a job's faulty local clock.

    Protocols are strict state machines that require a *contiguous*
    local slot sequence (ALIGNED's schedule view rejects any jump), so
    a faulty clock cannot be modeled by translating slot labels.
    Instead the driver keeps the protocol's timeline contiguous and
    absorbs the mismatch at the channel boundary:

    * **Fast clock** (positive skew, positive drift): the protocol
      lives through *phantom* slots that do not exist on the real
      channel — any transmission there is wasted (it hears its own
      noise; pure listening hears silence).  When its local clock
      reaches the deadline early it stops and gives up, believing its
      window is over.
    * **Slow clock** (negative skew, negative drift): the job joins the
      channel late (activation was shifted in :class:`_JobRecord`) and
      occasionally *stalls* — a real slot passes without the protocol
      ticking, so it neither transmits nor hears that slot, and the
      engine's hard deadline cuts it off while its local clock still
      shows time remaining.

    A plain class rather than a closure pair so live faulted jobs can
    be pickled into streaming checkpoints mid-flight.
    """

    __slots__ = (
        "proto",
        "inner_act",
        "inner_observe",
        "t0",
        "base",
        "drift",
        "deadline",
        "next_local",
        "awaiting",
        "stopped",
    )

    def __init__(
        self,
        job: Job,
        proto: Protocol,
        inner_act: Callable[[int], object],
        inner_observe: Callable[[int, Observation], None],
        rec: _JobRecord,
    ) -> None:
        self.proto = proto
        self.inner_act = inner_act
        self.inner_observe = inner_observe
        self.t0 = rec.activation
        self.base = rec.begin + rec.skew_ff
        self.drift = rec.drift
        self.deadline = job.deadline
        self.next_local = rec.begin  # local slot of the next tick
        self.awaiting = -1  # local slot awaiting an observation
        self.stopped = False  # local clock reached the deadline

    def act(self, t: int):
        if self.stopped:
            return None
        proto = self.proto
        target = self.base + (t - self.t0)
        if self.drift:
            target += int(self.drift * (t - self.t0))
        nxt = self.next_local
        if target < nxt:
            # Slow clock stalls: no local tick this engine slot.
            self.awaiting = -1
            return None
        limit = target if target < self.deadline else self.deadline
        while nxt < limit and not proto.done:
            # Phantom slots off the real channel.
            m = self.inner_act(nxt)
            self.inner_observe(
                nxt,
                Observation.noise(True)
                if m is not None
                else Observation.silence(False),
            )
            nxt += 1
        if proto.done or target >= self.deadline:
            # Local deadline reached early, or the protocol retired
            # itself during a phantom slot; stop driving it (the
            # engine retires it at the end of this slot).
            self.next_local = nxt
            self.awaiting = -1
            self.stopped = True
            if not proto.succeeded:
                proto.gave_up = True
            return None
        msg = self.inner_act(target)
        self.next_local = target + 1
        self.awaiting = target
        return msg

    def observe(self, t: int, obs: Observation) -> None:
        if self.stopped or self.awaiting < 0:
            return
        self.inner_observe(self.awaiting, obs)
        self.awaiting = -1


class _CrashGuard:
    """Silence a job from its crash slot onward (picklable wrapper)."""

    __slots__ = ("proto", "crash_at", "inner_act", "inner_observe", "crashed")

    def __init__(
        self,
        proto: Protocol,
        crash_at: int,
        inner_act: Callable[[int], object],
        inner_observe: Callable[[int, Observation], None],
    ) -> None:
        self.proto = proto
        self.crash_at = crash_at
        self.inner_act = inner_act
        self.inner_observe = inner_observe
        self.crashed = False

    def act(self, t: int):
        if self.crashed:
            return None
        if t >= self.crash_at:
            self.crashed = True
            self.proto.gave_up = True
            return None
        return self.inner_act(t)

    def observe(self, t: int, obs: Observation) -> None:
        if not self.crashed:
            self.inner_observe(t, obs)


def _noop_act(t: int):
    return None


def _noop_observe(t: int, obs: Observation) -> None:
    return None


def fault_wrappers(
    job: Job, proto: Protocol, t: int, rec: Optional[_JobRecord]
) -> Tuple[Callable[[int], object], Callable[[int, Observation], None]]:
    """Begin ``proto`` at engine slot ``t`` under ``rec`` and return
    ``(act, observe)``.

    Jobs with no per-job faults (``rec is None``) get the raw bound
    methods back — zero wrapper overhead.  Shared by the closed and
    streaming engines so both drive faulted jobs identically.
    """
    if rec is None:
        proto.begin(t)
        return proto.act, proto.observe
    try:
        proto.begin(rec.begin)
    except InvalidInstanceError:
        # The protocol's model rejects the fault-shifted start slot
        # (e.g. ALIGNED cannot join its pecking order mid-window
        # after a late release).  The job fails instead of the run.
        proto.gave_up = True
        return _noop_act, _noop_observe
    act = proto.act
    observe = proto.observe
    if rec.skew_ff or rec.drift or rec.begin != rec.activation:
        driver = _ClockDriver(job, proto, act, observe, rec)
        act, observe = driver.act, driver.observe
    if rec.crash_slot >= 0:
        guard = _CrashGuard(proto, rec.crash_slot, act, observe)
        act, observe = guard.act, guard.observe
    return act, observe


class BoundFaults:
    """A :class:`FaultPlan` bound to one ``(instance, seed)`` run.

    Precomputes every per-job fault decision from the job's dedicated
    ``"fault-job"`` stream (so decisions are independent of activation
    order) and hands the engine cheap per-job wrappers.  Engine-facing
    surface: :attr:`jammer`, :attr:`feedback` (+ :attr:`feedback_rng`),
    :attr:`has_job_faults`, :meth:`release_of`, and :meth:`activate`.
    """

    __slots__ = (
        "plan",
        "jammer",
        "feedback",
        "feedback_rng",
        "has_job_faults",
        "_records",
    )

    def __init__(self, plan: "FaultPlan", instance: Instance, rngs: RngFactory) -> None:
        self.plan = plan
        self.jammer = plan.jammer
        ff = plan.feedback
        self.feedback = ff if ff is not None and not ff.is_noop else None
        self.feedback_rng = (
            rngs.stream("fault-feedback") if self.feedback is not None else None
        )
        jf = plan.jobs if plan.jobs is not None and not plan.jobs.is_noop else None
        cf = plan.clock if plan.clock is not None and not plan.clock.is_noop else None
        self.has_job_faults = False
        self._records: Dict[int, _JobRecord] = {}
        if jf is None and cf is None:
            return
        for job in instance.by_release:
            rng = rngs.stream("fault-job", job.job_id)
            rec = job_fault_record(jf, cf, job, rng)
            if rec is not None:
                self._records[job.job_id] = rec
                if rec.activation != job.release:
                    self.has_job_faults = True

    def release_of(self, job: Job) -> int:
        """The job's effective activation slot under the plan."""
        rec = self._records.get(job.job_id)
        return job.release if rec is None else rec.activation

    def activate(
        self, job: Job, proto: Protocol, t: int
    ) -> Tuple[Callable[[int], object], Callable[[int, Observation], None]]:
        """Begin ``proto`` at engine slot ``t`` and return (act, observe).

        The returned callables replace the engine's pre-bound
        ``proto.act`` / ``proto.observe``: they reconcile engine time
        with the job's (possibly skewed/drifting) local clock and
        enforce crash-before-deadline.  Jobs with no per-job faults get
        the raw bound methods back — zero wrapper overhead.
        """
        return fault_wrappers(job, proto, t, self._records.get(job.job_id))


@dataclass(frozen=True)
class FaultPlan:
    """A composable bundle of channel, feedback, clock, and job faults.

    Any subset of the four fields may be set; unset families cost
    nothing.  The engine treats a no-op plan (all fields ``None`` or
    individually no-op) exactly like ``faults=None``, so the clean fast
    path — and its cache keys — are preserved.

    A plan's :attr:`jammer` is mutually exclusive with the ``jammer=``
    argument of :func:`~repro.sim.engine.simulate`; passing both raises,
    because silently composing two adversaries would make severity
    sweeps unreadable.
    """

    jammer: Optional[Jammer] = None
    feedback: Optional[FeedbackFault] = None
    clock: Optional[ClockFault] = None
    jobs: Optional[JobFault] = None

    @property
    def is_noop(self) -> bool:
        """True when attaching this plan cannot change any run."""
        return (
            self.jammer is None
            and (self.feedback is None or self.feedback.is_noop)
            and (self.clock is None or self.clock.is_noop)
            and (self.jobs is None or self.jobs.is_noop)
        )

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """Combine two plans; a family set in both is a conflict."""
        updates = {}
        for field in ("jammer", "feedback", "clock", "jobs"):
            mine = getattr(self, field)
            theirs = getattr(other, field)
            if mine is not None and theirs is not None:
                raise InvalidParameterError(
                    f"cannot merge fault plans: both set {field!r}"
                )
            if theirs is not None:
                updates[field] = theirs
        return replace(self, **updates)

    def reset(self) -> None:
        """Restore any per-run jammer state (see :meth:`Jammer.reset`)."""
        if self.jammer is not None:
            self.jammer.reset()

    def bind(self, instance: Instance, rngs: RngFactory) -> BoundFaults:
        """Fix every random fault decision for one ``(instance, seed)``."""
        return BoundFaults(self, instance, rngs)

    def describe(self) -> str:
        """A compact one-line summary for tables and logs."""
        parts = []
        if self.jammer is not None:
            parts.append(repr(self.jammer))
        if self.feedback is not None and not self.feedback.is_noop:
            parts.append(
                "feedback(s→n=%g, n→s=%g, erase=%g)"
                % (
                    self.feedback.p_silence_to_noise,
                    self.feedback.p_noise_to_silence,
                    self.feedback.p_success_erasure,
                )
            )
        if self.clock is not None and not self.clock.is_noop:
            parts.append(
                "clock(skew<=%d, drift<=%g)"
                % (self.clock.max_skew, self.clock.drift)
            )
        if self.jobs is not None and not self.jobs.is_noop:
            parts.append(
                "jobs(late=%g<=%d, crash=%g)"
                % (self.jobs.p_late, self.jobs.max_delay, self.jobs.p_crash)
            )
        return " + ".join(parts) if parts else "no faults"
