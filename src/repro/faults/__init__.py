"""Fault injection: composable perturbations of channel, clock, and jobs.

The paper's guarantees are robustness claims; this package supplies the
adversity.  A :class:`FaultPlan` bundles a jamming adversary, per-listener
feedback corruption, per-job clock skew/drift, and job perturbations
(late release, crash-before-deadline) into one object that
:func:`repro.sim.engine.simulate` consults — at zero cost when no plan
is attached.  See :mod:`repro.experiments.robustness` for severity
sweeps over these fault families and
:mod:`repro.sim.invariants` for the runtime checks that verify protocol
state stays sane under stress.
"""

from repro.faults.plan import ClockFault, FaultPlan, FeedbackFault, JobFault

__all__ = ["ClockFault", "FaultPlan", "FeedbackFault", "JobFault"]
