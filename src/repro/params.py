"""Tunable protocol parameters with paper-faithful and laptop-scale presets.

The paper states its guarantees "for all λ, there exists a sufficiently
small γ" and never optimizes constants; several exponents (the ``log³``
pullback probability, the ``log⁷`` slingshot duration) are astronomically
conservative.  Running the literal constants at a scale where the
asymptotics bite is not possible on any real machine, so every constant is
a field here, with two presets:

* ``paper()`` — the literal constants from the text (λ as stated, τ = 64
  per the proof of Lemma 8, exponents 3 and 7 in SLINGSHOT), for
  documentation and small smoke tests;
* ``simulation()`` — scaled-down constants that preserve the *shape* of
  every guarantee at laptop scale (the experiments in EXPERIMENTS.md
  record which preset they used).

All probability expressions are capped at 1/2 before use, matching the
standing assumption of Lemma 2 ("no job ever sends in a slot with
probability greater than 1/2").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import InvalidParameterError
from repro.sim.instance import Instance
from repro.sim.job import is_power_of_two

__all__ = ["AlignedParams", "PunctualParams", "UniformParams", "cap_probability"]


def cap_probability(p: float) -> float:
    """Clamp a transmit probability into ``[0, 1/2]`` (Lemma 2's regime)."""
    return min(max(p, 0.0), 0.5)


@dataclass(frozen=True, slots=True)
class UniformParams:
    """Parameters of UNIFORM (Section 2).

    Attributes
    ----------
    attempts:
        How many random slots of its window each job transmits in — the
        paper's "once (or Θ(1) times)".
    """

    attempts: int = 1

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise InvalidParameterError(
                f"attempts must be >= 1, got {self.attempts}"
            )


@dataclass(frozen=True, slots=True)
class AlignedParams:
    """Parameters of ALIGNED (Section 3).

    Attributes
    ----------
    lam:
        The paper's λ: estimation uses ``λℓ²`` steps (ℓ phases of λℓ),
        broadcast phases have length ``λX`` split into λ subphases, and
        the failure probability is ``1/w^Θ(λ)``.
    tau:
        The paper's τ: the size estimate is ``τ · 2^j`` for the winning
        phase ``j``.  Must be a power of two ≥ 2 so the estimate is a
        power of two (the broadcast schedule requires it); the proof of
        Lemma 8 fixes τ = 64.
    min_level:
        Smallest job class the pecking order reserves active steps for.
        The paper derives it from slack: γ-slack feasibility forces every
        window to be at least ``w₀ ≥ 1/γ`` slots, so classes below
        ``log₂(1/γ)`` cannot exist and the schedule need not (and must
        not, or small classes' estimations would consume everything)
        reserve steps for them.
    """

    lam: int = 1
    tau: int = 4
    min_level: int = 6

    def __post_init__(self) -> None:
        if self.lam < 1:
            raise InvalidParameterError(f"lam must be >= 1, got {self.lam}")
        if self.tau < 2 or not is_power_of_two(self.tau):
            raise InvalidParameterError(
                f"tau must be a power of two >= 2, got {self.tau}"
            )
        if self.min_level < 0:
            raise InvalidParameterError(
                f"min_level must be >= 0, got {self.min_level}"
            )

    @staticmethod
    def paper(lam: int = 8) -> "AlignedParams":
        """The literal constants of Section 3 (τ = 64).

        Note the implied scale: with λ = 8 the pecking-order overhead
        (``λℓ²`` estimation slots per window per level, empty or not)
        only fits when windows have ≥ 2^17 or so slots — the "for
        sufficiently small γ" of Lemma 12 in concrete form.  Use
        :meth:`schedule_overhead` to check a configuration.
        """
        return AlignedParams(lam=lam, tau=64, min_level=2)

    @staticmethod
    def simulation(lam: int = 1, tau: int = 4, min_level: int = 8) -> "AlignedParams":
        """Laptop-scale constants preserving the guarantee shapes."""
        return AlignedParams(lam=lam, tau=tau, min_level=min_level)

    def schedule_overhead(self, level: int) -> float:
        """Worst-case fraction of a class-``level`` window eaten by overhead.

        Counts the deterministic estimation cost of every (possibly
        empty) class from ``min_level`` up through ``level`` nested in one
        window of size ``2^level``:

            λ · Σ_{ℓ'=min_level}^{level} (2^level / 2^ℓ') ℓ'² / 2^level
              = λ · Σ ℓ'²/2^ℓ'

        If this is ≥ 1 the schedule cannot fit even with zero jobs — the
        concrete meaning of Lemma 12's requirement that γ be small (i.e.
        ``min_level`` large).  Values ≲ 0.5 leave comfortable room for
        broadcast stages.
        """
        return self.lam * sum(
            (l * l) / float(1 << l) for l in range(self.min_level, level + 1)
        )

    def for_instance(self, instance: Instance) -> "AlignedParams":
        """This parameter set with ``min_level`` matched to an instance.

        Sets ``min_level`` to the smallest job class present, the tightest
        legal value (corresponding to the largest γ the instance allows).
        """
        instance.require_aligned()
        if len(instance) == 0:
            return self
        lowest = min(j.job_class for j in instance.jobs)
        return replace(self, min_level=lowest)

    def max_gamma(self) -> float:
        """The largest slack γ consistent with ``min_level`` (w₀ ≥ 1/γ)."""
        return 1.0 / float(1 << self.min_level)


@dataclass(frozen=True, slots=True)
class PunctualParams:
    """Parameters of PUNCTUAL (Section 4, Figure 2).

    Attributes
    ----------
    aligned:
        Parameters of the embedded ALIGNED protocol (runs on the aligned
        slots, in round-indexed virtual time).
    lam:
        The paper's λ in SLINGSHOT: pullback lasts ``λ·log(w)^slingshot_exp``
        slots and anarchists transmit with probability
        ``λ·log(w)/w`` per anarchy slot.
    pullback_exp:
        Exponent of the pullback probability denominator:
        ``1 / (w · log(w)^pullback_exp)``; the paper uses 3.
    slingshot_exp:
        Exponent of the pullback duration: ``λ · log(w)^slingshot_exp``
        slots; the paper uses 7.
    """

    aligned: AlignedParams = AlignedParams()
    lam: int = 2
    pullback_exp: int = 1
    slingshot_exp: int = 2
    slot_scale: int = 10

    def __post_init__(self) -> None:
        if self.lam < 1:
            raise InvalidParameterError(f"lam must be >= 1, got {self.lam}")
        if self.pullback_exp < 0 or self.slingshot_exp < 0:
            raise InvalidParameterError("exponents must be >= 0")
        if self.slot_scale < 1:
            raise InvalidParameterError(
                f"slot_scale must be >= 1, got {self.slot_scale}"
            )

    @staticmethod
    def paper(lam: int = 8) -> "PunctualParams":
        """The literal constants of Section 4 (log³ pullback, log⁷ duration)."""
        return PunctualParams(
            aligned=AlignedParams.paper(lam=lam),
            lam=lam,
            pullback_exp=3,
            slingshot_exp=7,
        )

    @staticmethod
    def simulation(lam: int = 2) -> "PunctualParams":
        """Laptop-scale constants (log¹ pullback, log² duration)."""
        return PunctualParams(
            aligned=AlignedParams.simulation(),
            lam=lam,
            pullback_exp=1,
            slingshot_exp=2,
        )

    # -- derived quantities (shared by protocol and analysis code) ----------

    def pullback_probability(self, window: int) -> float:
        """Per-election-slot claim probability, capped at 1/2.

        The paper states ``1/(w·log^k w)`` *per slot*, but only one slot
        in ``slot_scale`` (= the round length) is an election slot, so we
        scale by ``slot_scale`` to preserve the per-window attempt budget
        the analysis counts on.
        """
        lg = max(1.0, math.log2(max(window, 2)))
        return cap_probability(
            self.slot_scale / (window * lg**self.pullback_exp)
        )

    def pullback_duration(self, window: int) -> int:
        """Length of the pullback stage in slots, ``λ·log^m w``."""
        lg = max(1.0, math.log2(max(window, 2)))
        return max(1, int(math.ceil(self.lam * lg**self.slingshot_exp)))

    def anarchist_probability(self, window: int) -> float:
        """Per-anarchy-slot release probability, capped at 1/2.

        ``λ·log(w)/w`` per slot in the paper, scaled by ``slot_scale``
        because only one slot per round is an anarchy slot (see
        :meth:`pullback_probability`).
        """
        lg = max(1.0, math.log2(max(window, 2)))
        return cap_probability(self.lam * self.slot_scale * lg / window)
