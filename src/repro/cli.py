"""Command-line interface: run workloads and protocols from the shell.

Usage (also ``python -m repro ...``)::

    repro simulate --workload batch --n 12 --window 4096 --protocol punctual
    repro compare  --workload sensors --seeds 3
    repro feasibility --workload harmonic --n 256 --gamma 0.5
    repro schedule --small-level 9
    repro simulate --protocol punctual --telemetry out.jsonl
    repro obs out.jsonl

Subcommands
-----------
``simulate``
    One workload, one protocol, one seed; prints the result summary.
``compare``
    One workload, every protocol; prints a miss-rate table.
``feasibility``
    Builds a workload and reports its peak density / slack certificate.
``schedule``
    Regenerates a Figure-1-style pecking-order schedule as ASCII art.
``certify``
    Bisects each protocol's empirical breaking point per adversary
    family (oblivious and reactive), prints the degradation frontier,
    and checks the Theorem-14 boundary (PUNCTUAL's stochastic-jamming
    threshold must sit at ``p_jam ~ 1/2``).
``verify``
    Runs the differential / metamorphic / determinism battery of
    :mod:`repro.verify` (``--smoke`` for the CI profile) and writes a
    JSONL discrepancy artifact on request.
``obs``
    Summarizes telemetry JSONL artifacts written by ``--telemetry``
    (available on ``simulate`` / ``sweep`` / ``compare`` /
    ``robustness`` / ``certify``): top metrics, per-phase timing,
    lifecycle event counts, leader churn, contention percentiles.
``runs``
    Inspects the run ledger written by ``--ledger`` (available on
    ``simulate`` / ``sweep`` / ``compare`` / ``certify`` / ``stream`` /
    ``verify``): ``list`` one line per run, ``show`` a full record,
    ``compare`` two runs' configs / versions / counters.
``campaign``
    Drives a declarative experiment campaign (YAML/JSON grid of
    workloads × protocols × adversaries × seeds) through the
    ``plan → evaluate → execute → report`` pipeline: ``run`` executes
    the missing cells (resumable after any crash, quarantining cells
    that fail every retry; exit code 3 flags a degraded-but-complete
    campaign), ``resume`` continues an interrupted one, ``status``
    summarizes the durable state, ``manifest`` lists every cell, and
    ``--dry-run`` predicts cache hits/misses without executing.
``top``
    Tails heartbeat files written by ``--heartbeat``: progress, rate,
    ETA, staleness for in-flight runs.
``perf``
    Runs the perf smoke suite, appends a timestamped entry to the
    ``BENCH_engine.json`` trajectory, and flags statistically confirmed
    throughput regressions against the same-host trend.

``repro --version`` prints the package version.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro import registry
from repro.analysis.tables import format_table
from repro.channel.jamming import NoJammer, StochasticJammer
from repro.errors import InvalidParameterError
from repro.params import AlignedParams
from repro.sim.engine import simulate
from repro.sim.feasibility import peak_density
from repro.sim.instance import Instance

__all__ = ["main", "build_parser"]


def _build_workload(args: argparse.Namespace) -> Instance:
    # Name → builder dispatch lives in repro.registry so the campaign
    # layer and the CLI resolve identical workloads from one name.
    try:
        return registry.build_workload(vars(args))
    except InvalidParameterError as exc:
        raise SystemExit(str(exc))


def _aligned_params(args: argparse.Namespace) -> AlignedParams:
    return registry.aligned_params(vars(args))


def _protocol_factories(args, instance: Instance) -> Dict[str, Callable]:
    return registry.protocol_factories(vars(args), instance)


def _jammer(args):
    return StochasticJammer(args.jam) if args.jam > 0 else NoJammer()


def _fault_plan(args):
    """Parse ``--fault FAMILY:SEVERITY`` into a FaultPlan (or None)."""
    spec = getattr(args, "fault", "")
    if not spec:
        return None
    from repro.experiments.robustness import fault_plan

    family, sep, severity = spec.partition(":")
    if not sep:
        raise SystemExit(
            f"--fault expects FAMILY:SEVERITY (e.g. jam:0.5), got {spec!r}"
        )
    try:
        sev = float(severity)
    except ValueError:
        raise SystemExit(f"--fault severity must be a number, got {severity!r}")
    plan = fault_plan(family.strip(), sev)
    return None if plan.is_noop else plan


def _cache_knob(args):
    """Map the ``--cache`` flag onto the library's cache knob."""
    value = getattr(args, "cache", "")
    if not value:
        return None
    if value == "default":
        return True
    return value


def _telemetry_for(args: argparse.Namespace, command: str):
    """A :class:`~repro.obs.Telemetry` collector when --telemetry is set."""
    path = getattr(args, "telemetry", "")
    if not path:
        return None
    from repro.obs import Telemetry

    context: Dict[str, Any] = {"command": command}
    for key in ("workload", "protocol", "protocols", "seed", "seeds", "jam"):
        value = getattr(args, key, None)
        if value not in (None, ""):
            context[key] = value
    return Telemetry(label=f"repro {command}", context=context)


def _write_telemetry(tele, args: argparse.Namespace) -> None:
    if tele is None:
        return
    path = tele.write_jsonl(args.telemetry)
    print(f"wrote telemetry to {path} (summarize with: repro obs {path})")


def _ledger_for(args: argparse.Namespace):
    """A :class:`~repro.obs.ledger.RunLedger` when ``--ledger`` is set."""
    value = getattr(args, "ledger", "")
    if not value:
        return None
    from repro.obs.ledger import RunLedger

    return RunLedger() if value == "default" else RunLedger(value)


def _tracker_for(args: argparse.Namespace, command: str, total=None):
    """A heartbeat-backed ProgressTracker when ``--heartbeat`` is set."""
    path = getattr(args, "heartbeat", "")
    if not path:
        return None
    from repro.obs.progress import Heartbeat, ProgressTracker

    return ProgressTracker(
        total,
        label=f"repro {command}",
        heartbeat=Heartbeat(
            path, every_seconds=getattr(args, "heartbeat_every", 1.0)
        ),
    )


def _metrics_server_for(args: argparse.Namespace, tele, tracker=None):
    """An opt-in /metrics endpoint when ``--metrics-port`` is set.

    Serves the telemetry registry when one is attached (a fresh empty
    registry otherwise) plus the tracker's progress gauges.
    """
    port = getattr(args, "metrics_port", 0)
    if not port or port < 0:
        return None
    from repro.obs import MetricsRegistry, MetricsServer

    registry = tele.metrics if tele is not None else MetricsRegistry()
    extra = None
    if tracker is not None:

        def extra():
            snap = tracker.snapshot()
            out = {"progress.done": float(snap["done"])}
            for key, src in (
                ("progress.fraction", "fraction"),
                ("progress.rate_per_s", "rate_per_s"),
                ("progress.eta_s", "eta_s"),
            ):
                if snap.get(src) is not None:
                    out[key] = float(snap[src])
            return out

    server = MetricsServer(registry, port, extra=extra)
    server.start()
    print(f"serving Prometheus metrics on http://127.0.0.1:{server.port}/metrics")
    return server


def _finish_obs(tracker, server, status: str = "done") -> None:
    if tracker is not None:
        tracker.finish(status)
    if server is not None:
        server.stop()


# -- picklable sweep/compare plumbing ---------------------------------------
#
# Multi-process runs ship the builders to worker processes, so they must
# be module-level callables bound with functools.partial (closures over
# ``args`` would not pickle).  The argparse namespace travels as a plain
# dict of its (picklable) values.


def _args_state(args: argparse.Namespace) -> Dict[str, Any]:
    # "telemetry" is observational and must not perturb cache keys
    # (the state dict is digested into run_key via the build/protocol
    # partials), so it never enters the state.  "fastpath" routes
    # execution without changing engine-path results, and the kernel
    # path namespaces its own keys — folding it here would needlessly
    # split the engine cache address space.  The ledger / heartbeat /
    # metrics knobs are observational for the same reason: attaching
    # them must keep every cache and checkpoint key byte-identical.
    return {
        k: v
        for k, v in vars(args).items()
        if k
        not in (
            "func",
            "telemetry",
            "fastpath",
            "ledger",
            "heartbeat",
            "heartbeat_every",
            "metrics_port",
            "json",
        )
    }


def _build_workload_from_state(state: Dict[str, Any], **params: Any) -> Instance:
    ns = argparse.Namespace(**state)
    for key, value in params.items():
        setattr(ns, key.replace("-", "_"), value)
    return _build_workload(ns)


def _protocol_from_state(state: Dict[str, Any], name: str, instance: Instance):
    return _protocol_factories(argparse.Namespace(**state), instance)[name]


class _StreamProtocol:
    """A picklable per-job protocol factory for sharded streaming runs.

    Resolves the named factory lazily in each worker process from the
    argparse state dict (closures over ``args`` would not pickle); the
    resolved factory is cached per process, not shipped.
    """

    def __init__(self, state: Dict[str, Any], name: str) -> None:
        self.state = state
        self.name = name
        self._factory: Optional[Callable] = None

    def __getstate__(self):
        return (self.state, self.name)

    def __setstate__(self, state) -> None:
        self.state, self.name = state
        self._factory = None

    def __call__(self, job, rng):
        if self._factory is None:
            self._factory = _protocol_factories(
                argparse.Namespace(**self.state), Instance(())
            )[self.name]
        return self._factory(job, rng)


def cmd_simulate(args: argparse.Namespace) -> int:
    led = _ledger_for(args)
    if led is None:
        return _cmd_simulate_impl(args)
    from repro.sim.engine import ENGINE_VERSION

    config = {
        "kind": "simulate",
        "workload": args.workload,
        "protocol": args.protocol,
        "n": args.n,
        "window": args.window,
        "seed": args.seed,
        "jam": args.jam,
        "fault": args.fault or None,
        "fastpath": getattr(args, "fastpath", "off"),
    }
    with led.track("simulate", config=config) as trk:
        trk.engine_version = ENGINE_VERSION
        rc = _cmd_simulate_impl(args, trk)
        trk.counters.setdefault("exit_code", rc)
    return rc


def _cmd_simulate_impl(args: argparse.Namespace, trk=None) -> int:
    tele = _telemetry_for(args, "simulate")
    if tele is not None:
        with tele.span("build"):
            instance = _build_workload(args)
    else:
        instance = _build_workload(args)
    if trk is not None:
        from repro.cache import stable_digest

        try:
            trk.config_digest = stable_digest(
                (
                    instance,
                    args.protocol,
                    args.seed,
                    args.jam,
                    args.fault,
                    getattr(args, "fastpath", "off"),
                )
            )
        except Exception:
            pass
        if args.telemetry:
            trk.artifact(args.telemetry)
    factories = _protocol_factories(args, instance)
    if args.protocol not in factories:
        raise SystemExit(
            f"protocol {args.protocol!r} unavailable for this workload "
            f"(choices: {sorted(factories)})"
        )
    faults = _fault_plan(args)
    jammer = _jammer(args)
    if faults is not None and faults.jammer is not None:
        if args.jam > 0:
            raise SystemExit(
                "--jam conflicts with a --fault family that carries its "
                "own adversary; pick one"
            )
        jammer = None
    if getattr(args, "fastpath", "off") != "off":
        # Tracing, CSV export, and single-run telemetry all want the
        # engine's per-slot / per-job records; the kernels only produce
        # digests.
        needs_engine = (
            args.trace
            or bool(args.export)
            or bool(args.export_trace)
            or tele is not None
        )
        plan = None
        if not needs_engine:
            from repro.fastpath.batched import plan_fastpath, simulate_fastpath

            plan, reason = plan_fastpath(
                instance,
                factories[args.protocol],
                jammer=jammer,
                faults=faults,
                check_invariants=args.check_invariants,
            )
        else:
            reason = (
                "--trace/--export/--telemetry need the engine's full records"
            )
        if plan is not None:
            digest = simulate_fastpath(plan, args.seed)
            if trk is not None:
                from repro.fastpath.batched import KERNEL_VERSION

                trk.kernel_version = KERNEL_VERSION
                trk.counters.update(
                    jobs=digest.n_jobs,
                    succeeded=digest.n_succeeded,
                    success_rate=digest.success_rate,
                    slots=digest.slots_simulated,
                )
            print(instance.summary())
            print(f"slots simulated: {digest.slots_simulated}")
            print(
                f"success: {digest.n_succeeded}/{digest.n_jobs} "
                f"({digest.success_rate:.3f})"
            )
            for w, s, t in digest.by_window:
                print(f"  window {w:>6}: {s}/{t}")
            print(f"fastpath: {plan.kind} kernel")
            _write_telemetry(tele, args)
            return 0 if digest.success_rate >= args.require_success else 1
        if args.fastpath == "on":
            raise SystemExit(f"--fastpath on: {reason}")
    result = simulate(
        instance,
        factories[args.protocol],
        jammer=jammer,
        seed=args.seed,
        trace=args.trace or bool(args.export_trace),
        faults=faults,
        invariants=args.check_invariants,
        telemetry=tele,
    )
    if trk is not None:
        trk.counters.update(
            jobs=len(result.outcomes),
            succeeded=result.n_succeeded,
            success_rate=result.success_rate,
            slots=result.slots_simulated,
        )
        if result.watchdog is not None:
            trk.watchdog_trips = 1
    if faults is not None:
        print(f"faults: {faults.describe()}")
    print(result.summary())
    if args.trace and result.trace is not None:
        print(f"utilization: {result.trace.utilization():.3f}")
        print(f"collisions:  {result.trace.collision_rate():.3f}")
    if args.export:
        from repro.analysis.export import result_to_records, write_csv

        write_csv(result_to_records(result), args.export)
        print(f"wrote per-job outcomes to {args.export}")
    if args.export_trace and result.trace is not None:
        from repro.analysis.export import trace_to_records, write_csv

        write_csv(trace_to_records(result.trace), args.export_trace)
        print(f"wrote per-slot trace to {args.export_trace}")
    _write_telemetry(tele, args)
    return 0 if result.success_rate >= args.require_success else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep one workload parameter and print the success curve."""
    from repro.experiments import Sweep

    values = []
    for token in args.values.split(","):
        token = token.strip()
        values.append(float(token) if "." in token else int(token))

    tele = _telemetry_for(args, "sweep")
    tracker = _tracker_for(args, "sweep", total=len(values))
    server = _metrics_server_for(args, tele, tracker)
    state = _args_state(args)
    sweep = Sweep(
        build=functools.partial(_build_workload_from_state, state),
        protocol=functools.partial(_protocol_from_state, state, args.protocol),
        seeds=args.seeds,
        jammer=_jammer(args) if args.jam > 0 else None,
        processes=args.processes,
        cache=_cache_knob(args),
        telemetry=tele,
        fastpath=getattr(args, "fastpath", "off"),
        progress=tracker,
        ledger=_ledger_for(args),
    )
    try:
        points = sweep.run({args.param: values})
    except BaseException:
        _finish_obs(tracker, server, status="failed")
        raise
    _finish_obs(tracker, server)
    print(
        Sweep.table(
            points,
            title=(
                f"{args.protocol} on {args.workload}, sweeping "
                f"{args.param} over {values} ({args.seeds} seeds/point)"
            ),
        )
    )
    _write_telemetry(tele, args)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments import run_seeds

    tele = _telemetry_for(args, "compare")
    led = _ledger_for(args)
    instance = _build_workload(args)
    factories = _protocol_factories(args, instance)
    state = _args_state(args)
    build = functools.partial(_build_workload_from_state, state)
    rows = []
    for name in sorted(factories):
        digests = run_seeds(
            build,
            functools.partial(_protocol_from_state, state, name),
            seeds=range(args.seeds),
            jammer=_jammer(args),
            processes=args.processes,
            cache=_cache_knob(args),
            telemetry=tele,
            ledger=led,
        )
        ok = sum(d.n_succeeded for d in digests)
        total = sum(d.n_jobs for d in digests)
        rows.append([name, 1.0 - ok / total, total])
    print(
        format_table(
            ["protocol", "miss rate", "jobs x seeds"],
            rows,
            title=f"workload: {instance.summary()}",
        )
    )
    _write_telemetry(tele, args)
    return 0


def cmd_robustness(args: argparse.Namespace) -> int:
    """Sweep fault severity per family; print degradation profiles."""
    from repro.experiments.robustness import (
        FAULT_FAMILIES,
        JAM_THRESHOLD,
        run_robustness,
    )

    if args.smoke:
        # CI chaos smoke: ALIGNED + UNIFORM under a rate-limited
        # adaptive adversary, invariant checker on, a clean baseline
        # column to gate on.  Tuned to finish in well under 30 seconds.
        args.workload = "single-class"
        args.n = 10
        args.level = 9
        args.protocols = "aligned,uniform"
        args.families = "rate"
        args.severities = "0,0.5"
        args.seeds = 3

    instance = _build_workload(args)
    factories = _protocol_factories(args, instance)
    names = [n.strip() for n in args.protocols.split(",") if n.strip()]
    for name in names:
        if name not in factories:
            raise SystemExit(
                f"protocol {name!r} unavailable for this workload "
                f"(choices: {sorted(factories)})"
            )
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    for fam in families:
        if fam not in FAULT_FAMILIES:
            raise SystemExit(
                f"unknown fault family {fam!r} "
                f"(choices: {sorted(FAULT_FAMILIES)})"
            )
    severities = [float(tok) for tok in args.severities.split(",")]

    state = _args_state(args)
    build = functools.partial(_build_workload_from_state, state)
    protocols = {
        name: functools.partial(_protocol_from_state, state, name)
        for name in names
    }
    tele = _telemetry_for(args, "robustness")
    report = run_robustness(
        build,
        protocols,
        families=families,
        severities=severities,
        seeds=args.seeds,
        check_invariants=not args.no_invariants,
        processes=args.processes,
        cache=_cache_knob(args),
        retries=args.retries,
        telemetry=tele,
    )
    print(report.render())
    _write_telemetry(tele, args)
    if any(s == JAM_THRESHOLD for s in severities) and "jam" in families:
        print(
            f"\nseverity {JAM_THRESHOLD} of family 'jam' is the exact "
            "p_jam <= 1/2 boundary of Theorem 14."
        )
    if args.smoke:
        # Gate the smoke on the clean baseline: a run that cannot
        # deliver everything on an unjammed channel is broken, and any
        # invariant violation has already raised.
        clean = report.point("rate", "aligned", 0.0)
        if clean.success.point < 1.0:
            print("SMOKE FAILURE: clean ALIGNED baseline below 1.0")
            return 1
        print("chaos smoke passed (invariants held on every run)")
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    """Bisect breaking points per adversary family; print the frontier."""
    from repro.experiments.certify import ADVERSARY_FAMILIES, run_certification
    from repro.experiments.robustness import JAM_THRESHOLD

    if args.smoke:
        # Nightly CI smoke: the Theorem-14 anchor plus the two sharpest
        # reactive attackers, a coarse bisection, modest replication.
        # Gates: PUNCTUAL's stochastic threshold must not drift below
        # --min-jam-threshold, some reactive family must break it
        # strictly earlier, and the modern-zoo representative (slowfb)
        # must have a locatable jam cliff.  Tuned to finish in well
        # under a minute.
        args.protocols = "punctual,slowfb"
        args.families = "jam,struct-delivery,banked"
        args.seeds = 12
        args.tol = 0.05

    instance = _build_workload(args)
    factories = _protocol_factories(args, instance)
    names = [n.strip() for n in args.protocols.split(",") if n.strip()]
    for name in names:
        if name not in factories:
            raise SystemExit(
                f"protocol {name!r} unavailable for this workload "
                f"(choices: {sorted(factories)})"
            )
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    for fam in families:
        if fam not in ADVERSARY_FAMILIES:
            raise SystemExit(
                f"unknown adversary family {fam!r} "
                f"(choices: {sorted(ADVERSARY_FAMILIES)})"
            )

    state = _args_state(args)
    build = functools.partial(_build_workload_from_state, state)
    protocols = {
        name: functools.partial(_protocol_from_state, state, name)
        for name in names
    }
    tele = _telemetry_for(args, "certify")
    tracker = _tracker_for(args, "certify")
    server = _metrics_server_for(args, tele, tracker)
    probe_cb = None
    if tracker is not None:

        def probe_cb(name: str, family: str, severity: float) -> None:
            tracker.context.update(
                cell=f"{name}/{family}", severity=round(severity, 4)
            )
            tracker.add(1)

    try:
        report = run_certification(
            build,
            protocols,
            families=families,
            seeds=args.seeds,
            target=args.target,
            tol=args.tol,
            processes=args.processes,
            cache=_cache_knob(args),
            retries=args.retries,
            telemetry=tele,
            fastpath=getattr(args, "fastpath", "off"),
            progress=probe_cb,
            ledger=_ledger_for(args),
        )
    except BaseException:
        _finish_obs(tracker, server, status="failed")
        raise
    _finish_obs(tracker, server)
    print(report.render())
    if args.artifact:
        n = report.to_jsonl(args.artifact)
        print(f"\nwrote {n} breaking-point records to {args.artifact}")
    _write_telemetry(tele, args)

    status = 0
    if "jam" in families and args.min_jam_threshold > 0:
        for name in names:
            dev = report.theorem14_deviation(name)
            if dev is None:
                continue
            threshold = JAM_THRESHOLD + dev
            if name == "punctual" and threshold < args.min_jam_threshold:
                print(
                    f"CERTIFY FAILURE: punctual stochastic-jamming "
                    f"threshold {threshold:.3f} drifted below "
                    f"{args.min_jam_threshold:g}"
                )
                status = 1
    if args.smoke:
        lower = report.reactive_strictly_lower("punctual")
        if lower is not True:
            print(
                "CERTIFY FAILURE: no reactive adversary broke punctual "
                "strictly below the oblivious jam threshold"
            )
            status = 1
        if "slowfb" in names:
            cell = report.cell("slowfb", "jam")
            if cell.threshold is None:
                print(
                    "CERTIFY FAILURE: slowfb's stochastic-jamming cliff "
                    "was not located in [0, 1]"
                )
                status = 1
        if status == 0:
            print("\ncertify smoke passed (Theorem 14 boundary in place)")
    return status


def cmd_frontier(args: argparse.Namespace) -> int:
    """Deadline-miss × energy frontier under identical jamming budgets."""
    from repro.experiments.frontier import run_frontier

    instance = _build_workload(args)
    factories = _protocol_factories(args, instance)
    names = [n.strip() for n in args.protocols.split(",") if n.strip()]
    for name in names:
        if name not in factories:
            raise SystemExit(
                f"protocol {name!r} unavailable for this workload "
                f"(choices: {sorted(factories)})"
            )
    try:
        budgets = [float(tok) for tok in args.budgets.split(",") if tok.strip()]
    except ValueError:
        raise SystemExit(f"--budgets expects numbers, got {args.budgets!r}")

    state = _args_state(args)
    build = functools.partial(_build_workload_from_state, state)
    protocols = {
        name: functools.partial(_protocol_from_state, state, name)
        for name in names
    }
    tele = _telemetry_for(args, "frontier")
    report = run_frontier(
        build,
        protocols,
        budgets=budgets,
        seeds=args.seeds,
        processes=args.processes,
        cache=_cache_knob(args),
        retries=args.retries,
        telemetry=tele,
    )
    print(report.render())
    if args.artifact:
        n = report.to_jsonl(args.artifact)
        print(f"\nwrote {n} frontier points to {args.artifact}")
    _write_telemetry(tele, args)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Run the differential / metamorphic / determinism battery."""
    from repro.verify import run_verification

    cases = None
    if args.cases:
        cases = [c.strip() for c in args.cases.split(",") if c.strip()]
    led = _ledger_for(args)
    if led is not None:
        from repro.sim.engine import ENGINE_VERSION

        config = {
            "kind": "verify",
            "smoke": args.smoke,
            "cases": cases,
        }
        with led.track("verify", config=config) as trk:
            trk.engine_version = ENGINE_VERSION
            report = run_verification(
                smoke=args.smoke,
                cases=cases,
                progress=(
                    (lambda msg: print(f"  .. {msg}"))
                    if args.progress
                    else None
                ),
            )
            trk.counters.update(
                checks=len(report.results),
                failures=len(report.failures),
                discrepancies=len(report.discrepancies),
            )
            if not report.ok:
                trk.status = "failed"
            if args.artifact:
                trk.artifact(args.artifact)
    else:
        report = run_verification(
            smoke=args.smoke,
            cases=cases,
            progress=(
                (lambda msg: print(f"  .. {msg}")) if args.progress else None
            ),
        )
    print(report.render())
    if args.artifact:
        path = report.write_artifact(args.artifact)
        print(f"\nwrote verification artifact to {path} "
              f"(summarize with: repro obs {path})")
    if not report.ok:
        print(
            f"\nVERIFY FAILURE: {len(report.failures)} check(s) found "
            f"{len(report.discrepancies)} discrepancies"
        )
        return 1
    print("\nverification passed (engine, kernels, and digests agree)")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Plan, run, resume, or inspect a declarative campaign."""
    import json

    from repro.campaign import (
        CampaignSpec,
        CampaignState,
        CampaignStateError,
        evaluate,
        run_campaign,
    )

    try:
        spec = CampaignSpec.from_file(args.spec)
    except InvalidParameterError as exc:
        raise SystemExit(str(exc))

    cmd = args.campaign_cmd
    if cmd in ("run", "resume"):
        if cmd == "resume" and not spec.state_path.exists():
            raise SystemExit(
                f"no campaign state at {spec.state_path}; "
                f"start with 'repro campaign run'"
            )
        try:
            report = run_campaign(spec, dry_run=args.dry_run)
        except CampaignStateError as exc:
            raise SystemExit(str(exc))
        if getattr(args, "json", False):
            print(json.dumps(report.to_json(), indent=2, allow_nan=False))
        else:
            print(report.render())
        return 0 if args.dry_run else report.exit_code

    view = CampaignState(spec.state_path).load()
    drift = (
        view.header is not None
        and view.header.get("spec_digest") != spec.digest()
    )
    plan = evaluate(spec, view=view)
    if cmd == "status":
        counts = plan.counts
        if getattr(args, "json", False):
            payload = {
                "name": spec.name,
                "spec_digest": plan.spec_digest,
                "state": str(spec.state_path),
                "state_drift": drift,
                "counts": counts,
                "quarantined": [
                    {
                        "key": str(rec.get("key", "")),
                        "label": str(rec.get("label", "")),
                        "attempts": int(rec.get("attempts", 0)),
                    }
                    for rec in view.quarantined.values()
                ],
            }
            print(json.dumps(payload, indent=2, allow_nan=False))
            return 0
        print(
            f"campaign: {spec.name}  (grid {plan.spec_digest[:12]}, "
            f"state {spec.state_path})"
        )
        if drift:
            print(
                "  WARNING: state file belongs to a different grid — "
                "a run would refuse to resume it"
            )
        print(
            f"  cells: {counts['cells']}  done: {counts['done']}  "
            f"quarantined: {counts['quarantined']}  "
            f"missing: {counts['missing']}"
        )
        print(
            f"  cache: {counts['cache_hits']} hit(s), "
            f"{counts['cache_misses']} miss(es) predicted for the "
            f"missing cells"
        )
        for rec in view.quarantined.values():
            print(
                f"  quarantined: {rec.get('label', '')} after "
                f"{rec.get('attempts', 0)} attempt(s)"
            )
        return 0

    # manifest: one row per cell
    if getattr(args, "json", False):
        payload = {
            "name": spec.name,
            "spec_digest": plan.spec_digest,
            "cells": [
                {
                    "index": c.index,
                    "key": c.key,
                    "label": c.label,
                    "status": c.status,
                    "cache_hits": c.cache_hits,
                    "cache_misses": c.cache_misses,
                }
                for c in plan.cells
            ],
        }
        print(json.dumps(payload, indent=2, allow_nan=False))
        return 0
    rows = [
        [
            str(c.index),
            c.status,
            c.label,
            f"{c.cache_hits}/{c.cache_hits + c.cache_misses}"
            if c.status == "missing"
            else "-",
            c.key[:12],
        ]
        for c in plan.cells
    ]
    print(
        format_table(
            ["cell", "status", "label", "cached", "key"],
            rows,
            title=(
                f"campaign manifest: {spec.name} "
                f"(grid {plan.spec_digest[:12]})"
            ),
        )
    )
    return 0


def cmd_feasibility(args: argparse.Namespace) -> int:
    from repro.sim.validate import certify

    instance = _build_workload(args)
    report = peak_density(instance)
    print(instance.summary())
    print(str(report))
    print(f"tightest feasible γ: {report.density:.6f}")
    feasible = report.density <= args.gamma + 1e-12
    print(f"γ-slack feasible at γ={args.gamma}: {'yes' if feasible else 'NO'}")
    cert = certify(
        instance,
        gamma=args.gamma,
        aligned=_aligned_params(args) if instance.is_aligned else None,
        punctual=registry.punctual_params(vars(args)),
    )
    print()
    print(cert.render())
    return 0 if feasible and cert.ok else 1


def cmd_schedule(args: argparse.Namespace) -> int:
    from repro.analysis.capture import ScheduleCapture
    from repro.analysis.tables import render_schedule
    from repro.sim.job import Job

    lvl = args.small_level
    jobs = []
    jid = 0
    for k in range(4):
        for _ in range(2):
            jobs.append(Job(jid, k << lvl, (k + 1) << lvl)); jid += 1
    for k in range(2):
        for _ in range(3):
            jobs.append(Job(jid, k << (lvl + 1), (k + 1) << (lvl + 1))); jid += 1
    for _ in range(3):
        jobs.append(Job(jid, 0, 4 << lvl)); jid += 1
    instance = Instance(jobs)
    capture = ScheduleCapture(AlignedParams(lam=1, tau=4, min_level=lvl))
    result = simulate(instance, capture.factory(), seed=args.seed)
    active, kinds = capture.timeline(instance.horizon)
    print(f"delivered {result.n_succeeded}/{len(result)}")
    print(
        render_schedule(
            active[: args.width],
            kinds[: args.width],
            [lvl, lvl + 1, lvl + 2],
            max_width=args.width,
        )
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Assemble archived experiment tables into one markdown report."""
    import pathlib

    results = pathlib.Path(args.results_dir)
    if not results.is_dir():
        print(f"no results directory at {results} — run the benchmarks first:")
        print("  pytest benchmarks/ --benchmark-only")
        return 1
    files = sorted(results.glob("*.txt"))
    if not files:
        print(f"no experiment artefacts in {results}")
        return 1
    sections = ["# Experiment report", ""]
    for f in files:
        sections.append(f"## {f.stem}")
        sections.append("")
        sections.append("```")
        sections.append(f.read_text().rstrip())
        sections.append("```")
        sections.append("")
    text = "\n".join(sections)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(files)} experiments)")
    else:
        print(text)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Summarize one or more telemetry JSONL artifacts."""
    import json
    import pathlib

    from repro.obs import read_artifact, render_reports, report_data

    artifacts = []
    for path in args.artifacts:
        if not pathlib.Path(path).is_file():
            print(f"no telemetry artifact at {path}")
            return 1
        artifacts.append(read_artifact(path))
    if getattr(args, "json", False):
        print(json.dumps([report_data(a) for a in artifacts], indent=2))
        return 0
    print(render_reports(artifacts))
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    """Inspect the run ledger: list, show, or compare run records."""
    import json

    from repro.obs.ledger import (
        RunLedger,
        compare_runs,
        summarize_records,
    )

    led = RunLedger(args.ledger) if args.ledger else RunLedger()
    if args.runs_cmd == "list":
        records = led.read()
        if getattr(args, "json", False):
            print(json.dumps([r.as_record() for r in records], indent=2))
            return 0
        if not records:
            print(f"no runs recorded in {led.path}")
            return 0
        print(
            format_table(
                ["run id", "kind", "started", "wall s", "status",
                 "config", "headline"],
                summarize_records(records),
                title=f"run ledger: {led.path} ({len(records)} runs)",
            )
        )
        return 0

    def _find(run_id: str):
        try:
            return led.find(run_id)
        except KeyError as exc:
            raise SystemExit(exc.args[0])

    if args.runs_cmd == "show":
        rec = _find(args.run_id)
        if getattr(args, "json", False):
            print(json.dumps(rec.as_record(), indent=2))
            return 0
        import time

        print(f"run {rec.run_id} ({rec.kind}) — {rec.status}")
        started = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(rec.started)
        )
        print(f"  started:  {started}")
        print(f"  wall:     {rec.wall_seconds:.3f}s on "
              f"{rec.hostname} (pid {rec.pid})")
        print(f"  versions: engine={rec.engine_version} "
              f"kernel={rec.kernel_version}")
        if rec.config_digest:
            print(f"  config digest: {rec.config_digest}")
        if rec.config:
            print("  config:")
            for k in sorted(rec.config):
                print(f"    {k}: {rec.config[k]}")
        if rec.counters:
            print("  counters:")
            for k in sorted(rec.counters):
                print(f"    {k}: {rec.counters[k]}")
        if rec.watchdog_trips:
            print(f"  watchdog trips: {rec.watchdog_trips}")
        if rec.artifacts:
            print("  artifacts:")
            for a in rec.artifacts:
                print(f"    {a}")
        return 0

    if args.runs_cmd == "compare":
        rec_a, rec_b = _find(args.a), _find(args.b)
        diff = compare_runs(rec_a, rec_b)
        if getattr(args, "json", False):
            print(json.dumps(diff, indent=2))
            return 0
        a, b = diff["a"], diff["b"]
        print(f"comparing {a} ({diff['kinds'][0]}) "
              f"vs {b} ({diff['kinds'][1]})")
        print(
            "config: identical"
            if diff["same_config"]
            else "config: DIFFERS"
        )
        for key in sorted(diff["config"]):
            va, vb = diff["config"][key]
            print(f"  {key}: {va} -> {vb}")
        if not diff["same_config"] and not diff["config"]:
            # The digests cover full run content (workload state,
            # knobs); the recorded summary dicts may still agree.
            print(
                f"  config digest: {rec_a.config_digest[:12]} -> "
                f"{rec_b.config_digest[:12]}"
            )
        for key in sorted(diff["versions"]):
            va, vb = diff["versions"][key]
            if va != vb:
                print(f"  {key}: {va} -> {vb}")
        if diff["counters"]:
            rows = []
            for key in sorted(diff["counters"]):
                c = diff["counters"][key]
                rows.append([
                    key,
                    "-" if c["a"] is None else c["a"],
                    "-" if c["b"] is None else c["b"],
                    "-" if c.get("delta") is None else c["delta"],
                    (
                        "-"
                        if c.get("ratio") is None
                        else f"{c['ratio']:.3f}"
                    ),
                ])
            print(format_table(
                ["counter", a, b, "delta", "ratio"], rows
            ))
        wall = diff["wall_seconds"]
        print(
            f"wall seconds: {wall['a']:.3f} -> {wall['b']:.3f} "
            f"(delta {wall['delta']:+.3f})"
        )
        return 0
    raise SystemExit(f"unknown runs subcommand: {args.runs_cmd}")


def cmd_top(args: argparse.Namespace) -> int:
    """Show in-flight (and recently finished) runs from heartbeats."""
    import json

    from repro.obs.progress import scan_heartbeats

    paths = args.paths or [".repro"]
    snaps = scan_heartbeats(paths)
    if getattr(args, "json", False):
        print(json.dumps(snaps, indent=2))
        return 0
    if not snaps:
        print(f"no heartbeat files under: {', '.join(paths)}")
        return 0
    rows = []
    for s in snaps:
        done = s.get("done", 0)
        total = s.get("total")
        frac = s.get("fraction")
        rate = s.get("rate_per_s")
        eta = s.get("eta_s")
        status = s.get("status")
        if not status:
            status = "stale" if s.get("stale") else "running"
        rows.append([
            s.get("label", "?"),
            s.get("pid", "?"),
            f"{done}/{total}" if total else str(done),
            "-" if frac is None else f"{100.0 * frac:.1f}%",
            "-" if rate is None else f"{rate:,.0f}/s",
            "-" if eta is None else f"{eta:.0f}s",
            f"{s.get('age_s', 0.0):.1f}s",
            status,
        ])
    print(format_table(
        ["run", "pid", "done", "%", "rate", "eta", "age", "status"],
        rows,
        title=f"heartbeats ({len(snaps)})",
    ))
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Measure the perf smoke suite, append history, flag regressions."""
    import json

    from repro.obs import perftrack

    samples = perftrack.measure_smoke(repeats=args.repeats)
    data = perftrack.load_bench(args.bench)
    verdicts = perftrack.detect_regressions(
        samples, data, window=args.window
    )
    appended = False
    if not args.no_append:
        perftrack.append_history(samples, path=args.bench, note=args.note)
        appended = True
    regressions = sorted(
        label for label, v in verdicts.items() if v["regression"]
    )
    if getattr(args, "json", False):
        print(json.dumps({
            "bench": args.bench,
            "rates": {k: sorted(v) for k, v in samples.items()},
            "verdicts": verdicts,
            "regressions": regressions,
            "appended": appended,
        }, indent=2))
    else:
        rows = []
        for label in sorted(verdicts):
            v = verdicts[label]
            rows.append([
                label,
                f"{v['current_mean']:,.0f}",
                (
                    "-"
                    if v["history_mean"] is None
                    else f"{v['history_mean']:,.0f}"
                ),
                v["history_n"],
                (
                    "-"
                    if v.get("rel_change") is None
                    else f"{100.0 * v['rel_change']:+.1f}%"
                ),
                v["verdict"],
            ])
        print(format_table(
            ["suite", "slots/s", "trend mean", "n", "change", "verdict"],
            rows,
            title=f"perf trajectory: {args.bench}",
        ))
        if appended:
            print(f"appended 1 history entry to {args.bench}")
    if regressions and not args.no_gate:
        print(
            "PERF REGRESSION: "
            + ", ".join(regressions)
            + " (bootstrap CI excludes zero and relative drop "
            "exceeds threshold)"
        )
        return 1
    return 0


def _stream_process(args: argparse.Namespace, rho: float):
    """Build the arrival process for one offered load ρ."""
    from repro.stream import BurstyProcess, DiurnalProcess, PoissonProcess

    windows = tuple(int(x) for x in args.windows.split(",") if x.strip())
    weights = (
        tuple(float(x) for x in args.weights.split(",") if x.strip())
        if args.weights
        else None
    )
    kind = args.arrivals
    if kind == "poisson":
        return PoissonProcess(rate=rho, window_sizes=windows, weights=weights)
    if kind == "bursty":
        f = args.p_enter / (args.p_enter + args.p_exit)
        calm = rho * 0.5
        burst = (rho - (1.0 - f) * calm) / f
        return BurstyProcess(
            calm_rate=calm, burst_rate=burst,
            p_enter=args.p_enter, p_exit=args.p_exit,
            window_sizes=windows, weights=weights,
        )
    if kind == "diurnal":
        return DiurnalProcess(
            base_rate=rho, amplitude=args.amplitude, period=args.period,
            window_sizes=windows, weights=weights,
        )
    raise SystemExit(f"unknown arrival process: {kind}")


def _stream_budget(args: argparse.Namespace):
    from repro.stream import StreamBudget

    if args.max_live <= 0:
        return None
    return StreamBudget(
        max_live=args.max_live,
        policy=args.policy,
        queue_capacity=args.queue_capacity or None,
    )


def _stream_watchdog(args: argparse.Namespace):
    from repro.sim.watchdog import Watchdog

    if args.watchdog_seconds <= 0 and args.stall_factor <= 0:
        return None
    return Watchdog(
        max_seconds=args.watchdog_seconds if args.watchdog_seconds > 0 else None,
        stall_factor=args.stall_factor if args.stall_factor > 0 else None,
    )


def cmd_stream(args: argparse.Namespace) -> int:
    """Open-arrival streaming runs: sustained load, bounded memory."""
    led = _ledger_for(args)
    if led is None:
        return _cmd_stream_impl(args)
    from repro.sim.engine import ENGINE_VERSION

    config = {
        "kind": "stream",
        "protocol": args.protocol,
        "arrivals": args.arrivals,
        "rho": args.rho,
        "windows": args.windows,
        "max_jobs": args.max_jobs or None,
        "max_slots": args.max_slots or None,
        "shards": args.shards,
        "seed": args.seed,
        "fault": args.fault or None,
        "jam": args.jam or None,
    }
    with led.track("stream", config=config) as trk:
        trk.engine_version = ENGINE_VERSION
        from repro.cache import stable_digest

        try:
            trk.config_digest = stable_digest(config)
        except Exception:
            pass
        rc = _cmd_stream_impl(args, trk)
        trk.counters.setdefault("exit_code", rc)
    return rc


def _cmd_stream_impl(args: argparse.Namespace, trk=None) -> int:
    from repro.stream import CheckpointConfig, stream_simulate
    from repro.stream.report import SustainedLoadReport
    from repro.stream.shard import StreamShardSpec, run_stream_shards

    if args.max_jobs <= 0 and args.max_slots <= 0:
        raise SystemExit("set --max-jobs and/or --max-slots")
    rhos = [float(x) for x in args.rho.split(",") if x.strip()]
    if not rhos:
        raise SystemExit("--rho needs at least one value")
    plan = _fault_plan(args)
    jammer = _jammer(args)
    if type(jammer) is NoJammer:
        jammer = None
    budget = _stream_budget(args)
    watchdog = _stream_watchdog(args)
    factory = _StreamProtocol(_args_state(args), args.protocol)

    checkpoint = None
    if args.checkpoint:
        if len(rhos) > 1 or args.shards > 1:
            raise SystemExit(
                "--checkpoint applies to a single run: one --rho, --shards 1"
            )
        checkpoint = CheckpointConfig(
            path=args.checkpoint, every_slots=args.checkpoint_every
        )
    elif args.resume:
        raise SystemExit("--resume requires --checkpoint PATH")

    report = SustainedLoadReport(
        protocol=args.protocol,
        title="sustained load (streaming)",
        meta={
            "arrivals": args.arrivals,
            "windows": args.windows,
            "budget": budget.describe() if budget is not None else "none",
            "shards": args.shards,
            "max_jobs": args.max_jobs or None,
            "max_slots": args.max_slots or None,
            "fault": args.fault or None,
            "jam": args.jam or None,
        },
    )
    tracker = _tracker_for(args, "stream")
    server = _metrics_server_for(args, None, tracker)
    try:
        for rho in rhos:
            process = _stream_process(args, rho)
            if tracker is not None:
                tracker.context["rho"] = rho
            if checkpoint is not None:
                merged = stream_simulate(
                    process,
                    factory,
                    seed=args.seed,
                    max_jobs=args.max_jobs or None,
                    max_slots=args.max_slots or None,
                    budget=budget,
                    jammer=jammer,
                    faults=plan,
                    watchdog=watchdog,
                    checkpoint=checkpoint,
                    resume=args.resume,
                    progress=tracker,
                )
            else:
                specs = [
                    StreamShardSpec(
                        seed=args.seed + shard,
                        process=process,
                        factory=factory,
                        max_jobs=(
                            max(args.max_jobs // args.shards, 1)
                            if args.max_jobs
                            else None
                        ),
                        max_slots=args.max_slots or None,
                        budget=budget,
                        jammer=jammer,
                        faults=plan,
                        watchdog=watchdog,
                    )
                    for shard in range(args.shards)
                ]
                merged, _ = run_stream_shards(
                    specs, processes=args.processes, progress=tracker
                )
            report.add(rho, merged)
            if trk is not None:
                for key in (
                    "jobs_released",
                    "jobs_succeeded",
                    "jobs_missed",
                    "jobs_shed",
                ):
                    trk.counters[key] = (
                        trk.counters.get(key, 0) + getattr(merged, key)
                    )
                trk.counters["peak_live"] = max(
                    trk.counters.get("peak_live", 0), merged.peak_live
                )
                if merged.watchdog is not None:
                    trk.watchdog_trips += 1
            line = (
                f"rho={rho:g}: released={merged.jobs_released} "
                f"succeeded={merged.jobs_succeeded} "
                f"missed={merged.jobs_missed} "
                f"shed={merged.jobs_shed} peak_live={merged.peak_live}"
            )
            if merged.watchdog is not None:
                line += f" [watchdog: {merged.watchdog.reason}]"
            if merged.resumed_at_slot >= 0:
                line += f" [resumed at slot {merged.resumed_at_slot}]"
            print(line)
    except BaseException:
        _finish_obs(tracker, server, status="failed")
        raise
    _finish_obs(tracker, server)

    print()
    print(report.table())
    if args.report:
        report.save(args.report)
        print(f"wrote report to {args.report}")
        if trk is not None:
            trk.artifact(args.report)
    if trk is not None and args.checkpoint:
        trk.artifact(args.checkpoint)

    if args.rss_budget_mb > 0:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        peak_mb = peak_kb / 1024.0
        print(f"peak RSS: {peak_mb:.1f} MiB (budget {args.rss_budget_mb} MiB)")
        if peak_mb > args.rss_budget_mb:
            print("FAIL: peak RSS exceeded the configured budget")
            return 1
    return 0


def _add_telemetry_flag(sp) -> None:
    sp.add_argument("--telemetry", default="", metavar="PATH",
                    help="write a telemetry JSONL artifact (metrics, "
                         "lifecycle events, spans) here; summarize it "
                         "with 'repro obs PATH'")


def _add_fastpath_flag(sp) -> None:
    sp.add_argument("--fastpath", default="auto",
                    choices=["auto", "on", "off"],
                    help="route qualifying runs through the vectorized "
                         "full-protocol kernels (auto: kernel when the "
                         "configuration qualifies, engine otherwise; "
                         "on: require a kernel; off: always the engine). "
                         "See docs/TUNING.md")


def _add_obs_flags(sp, heartbeat: bool = True) -> None:
    sp.add_argument("--ledger", nargs="?", const="default", default="",
                    metavar="PATH",
                    help="append one run record to a JSONL run ledger "
                         "(bare flag: $REPRO_LEDGER or .repro/ledger.jsonl; "
                         "inspect with 'repro runs list'). Observational: "
                         "never changes results or cache keys")
    if heartbeat:
        sp.add_argument("--heartbeat", default="", metavar="PATH",
                        help="write live progress snapshots (rate, ETA) "
                             "here; watch them with 'repro top'")
        sp.add_argument("--heartbeat-every", type=float, default=1.0,
                        help="heartbeat write cadence in seconds")
        sp.add_argument("--metrics-port", type=int, default=0,
                        help="serve Prometheus text metrics on "
                             "http://127.0.0.1:PORT/metrics for the "
                             "duration of the run (0 = off)")


def _add_perf_flags(sp) -> None:
    sp.add_argument("--processes", type=int, default=1,
                    help="worker processes for seed replication")
    sp.add_argument("--cache", default="", metavar="DIR",
                    help="cache results on disk: a directory, or 'default' "
                         "for $REPRO_CACHE_DIR / ~/.cache/repro")


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    p = argparse.ArgumentParser(
        prog="repro",
        description="Contention resolution with message deadlines (SPAA 2020)",
    )
    p.add_argument("--version", action="version",
                   version=f"%(prog)s {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    def add_common(sp):
        sp.add_argument("--workload", default="batch",
                        choices=list(registry.WORKLOADS))
        sp.add_argument("--n", type=int, default=8)
        sp.add_argument("--window", type=int, default=4096)
        sp.add_argument("--level", type=int, default=9)
        sp.add_argument("--gamma", type=float, default=0.02)
        sp.add_argument("--workload-seed", type=int, default=0)
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--jam", type=float, default=0.0,
                        help="stochastic jamming probability")
        sp.add_argument("--lam", type=int, default=1)
        sp.add_argument("--min-level", type=int, default=9)
        sp.add_argument("--pullback-exp", type=int, default=1)
        sp.add_argument("--slingshot-exp", type=int, default=2)

    sim = sub.add_parser("simulate", help="run one protocol on one workload")
    add_common(sim)
    sim.add_argument("--protocol", default="punctual",
                     choices=list(registry.PROTOCOLS))
    sim.add_argument("--fault", default="", metavar="FAMILY:SEVERITY",
                     help="inject a fault family at a severity in [0, 1], "
                          "e.g. jam:0.5, clock:0.25, jobs:0.4")
    sim.add_argument("--check-invariants", action="store_true",
                     help="audit every slot with the runtime invariant "
                          "checker (violations raise)")
    sim.add_argument("--trace", action="store_true")
    sim.add_argument("--require-success", type=float, default=0.0,
                     help="exit nonzero if the success rate is below this")
    sim.add_argument("--export", default="",
                     help="write per-job outcomes to this CSV")
    sim.add_argument("--export-trace", default="",
                     help="write the per-slot trace to this CSV")
    _add_fastpath_flag(sim)
    _add_telemetry_flag(sim)
    _add_obs_flags(sim, heartbeat=False)
    sim.set_defaults(func=cmd_simulate)

    swp = sub.add_parser(
        "sweep", help="sweep one workload parameter for one protocol"
    )
    add_common(swp)
    swp.add_argument("--protocol", default="punctual",
                     choices=list(registry.PROTOCOLS))
    swp.add_argument("--param", default="n",
                     choices=["n", "window", "gamma", "level"])
    swp.add_argument("--values", required=True,
                     help="comma-separated values, e.g. 4,8,16")
    swp.add_argument("--seeds", type=int, default=3)
    _add_perf_flags(swp)
    _add_fastpath_flag(swp)
    _add_telemetry_flag(swp)
    _add_obs_flags(swp)
    swp.set_defaults(func=cmd_sweep)

    cmp_ = sub.add_parser("compare", help="run every protocol on one workload")
    add_common(cmp_)
    cmp_.add_argument("--seeds", type=int, default=3)
    _add_perf_flags(cmp_)
    _add_telemetry_flag(cmp_)
    _add_obs_flags(cmp_, heartbeat=False)
    cmp_.set_defaults(func=cmd_compare)

    rob = sub.add_parser(
        "robustness",
        help="sweep fault severity per family; print degradation profiles",
    )
    add_common(rob)
    rob.add_argument("--protocols", default="uniform,aligned,punctual",
                     help="comma-separated protocol names to profile")
    rob.add_argument("--families", default="jam,rate,feedback,clock,jobs",
                     help="comma-separated fault families "
                          "(jam, rate, burst, feedback, clock, jobs)")
    rob.add_argument("--severities", default="0,0.1,0.25,0.5,0.75",
                     help="comma-separated severity ladder in [0, 1]; "
                          "0.5 lands on the Theorem-14 jamming boundary")
    rob.add_argument("--seeds", type=int, default=5)
    rob.add_argument("--retries", type=int, default=0,
                     help="transient-failure retries per cell")
    rob.add_argument("--no-invariants", action="store_true",
                     help="skip the runtime invariant checker")
    rob.add_argument("--smoke", action="store_true",
                     help="fast CI chaos smoke: ALIGNED under a budgeted "
                          "adversary with the invariant checker on")
    _add_perf_flags(rob)
    _add_telemetry_flag(rob)
    rob.set_defaults(func=cmd_robustness)

    cert = sub.add_parser(
        "certify",
        help="bisect empirical breaking points per adversary family",
    )
    add_common(cert)
    # Calibrated certification workload: small enough that the cliff
    # sits inside [0, 1] and sharp enough that the jam family crosses
    # the target within +-0.05 of the Theorem-14 boundary.
    cert.set_defaults(n=12, window=1024, min_level=8)
    cert.add_argument("--protocols", default="punctual",
                      help="comma-separated protocol names to certify")
    cert.add_argument("--families", default="jam,rate,burst,reactive,"
                      "struct-control,struct-delivery,assassin,banked",
                      help="comma-separated adversary families (oblivious: "
                           "jam, rate, burst; reactive: reactive, "
                           "struct-control, struct-delivery, assassin, "
                           "banked)")
    cert.add_argument("--seeds", type=int, default=30,
                      help="Monte-Carlo replication per probed severity")
    cert.add_argument("--target", type=float, default=0.9,
                      help="success rate defining 'broken'")
    cert.add_argument("--tol", type=float, default=0.02,
                      help="bisection bracket width")
    cert.add_argument("--retries", type=int, default=0,
                      help="transient-failure retries per probe")
    cert.add_argument("--artifact", default="", metavar="PATH",
                      help="write the frontier as JSONL here")
    cert.add_argument("--min-jam-threshold", type=float, default=0.4,
                      help="exit nonzero if punctual's stochastic threshold "
                           "falls below this (0 disables the gate)")
    cert.add_argument("--smoke", action="store_true",
                      help="nightly CI smoke: coarse ladder, jam + two "
                           "reactive families, hard gates")
    _add_perf_flags(cert)
    _add_fastpath_flag(cert)
    _add_telemetry_flag(cert)
    _add_obs_flags(cert)
    cert.set_defaults(func=cmd_certify)

    fro = sub.add_parser(
        "frontier",
        help="deadline-miss x energy frontier under identical jam budgets",
    )
    add_common(fro)
    fro.add_argument("--protocols",
                     default="punctual,uniform,beb,sawtooth,soft,slowfb,nocd",
                     help="comma-separated protocol names to place on the "
                          "frontier")
    fro.add_argument("--budgets", default="0,0.25",
                     help="comma-separated oblivious jamming rates; every "
                          "protocol faces each budget with identical seeds")
    fro.add_argument("--seeds", type=int, default=16,
                     help="Monte-Carlo replication per (protocol, budget)")
    fro.add_argument("--retries", type=int, default=0,
                     help="transient-failure retries per cell")
    fro.add_argument("--artifact", default="", metavar="PATH",
                     help="write the frontier points as JSONL here")
    _add_perf_flags(fro)
    _add_telemetry_flag(fro)
    fro.set_defaults(func=cmd_frontier)

    stm = sub.add_parser(
        "stream",
        help="open-arrival streaming runs: sustained load, bounded memory",
    )
    add_common(stm)
    stm.add_argument("--protocol", default="sawtooth",
                     choices=list(registry.STREAM_PROTOCOLS),
                     help="per-job protocol (instance-level protocols like "
                          "edf need the full workload and cannot stream)")
    stm.add_argument("--arrivals", default="poisson",
                     choices=["poisson", "bursty", "diurnal"])
    stm.add_argument("--rho", default="0.1",
                     help="offered load(s), jobs/slot; comma-separated "
                          "values sweep the sustained-load curve")
    stm.add_argument("--windows", default="16,64,256",
                     help="comma-separated window-size menu")
    stm.add_argument("--weights", default="",
                     help="comma-separated window weights (default uniform)")
    stm.add_argument("--p-enter", type=float, default=0.005,
                     help="bursty: per-slot probability of entering a burst")
    stm.add_argument("--p-exit", type=float, default=0.05,
                     help="bursty: per-slot probability of leaving a burst")
    stm.add_argument("--amplitude", type=float, default=0.5,
                     help="diurnal: modulation amplitude in [0, 1]")
    stm.add_argument("--period", type=int, default=4096,
                     help="diurnal: modulation period in slots")
    stm.add_argument("--max-jobs", type=int, default=0,
                     help="stop releasing after this many jobs (0 = off)")
    stm.add_argument("--max-slots", type=int, default=0,
                     help="stop releasing at this slot (0 = off)")
    stm.add_argument("--max-live", type=int, default=0,
                     help="hard live-set budget (0 = unbounded)")
    stm.add_argument("--policy", default="shed-newest",
                     choices=["shed-newest", "shed-loosest-deadline", "block"],
                     help="admission control when the live set is full")
    stm.add_argument("--queue-capacity", type=int, default=0,
                     help="block policy: FIFO capacity (default max-live)")
    stm.add_argument("--fault", default="", metavar="FAMILY:SEVERITY",
                     help="inject a fault family at a severity in [0, 1], "
                          "e.g. feedback:0.5, clock:0.25, jobs:0.4")
    stm.add_argument("--checkpoint", default="", metavar="PATH",
                     help="periodically snapshot resumable state here "
                          "(single run only)")
    stm.add_argument("--checkpoint-every", type=int, default=50_000,
                     help="checkpoint cadence in simulated slots")
    stm.add_argument("--resume", action="store_true",
                     help="resume from --checkpoint instead of starting fresh")
    stm.add_argument("--shards", type=int, default=1,
                     help="partition the run across this many seeds")
    stm.add_argument("--watchdog-seconds", type=float, default=0.0,
                     help="cancel a run after this much wall-clock time")
    stm.add_argument("--stall-factor", type=float, default=0.0,
                     help="cancel after stall-factor * max-window slots "
                          "with live jobs and no delivery")
    stm.add_argument("--report", default="", metavar="PATH",
                     help="write the sustained-load report as JSON here")
    stm.add_argument("--rss-budget-mb", type=float, default=0.0,
                     help="exit nonzero if peak RSS exceeds this many MiB "
                          "(the CI stream-smoke gate)")
    _add_perf_flags(stm)
    _add_obs_flags(stm)
    stm.set_defaults(func=cmd_stream)

    ver = sub.add_parser(
        "verify",
        help="run the differential / metamorphic / determinism battery",
    )
    ver.add_argument("--smoke", action="store_true",
                     help="CI profile: fast corpus subset, one subprocess "
                          "replay; finishes in well under a minute")
    ver.add_argument("--cases", default="", metavar="NAMES",
                     help="comma-separated corpus case names to run "
                          "(default: the whole corpus, or the smoke subset)")
    ver.add_argument("--artifact", default="", metavar="PATH",
                     help="write the JSONL discrepancy artifact here "
                          "(telemetry format; summarize with 'repro obs')")
    ver.add_argument("--progress", action="store_true",
                     help="print one line per completed stage")
    _add_obs_flags(ver, heartbeat=False)
    ver.set_defaults(func=cmd_verify)

    obs = sub.add_parser(
        "obs", help="summarize telemetry artifacts written by --telemetry"
    )
    obs.add_argument("artifacts", nargs="+",
                     help="telemetry JSONL path(s) to summarize")
    obs.add_argument("--json", action="store_true",
                     help="emit the structured summary as JSON")
    obs.set_defaults(func=cmd_obs)

    runs = sub.add_parser(
        "runs", help="inspect the run ledger written by --ledger"
    )
    runs_sub = runs.add_subparsers(dest="runs_cmd", required=True)

    def _runs_common(sp):
        sp.add_argument("--ledger", default="", metavar="PATH",
                        help="ledger path (default: $REPRO_LEDGER or "
                             ".repro/ledger.jsonl)")
        sp.add_argument("--json", action="store_true",
                        help="emit JSON instead of a table")

    runs_list = runs_sub.add_parser("list", help="one line per run")
    _runs_common(runs_list)
    runs_show = runs_sub.add_parser(
        "show", help="full record for one run (id prefixes ok)"
    )
    runs_show.add_argument("run_id")
    _runs_common(runs_show)
    runs_cmp = runs_sub.add_parser(
        "compare", help="diff two runs' configs, versions, and counters"
    )
    runs_cmp.add_argument("a")
    runs_cmp.add_argument("b")
    _runs_common(runs_cmp)
    runs.set_defaults(func=cmd_runs)

    camp = sub.add_parser(
        "campaign",
        help="declarative experiment campaigns: plan, run, resume, inspect",
    )
    camp_sub = camp.add_subparsers(dest="campaign_cmd", required=True)

    def _camp_common(sp):
        sp.add_argument("spec",
                        help="campaign spec file (.yaml/.yml or .json)")
        sp.add_argument("--json", action="store_true",
                        help="emit strict JSON (non-finite floats "
                             "become null)")

    camp_run = camp_sub.add_parser(
        "run", help="execute the missing cells (resumable, idempotent)"
    )
    _camp_common(camp_run)
    camp_run.add_argument("--dry-run", action="store_true",
                          help="plan only: classify cells and predict "
                               "cache hits/misses, execute nothing")
    camp_res = camp_sub.add_parser(
        "resume",
        help="continue an interrupted campaign (requires existing state)",
    )
    _camp_common(camp_res)
    camp_res.add_argument("--dry-run", action="store_true",
                          help="plan only: show what a resume would do")
    camp_st = camp_sub.add_parser(
        "status", help="cell counts from the durable state file"
    )
    _camp_common(camp_st)
    camp_man = camp_sub.add_parser(
        "manifest",
        help="one row per cell: status, label, predicted cache, key",
    )
    _camp_common(camp_man)
    camp.set_defaults(func=cmd_campaign)

    top = sub.add_parser(
        "top", help="show live runs from heartbeat files"
    )
    top.add_argument("paths", nargs="*",
                     help="heartbeat files or directories to scan "
                          "(default: .repro)")
    top.add_argument("--json", action="store_true",
                     help="emit raw snapshots as JSON")
    top.set_defaults(func=cmd_top)

    perf = sub.add_parser(
        "perf",
        help="run the perf smoke suite, append the trajectory, "
             "flag regressions",
    )
    perf.add_argument("--smoke", action="store_true",
                      help="the CI smoke suite (currently the only suite; "
                           "flag kept for forward compatibility)")
    perf.add_argument("--bench", default="BENCH_engine.json", metavar="PATH",
                      help="trajectory file to read and append")
    perf.add_argument("--repeats", type=int, default=3,
                      help="timing repeats per suite label")
    perf.add_argument("--window", type=int, default=20,
                      help="history entries considered for the trend")
    perf.add_argument("--note", default="",
                      help="free-form note stored with the history entry")
    perf.add_argument("--no-append", action="store_true",
                      help="measure and judge only; do not grow the history")
    perf.add_argument("--no-gate", action="store_true",
                      help="report regressions but always exit zero")
    perf.add_argument("--json", action="store_true",
                      help="emit measurements and verdicts as JSON")
    perf.set_defaults(func=cmd_perf)

    feas = sub.add_parser("feasibility", help="report a workload's slack")
    add_common(feas)
    feas.set_defaults(func=cmd_feasibility)

    sched = sub.add_parser("schedule", help="render a Figure-1 schedule")
    sched.add_argument("--small-level", type=int, default=9)
    sched.add_argument("--width", type=int, default=160)
    sched.add_argument("--seed", type=int, default=0)
    sched.set_defaults(func=cmd_schedule)

    rep = sub.add_parser(
        "report", help="assemble benchmark artefacts into one markdown file"
    )
    rep.add_argument("--results-dir", default="benchmarks/results")
    rep.add_argument("--output", default="", help="write here instead of stdout")
    rep.set_defaults(func=cmd_report)
    return p


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
