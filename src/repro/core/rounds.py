"""PUNCTUAL's round structure and distributed synchronization (Section 4).

Time is grouped into **rounds** of ten slots::

    index: 0      1      2      3           4      5        6      7         8      9
    role:  START  START  GUARD  TIMEKEEPER  GUARD  ALIGNED  GUARD  ELECTION  GUARD  ANARCHIST

Every live synchronized job broadcasts a start message in both START
slots (they normally collide — by design, the round opening is simply
"two busy slots").  Guards are always silent; each useful slot carries at
most one protocol's traffic.

**Synchronization.**  The paper's rule — wait for two consecutive busy
slots, give up after 10 slots and broadcast your own starts — has two
races at the edges (an anarchist transmission in slot 9 abuts the next
round's starts; two announcers can offset by one slot).  We implement a
slightly strengthened, still O(1), rule and document the deviation:

* a round start is detected at ``i`` iff ``busy(i) ∧ busy(i+1) ∧
  silent(i+2)`` — slot 2 is a guard, so a true round start always
  matches, while the anarchist/start wrap (busy 9, busy 0, busy 1) and
  any isolated busy slot never do;
* the listening budget is 13 observed slots (one full round plus the
  detection lag), not 10;
* a job only *begins* announcing if the most recently observed slot was
  silent; otherwise it keeps listening — this serializes near-simultaneous
  announcers instead of letting them adopt origins one slot apart.

Announcing means transmitting start messages in the next two slots and
declaring the first of them the round origin, regardless of collisions
(colliding starts still read as two busy slots to everyone else, which
is all that matters).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from repro.channel.feedback import Feedback, Observation
from repro.channel.messages import Message, StartMessage
from repro.errors import ProtocolViolationError

__all__ = ["SlotRole", "ROUND_LENGTH", "ROLE_OF_INDEX", "RoundSynchronizer"]

ROUND_LENGTH = 10

#: Number of slots a job listens for an existing round before announcing.
LISTEN_BUDGET = 13


class SlotRole(enum.Enum):
    """The purpose of one slot within a round."""

    START = "start"
    GUARD = "guard"
    TIMEKEEPER = "timekeeper"
    ALIGNED = "aligned"
    ELECTION = "election"
    ANARCHIST = "anarchist"


ROLE_OF_INDEX = (
    SlotRole.START,
    SlotRole.START,
    SlotRole.GUARD,
    SlotRole.TIMEKEEPER,
    SlotRole.GUARD,
    SlotRole.ALIGNED,
    SlotRole.GUARD,
    SlotRole.ELECTION,
    SlotRole.GUARD,
    SlotRole.ANARCHIST,
)


class RoundSynchronizer:
    """One job's view of the round timeline.

    Drive it like a protocol: ``maybe_transmit(t)`` inside the owner's
    ``act`` (returns a start message while announcing), then
    ``observe(t, obs)``.  Once :attr:`synced` is True, :meth:`role` and
    :meth:`round_index` are available; the owner is responsible for
    broadcasting the per-round start messages from then on (they are part
    of the protocol proper, not of synchronization).
    """

    def __init__(self, job_id: int) -> None:
        self.job_id = job_id
        self.synced = False
        self.origin: Optional[int] = None  # slot index of a round start
        self._recent: Deque[tuple[int, bool]] = deque(maxlen=3)  # (slot, busy)
        self._listened = 0
        self._announcing = False
        self._announce_first: Optional[int] = None

    # -- queries -------------------------------------------------------------

    def slot_index(self, t: int) -> int:
        """Position of slot ``t`` within its round (0..9)."""
        if not self.synced or self.origin is None:
            raise ProtocolViolationError("slot_index before synchronization")
        return (t - self.origin) % ROUND_LENGTH

    def role(self, t: int) -> SlotRole:
        """The role of slot ``t``."""
        return ROLE_OF_INDEX[self.slot_index(t)]

    def round_index(self, t: int) -> int:
        """The (local) round counter containing slot ``t``.

        Counted from this job's origin; only differences are meaningful
        across jobs, which is why deadlines travel as *remaining rounds*.
        """
        if not self.synced or self.origin is None:
            raise ProtocolViolationError("round_index before synchronization")
        return (t - self.origin) // ROUND_LENGTH

    def next_slot_of_role(self, t: int, role: SlotRole) -> int:
        """The earliest slot ``>= t`` whose role is ``role``."""
        for d in range(ROUND_LENGTH):
            if self.role(t + d) is role:
                return t + d
        raise AssertionError("every role occurs within one round")

    # -- drive ----------------------------------------------------------------

    def maybe_transmit(self, t: int) -> Optional[Message]:
        """The synchronizer's own action for slot ``t`` (pre-sync only)."""
        if self.synced:
            return None
        if self._announcing:
            assert self._announce_first is not None
            if t == self._announce_first or t == self._announce_first + 1:
                return StartMessage(self.job_id)
            return None
        # Still listening: decide whether to start announcing *next* slot.
        if self._listened >= LISTEN_BUDGET:
            last_busy = self._recent[-1][1] if self._recent else False
            if not last_busy:
                self._announcing = True
                self._announce_first = t
                return StartMessage(self.job_id)
        return None

    def observe(self, t: int, obs: Observation) -> None:
        """Digest one slot's feedback; may flip :attr:`synced`."""
        if self.synced:
            return
        busy = obs.feedback.is_busy
        self._recent.append((t, busy))
        self._listened += 1
        if self._announcing:
            assert self._announce_first is not None
            if t >= self._announce_first + 1:
                self.synced = True
                self.origin = self._announce_first
            return
        # pattern detection: busy(i), busy(i+1), silent(i+2)
        if len(self._recent) == 3:
            (t0, b0), (t1, b1), (t2, b2) = self._recent
            if t1 == t0 + 1 and t2 == t1 + 1 and b0 and b1 and not b2:
                self.synced = True
                self.origin = t0
