"""The ALIGNED protocol (Section 3) for power-of-2-aligned windows.

Each job runs three nested layers:

1. a :class:`~repro.core.schedule.PeckingOrderView` deciding which class
   is active each slot (Lemma 7 agreement);
2. when its own class is active, the class algorithm: the size-estimation
   protocol (ping with probability ``1/2^i`` in phase i) followed by the
   batch broadcast protocol (one uniformly random slot per subphase);
3. termination: succeed on own delivery, give up if the class run
   completes without one or is truncated by the window end (the engine
   enforces the latter).

:class:`AlignedMachine` contains all the logic against an abstract slot
index so PUNCTUAL can re-run it in round-indexed *virtual* time on the
aligned slots; :class:`AlignedProtocol` adapts it to the real slot engine
one-to-one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, EstimateReport, Message
from repro.core.schedule import BroadcastStep, EstimationStep, PeckingOrderView
from repro.errors import InvalidInstanceError
from repro.params import AlignedParams
from repro.sim.job import Job, is_power_of_two, window_class
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["AlignedMachine", "AlignedProtocol", "aligned_factory"]


class AlignedMachine:
    """Per-job ALIGNED state machine over an abstract slot timeline.

    Parameters
    ----------
    job_id:
        Identity stamped on outgoing messages.
    level:
        The job's class ℓ (window size ``2^ℓ`` in machine slots).
    params:
        λ, τ and the schedule's ``min_level``.
    rng:
        The job's private random stream.

    The machine must be driven for *every* consecutive slot from its
    ``begin`` slot until it reports :attr:`finished` (or its window ends):
    ``act(v)`` then ``observe(v, obs)``.
    """

    def __init__(
        self,
        job_id: int,
        level: int,
        params: AlignedParams,
        rng: np.random.Generator,
    ) -> None:
        self.job_id = job_id
        self.level = level
        self.params = params
        self.rng = rng
        self.view: Optional[PeckingOrderView] = None
        self.succeeded = False
        self.gave_up = False
        self.last_p = 0.0
        self._my_subphase_slot: int = -1  # drawn at each subphase start
        self._transmitting = False
        # Optional telemetry sink (repro.obs.events.EventSink); the
        # embedding protocol propagates it.  Once-per-lifecycle flags keep
        # phase events from repeating every slot.
        self.events = None
        self._ev_agreed = False
        self._ev_estimating = False
        self._ev_broadcasting = False

    # -- lifecycle -----------------------------------------------------------

    def begin(self, v: int) -> None:
        """Start at machine slot ``v`` (must be a multiple of ``2^level``)."""
        self.view = PeckingOrderView(self.params, self.level, v)

    @property
    def finished(self) -> bool:
        """True once the job has succeeded or given up."""
        return self.succeeded or self.gave_up

    # -- slot protocol ---------------------------------------------------------

    def act(self, v: int) -> Optional[Message]:
        """Decide this machine-slot's action; sets :attr:`last_p`."""
        assert self.view is not None, "act() before begin()"
        active = self.view.on_slot_start(v)
        self.last_p = 0.0
        self._transmitting = False
        if self.finished:
            return None
        my_run = self.view.run_of(self.level)
        if active is None or my_run.done:
            # All tracked classes done but I never delivered: the class
            # algorithm ran to completion without me — give up (the
            # paper's jobs only terminate on success or truncation, and a
            # completed run leaves no further steps to take).
            if my_run.done and not self.succeeded:
                self.gave_up = True
                if self.events is not None:
                    self.events.emit(
                        "aligned.exhausted", v, self.job_id, level=self.level
                    )
            return None
        if active != self.level:
            return None  # a smaller class holds the channel; wait.
        if self.events is not None and not self._ev_agreed:
            self._ev_agreed = True
            self.events.emit(
                "aligned.class_agreement", v, self.job_id, level=self.level
            )

        step = my_run.next_step()
        if isinstance(step, EstimationStep):
            if self.events is not None and not self._ev_estimating:
                self._ev_estimating = True
                self.events.emit(
                    "aligned.estimation_started", v, self.job_id,
                    level=self.level,
                )
            p = 1.0 / (1 << step.phase)
            self.last_p = p
            if self.rng.random() < p:
                self._transmitting = True
                return EstimateReport(self.job_id, step.phase)
            return None
        assert isinstance(step, BroadcastStep)
        if self.events is not None and not self._ev_broadcasting:
            self._ev_broadcasting = True
            if self._ev_estimating:
                self.events.emit(
                    "aligned.estimation_converged", v, self.job_id,
                    level=self.level,
                )
            self.events.emit(
                "aligned.broadcast_started", v, self.job_id, level=self.level
            )
        pos = step.position
        if pos.subphase_start:
            self._my_subphase_slot = int(self.rng.integers(pos.length))
        self.last_p = 1.0 / pos.length
        if pos.offset == self._my_subphase_slot:
            self._transmitting = True
            return DataMessage(self.job_id)
        return None

    def observe(self, v: int, obs: Observation) -> None:
        """Feed the slot's channel outcome; advances the shared view."""
        assert self.view is not None, "observe() before begin()"
        if obs.own_success and isinstance(obs.message, DataMessage):
            self.succeeded = True
        self.view.on_slot_end(v, obs.feedback.name == "SUCCESS")


class AlignedProtocol(Protocol):
    """ALIGNED adapted to the real-time slot engine.

    The aligned special case grants a shared slot index (alignment itself
    synchronizes jobs), so this protocol legitimately uses the absolute
    slot ``t``.
    """

    def __init__(self, ctx: ProtocolContext, params: AlignedParams) -> None:
        super().__init__(ctx)
        if not is_power_of_two(ctx.window):
            raise InvalidInstanceError(
                f"ALIGNED requires power-of-two windows, got {ctx.window}"
            )
        self.params = params
        self.machine = AlignedMachine(
            ctx.job_id, window_class(ctx.window), params, ctx.rng
        )
        self.last_p = 0.0

    def bind_telemetry(self, sink) -> None:
        super().bind_telemetry(sink)
        self.machine.events = sink

    def on_begin(self, slot: int) -> None:
        if slot % self.ctx.window != 0:
            raise InvalidInstanceError(
                f"job {self.ctx.job_id} released at {slot}, not aligned to "
                f"window {self.ctx.window}"
            )
        self.machine.begin(slot)

    def on_act(self, slot: int) -> Optional[Message]:
        msg = self.machine.act(slot)
        self.last_p = self.machine.last_p
        return msg

    def on_observe(self, slot: int, obs: Observation) -> None:
        self.machine.observe(slot, obs)
        if self.machine.gave_up:
            self.gave_up = True

    @property
    def done(self) -> bool:
        return self.succeeded or self.gave_up


def aligned_factory(params: AlignedParams):
    """A :data:`~repro.sim.engine.ProtocolFactory` running ALIGNED."""

    def make(job: Job, rng: np.random.Generator) -> AlignedProtocol:
        return AlignedProtocol(ProtocolContext.for_job(job, rng), params)

    # Fastpath marker (repro.fastpath.batched.plan_fastpath): function
    # attributes are not part of stable_digest's callable encoding, so
    # attaching them leaves every existing cache key untouched.
    make.fastpath_kind = "aligned"
    make.fastpath_params = params
    return make
