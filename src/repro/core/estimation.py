"""The size-estimation protocol of Section 3 ("Size-estimation protocol").

For job class ℓ the protocol uses ``T_ℓ = λℓ²`` active steps, divided into
ℓ phases of λℓ steps.  During each step of the *i*-th phase (1-indexed),
every job in the class transmits a control message with probability
``1/2^i``; everyone counts successful transmissions per phase.  When all
phases are complete, the winning phase ``j`` (most successes; ties broken
toward the smallest index for determinism) yields the estimate
``n_ℓ = τ · 2^j`` — biased upward by τ so it is an over-estimate whp
(Lemma 8: ``2n̂ ≤ n_ℓ ≤ τ²n̂`` with probability ``1 − 1/w^Θ(λ)``).

Deterministic resolution rules the paper leaves implicit:

* If *no* phase recorded a success, the estimate resolves to **0**,
  signalling an (almost surely) empty class, and the broadcast stage is
  skipped.  This is what lets empty aligned windows cost only their λℓ²
  estimation steps in the pecking-order schedule (the ``Σℓ²`` term of
  Lemma 12).
* Estimates are capped at the window size ``2^ℓ`` ("any estimate is at
  most w̄" — used in Lemma 11); the cap keeps the estimate a power of two.
* A truncated estimation resolves to 0 (stated explicitly in the paper).

This module is pure bookkeeping — it holds no randomness.  The per-job
transmit decision (flip a ``1/2^i`` coin) lives with the protocols; the
tally lives here so the stepwise engine and the vectorized fast path share
one implementation of the estimate rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import InvalidParameterError, ProtocolViolationError
from repro.params import AlignedParams

__all__ = [
    "estimation_length",
    "phase_of_step",
    "phase_probability",
    "resolve_estimate",
    "EstimationTally",
]


def estimation_length(level: int, lam: int) -> int:
    """Total active steps of the estimation protocol: ``T_ℓ = λℓ²``."""
    if level < 0:
        raise InvalidParameterError(f"level must be >= 0, got {level}")
    return lam * level * level


def phase_of_step(level: int, lam: int, step: int) -> int:
    """The 1-indexed phase containing active step ``step`` (0-indexed).

    Phases ``1..ℓ`` each span ``λℓ`` steps.
    """
    total = estimation_length(level, lam)
    if not 0 <= step < total:
        raise InvalidParameterError(
            f"step {step} outside estimation of length {total}"
        )
    return step // (lam * level) + 1


def phase_probability(phase: int) -> float:
    """Per-slot transmit probability in phase ``i``: ``1/2^i``."""
    if phase < 1:
        raise InvalidParameterError(f"phase must be >= 1, got {phase}")
    return 1.0 / (1 << phase)


def resolve_estimate(successes: List[int], tau: int, level: int) -> int:
    """Turn per-phase success counts into the estimate ``n_ℓ``.

    Parameters
    ----------
    successes:
        One count per phase (length ℓ; empty for ℓ = 0).
    tau:
        The over-estimation factor (power of two).
    level:
        The job class; the estimate is capped at ``2^level``.

    Returns
    -------
    int
        ``min(τ·2^j, 2^ℓ)`` for the winning phase ``j``, or 0 when every
        phase is silent.
    """
    if len(successes) != level:
        raise InvalidParameterError(
            f"expected {level} phase counts, got {len(successes)}"
        )
    if not successes or max(successes) == 0:
        return 0
    best = max(successes)
    j = successes.index(best) + 1  # smallest phase index among maxima
    return min(tau * (1 << j), 1 << level)


@dataclass
class EstimationTally:
    """Running success counts for one class's estimation run.

    Every live job keeps one (identical) tally per tracked class; it is
    advanced once per active estimation step with the slot's feedback.
    """

    level: int
    lam: int
    counts: List[int] = field(default_factory=list)
    steps_seen: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * self.level

    @property
    def total_steps(self) -> int:
        return estimation_length(self.level, self.lam)

    @property
    def complete(self) -> bool:
        return self.steps_seen >= self.total_steps

    def current_phase(self) -> int:
        """The 1-indexed phase of the *next* step to be taken."""
        if self.complete:
            raise ProtocolViolationError("estimation already complete")
        return phase_of_step(self.level, self.lam, self.steps_seen)

    def record(self, success: bool) -> None:
        """Advance one active step with the slot's outcome."""
        if self.complete:
            raise ProtocolViolationError("record() after estimation completed")
        phase = self.current_phase()
        if success:
            self.counts[phase - 1] += 1
        self.steps_seen += 1

    def estimate(self, tau: int) -> int:
        """The resolved estimate; only valid once complete."""
        if not self.complete:
            raise ProtocolViolationError("estimate() before completion")
        return resolve_estimate(self.counts, tau, self.level)
