"""Window trimming (Section 4, "Trimming down windows"; Lemma 15).

``trimmed(W)`` is a largest power-of-2-aligned window contained in the
arbitrary window ``W``; the paper notes ``|trimmed(W)| >= |W|/4`` and
(citing the reallocation papers [11, 12]) that trimming a 4γ-slack
feasible job set leaves a γ-slack feasible one.  PUNCTUAL's followers
trim their windows against the leader's announced global time and then
run ALIGNED inside the trimmed windows.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import InvalidInstanceError
from repro.sim.instance import Instance
from repro.sim.job import Job

__all__ = ["trimmed_window", "trimmed_job", "trimmed_instance"]


def trimmed_window(release: int, deadline: int) -> Tuple[int, int]:
    """A largest aligned window inside ``[release, deadline)``.

    Returns the aligned ``(start, end)`` with ``end - start = 2^k`` for
    the largest feasible ``k``; among equals the earliest is chosen
    (the paper allows an arbitrary choice).  Guarantees
    ``end - start >= (deadline - release) / 4`` for windows of size >= 1.

    Raises
    ------
    InvalidInstanceError
        If the window is empty (no aligned window of size >= 1 fits only
        when ``deadline <= release``).
    """
    w = deadline - release
    if w <= 0:
        raise InvalidInstanceError(f"empty window [{release}, {deadline})")
    k = max(w.bit_length() - 1, 0)
    while k >= 0:
        size = 1 << k
        a = -(-release // size)  # ceil division
        if (a + 1) * size <= deadline:
            return (a * size, (a + 1) * size)
        k -= 1
    # k = 0 always fits: size 1, a = release, release + 1 <= deadline.
    raise AssertionError("unreachable: unit window always fits")


def trimmed_job(job: Job) -> Job:
    """The job with its window replaced by ``trimmed(W)``."""
    s, e = trimmed_window(job.release, job.deadline)
    return job.with_window(s, e)


def trimmed_instance(instance: Instance) -> Instance:
    """``trimmed(J)``: every job's window trimmed (Lemma 15's operand).

    The result is always power-of-2 aligned; if the input was 4γ-slack
    feasible the output is γ-slack feasible (checked statistically by
    tests, exactly as Lemma 15 promises).
    """
    return Instance(trimmed_job(j) for j in instance.jobs)
