"""The batch broadcast ("back-on") protocol of Section 3 ("Broadcast").

Given the class ℓ and the (power-of-two) estimate ``n_ℓ``, the broadcast
stage is a fixed schedule of phases:

* for ``i = 0 .. log₂(n_ℓ) − 1``, phase *i* has length ``λ·n_ℓ/2^i``;
* the final ℓ phases each have length ``λℓ``.

Each phase of length ``λX`` is split into λ **subphases** of length X.
During a subphase, every still-live job picks one uniformly random slot of
the subphase and transmits its data message there; a success terminates
the job.  The halving phases thin the population geometrically, and the
flat ``λℓ`` tail converts the final stragglers' failure probability to
``1/w^Θ(λ)`` (Lemma 13).

Total broadcast length is ``λ(2n_ℓ − 2 + ℓ²)``, so estimation + broadcast
is ``2λ(ℓ² + n_ℓ − 1)`` active steps — Lemma 6, verified exactly by tests
and by experiment E5.

The :class:`BroadcastSchedule` is pure arithmetic shared by the stepwise
protocols and the vectorized fast path.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import InvalidParameterError
from repro.sim.job import is_power_of_two

__all__ = ["broadcast_length", "total_active_steps", "BroadcastSchedule", "SubphasePosition"]


def broadcast_length(level: int, estimate: int, lam: int) -> int:
    """Total steps of the broadcast stage: ``λ(2n − 2 + ℓ²)``; 0 if n = 0."""
    if estimate == 0:
        return 0
    if estimate < 2 or not is_power_of_two(estimate):
        raise InvalidParameterError(
            f"estimate must be 0 or a power of two >= 2, got {estimate}"
        )
    return lam * (2 * estimate - 2 + level * level)


def total_active_steps(level: int, estimate: int, lam: int) -> int:
    """Lemma 6: estimation plus broadcast, ``2λ(ℓ² + n_ℓ − 1)`` steps.

    For an empty class (estimate 0) only the estimation's ``λℓ²`` steps
    are consumed.
    """
    est = lam * level * level
    if estimate == 0:
        return est
    return est + broadcast_length(level, estimate, lam)


@dataclass(frozen=True, slots=True)
class SubphasePosition:
    """Where one broadcast step falls in the phase/subphase structure.

    Attributes
    ----------
    phase:
        0-indexed phase number.
    subphase:
        0-indexed subphase within the phase (``0 .. λ-1``).
    length:
        The subphase length X (jobs draw a slot uniformly from ``[0, X)``).
    offset:
        This step's position within the subphase (``0 .. X-1``).
    """

    phase: int
    subphase: int
    length: int
    offset: int

    @property
    def subphase_start(self) -> bool:
        """True on the first step of a subphase (when jobs draw their slot)."""
        return self.offset == 0


class BroadcastSchedule:
    """The deterministic phase/subphase structure for one class run.

    Parameters
    ----------
    level:
        Job class ℓ.
    estimate:
        The (power-of-two, >= 2) estimate ``n_ℓ``; 0 yields an empty
        schedule.
    lam:
        The λ parameter.
    """

    def __init__(self, level: int, estimate: int, lam: int) -> None:
        if level < 0:
            raise InvalidParameterError(f"level must be >= 0, got {level}")
        if lam < 1:
            raise InvalidParameterError(f"lam must be >= 1, got {lam}")
        self.level = level
        self.estimate = estimate
        self.lam = lam
        self.subphase_lengths: List[int] = []
        if estimate:
            if estimate < 2 or not is_power_of_two(estimate):
                raise InvalidParameterError(
                    f"estimate must be 0 or a power of two >= 2, got {estimate}"
                )
            x = estimate
            while x >= 2:  # halving phases: X = n, n/2, ..., 2
                self.subphase_lengths.append(x)
                x //= 2
            self.subphase_lengths.extend([level] * level if level else [])
        # cumulative *step* boundaries: each entry above spans lam*X steps,
        # as X-length subphases repeated lam times.
        self._phase_starts: List[int] = [0]
        for x in self.subphase_lengths:
            self._phase_starts.append(self._phase_starts[-1] + lam * x)

    @classmethod
    def trivial(cls) -> "BroadcastSchedule":
        """A one-step schedule (single subphase of length 1).

        Used for the degenerate class ℓ = 0, whose window has a single
        slot: the only possible protocol is "transmit now".
        """
        sched = cls.__new__(cls)
        sched.level = 0
        sched.estimate = 0
        sched.lam = 1
        sched.subphase_lengths = [1]
        sched._phase_starts = [0, 1]
        return sched

    @property
    def n_phases(self) -> int:
        return len(self.subphase_lengths)

    @property
    def total_steps(self) -> int:
        """Total broadcast steps; equals :func:`broadcast_length`."""
        return self._phase_starts[-1]

    def position(self, step: int) -> SubphasePosition:
        """Locate broadcast step ``step`` (0-indexed) in the structure."""
        if not 0 <= step < self.total_steps:
            raise InvalidParameterError(
                f"step {step} outside broadcast of length {self.total_steps}"
            )
        phase = bisect_right(self._phase_starts, step) - 1
        within = step - self._phase_starts[phase]
        x = self.subphase_lengths[phase]
        return SubphasePosition(
            phase=phase,
            subphase=within // x,
            length=x,
            offset=within % x,
        )

    def phase_length(self, phase: int) -> int:
        """Length in steps of 0-indexed phase ``phase`` (``λ·X``)."""
        return self.lam * self.subphase_lengths[phase]
