"""PUNCTUAL — contention resolution with deadlines, general windows (Section 4).

The master per-job state machine of Figure 2:

* **SYNCING** — establish the round structure (``repro.core.rounds``).
* **WAIT_TK** — listen in one timekeeper slot: a leader whose deadline is
  at least mine ⇒ FOLLOW; otherwise SLINGSHOT.
* **SLINGSHOT (pullback)** — for ``λ·log^m(w)`` slots, transmit
  "I am the leader with deadline d" in each election slot with
  probability ``1/(w·log^k w)``; follow anyone (claimant or beacon) whose
  deadline is at least mine; my own successful claim makes me leader.
* **RECHECK_TK** — after the pullback, check the timekeeper once more: a
  leader with deadline ≥ d/2 ⇒ halve my deadline and FOLLOW; otherwise
  **ANARCHIST**: transmit my data in each anarchy slot with probability
  ``λ·log(w)/w`` for the rest of my window.
* **FOLLOW** — learn the global (virtual, round-indexed) time from the
  beacons, trim my remaining window to the largest aligned virtual
  window, and run ALIGNED (``repro.core.aligned.AlignedMachine``) in the
  aligned slots.
* **LEADER / HANDOVER** — beacon every timekeeper slot; abdicate with my
  data payload in the last timekeeper slot of my window; if deposed by a
  later-deadline claimant, hand over with my payload in the next
  timekeeper slot.

Every live synchronized job also broadcasts start messages in both START
slots of every round (round-keeping), and every job passively feeds the
:class:`~repro.core.leader.LeaderTracker` regardless of stage.

Deviations / resolutions of underspecified points are listed in
DESIGN.md §3; the notable ones: deadlines travel as *remaining rounds*;
a silent timekeeper slot means "no leader"; followers whose trimmed
virtual window is too small for the embedded ALIGNED schedule fall back
to the anarchist stage (the paper's regime of large ``w₀`` makes this
vacuous asymptotically, but a simulation must decide).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from repro.channel.feedback import Feedback, Observation
from repro.channel.messages import (
    DataMessage,
    LeaderClaim,
    Message,
    StartMessage,
    TimekeeperBeacon,
)
from repro.core.aligned import AlignedMachine
from repro.core.leader import LeaderTracker
from repro.core.rounds import ROUND_LENGTH, RoundSynchronizer, SlotRole
from repro.core.trimming import trimmed_window
from repro.params import PunctualParams
from repro.sim.job import Job, window_class
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["Stage", "PunctualProtocol", "punctual_factory"]


class Stage(enum.Enum):
    """PUNCTUAL's per-job stages."""

    SYNCING = "syncing"
    WAIT_TK = "wait_tk"
    SLINGSHOT = "slingshot"
    RECHECK_TK = "recheck_tk"
    FOLLOW = "follow"
    ANARCHIST = "anarchist"
    LEADER_PENDING = "leader_pending"
    LEADER = "leader"
    HANDOVER = "handover"
    FINISHED = "finished"


def _floor_pow2(x: int) -> int:
    """Largest power of two <= x (x >= 1)."""
    return 1 << (x.bit_length() - 1)


class PunctualProtocol(Protocol):
    """One job's PUNCTUAL state machine."""

    def __init__(self, ctx: ProtocolContext, params: PunctualParams) -> None:
        super().__init__(ctx)
        self.params = params
        self.sync = RoundSynchronizer(ctx.job_id)
        self.tracker = LeaderTracker()
        self.stage = Stage.SYNCING
        self.eff_window = _floor_pow2(ctx.window)
        self.eff_end: int = -1  # set at begin
        self.pullback_left = 0
        self.machine: Optional[AlignedMachine] = None
        self.trim: Optional[Tuple[int, int]] = None  # virtual [start, end)
        self._machine_offset: Optional[int] = None  # vtime offset at build
        self._machine_stepped = False
        self._machine_v = -1
        self._pending_skip = 0  # timekeeper slots to let pass before leading
        self._my_offset: Optional[int] = None  # my announced vtime offset
        self.last_p = 0.0

    # ------------------------------------------------------------------ utils

    def _local_round(self, t: int) -> int:
        return self.sync.round_index(t)

    def _remaining_rounds(self, t: int) -> int:
        """Complete rounds left inside my effective window."""
        return max(0, (self.eff_end - t) // ROUND_LENGTH)

    def _my_deadline_round(self, t: int) -> int:
        return self._local_round(t) + self._remaining_rounds(t)

    def _vnow(self, t: int) -> Optional[int]:
        off = self.tracker.vtime_offset
        if off is None:
            return None
        return self._local_round(t) + off

    # ------------------------------------------------------------------ act

    def on_begin(self, slot: int) -> None:
        self.eff_end = slot + self.eff_window

    def on_act(self, slot: int) -> Optional[Message]:
        self.last_p = 0.0
        self._machine_stepped = False
        if slot >= self.eff_end:
            # effective (rounded-down) deadline reached: stop interacting.
            self.gave_up = True
            return None
        if not self.sync.synced:
            return self.sync.maybe_transmit(slot)
        role = self.sync.role(slot)
        if role is SlotRole.START:
            return StartMessage(self.ctx.job_id)
        if role is SlotRole.GUARD:
            return None
        if role is SlotRole.TIMEKEEPER:
            return self._act_timekeeper(slot)
        if role is SlotRole.ALIGNED:
            return self._act_aligned(slot)
        if role is SlotRole.ELECTION:
            return self._act_election(slot)
        if role is SlotRole.ANARCHIST:
            return self._act_anarchist(slot)
        return None

    def _act_timekeeper(self, t: int) -> Optional[Message]:
        if self.stage is Stage.LEADER_PENDING:
            if self._pending_skip > 0:
                self._pending_skip -= 1
                return None
            self.stage = Stage.LEADER
            if self._my_offset is None:
                inherited = self.tracker.vtime_offset
                self._my_offset = inherited if inherited is not None else 0
        if self.stage is Stage.LEADER:
            assert self._my_offset is not None
            vtime = self._local_round(t) + self._my_offset
            remaining = self._remaining_rounds(t)
            last = t + ROUND_LENGTH >= self.eff_end
            if last:
                self.stage = Stage.FINISHED  # resolved in observe
                self.emit("punctual.leader_abdicated", t)
                return TimekeeperBeacon(
                    self.ctx.job_id,
                    global_time=vtime,
                    deadline=0,
                    abdicating=True,
                    payload=DataMessage(self.ctx.job_id),
                )
            return TimekeeperBeacon(
                self.ctx.job_id,
                global_time=vtime,
                deadline=remaining,
                abdicating=False,
            )
        if self.stage is Stage.HANDOVER:
            off = self._my_offset if self._my_offset is not None else 0
            self.stage = Stage.FINISHED  # resolved in observe
            self.emit("punctual.leader_handover", t)
            return TimekeeperBeacon(
                self.ctx.job_id,
                global_time=self._local_round(t) + off,
                deadline=self._remaining_rounds(t),
                abdicating=True,
                payload=DataMessage(self.ctx.job_id),
            )
        return None

    def _act_aligned(self, t: int) -> Optional[Message]:
        if self.stage is not Stage.FOLLOW or self.machine is None:
            return None
        v = self._vnow(t)
        if v is None or self.trim is None:
            return None
        lo, hi = self.trim
        if not lo <= v < hi or self.machine.finished:
            return None
        msg = self.machine.act(v)
        self.last_p = self.machine.last_p
        self._machine_stepped = True
        self._machine_v = v
        return msg

    def _act_election(self, t: int) -> Optional[Message]:
        if self.stage is not Stage.SLINGSHOT:
            return None
        p = self.params.pullback_probability(self.eff_window)
        self.last_p = p
        if self.ctx.rng.random() < p:
            return LeaderClaim(self.ctx.job_id, deadline=self._remaining_rounds(t))
        return None

    def _act_anarchist(self, t: int) -> Optional[Message]:
        if self.stage is not Stage.ANARCHIST or self.succeeded:
            return None
        p = self.params.anarchist_probability(self.eff_window)
        self.last_p = p
        if self.ctx.rng.random() < p:
            return DataMessage(self.ctx.job_id)
        return None

    # ------------------------------------------------------------------ observe

    def on_observe(self, slot: int, obs: Observation) -> None:
        if slot >= self.eff_end:
            return
        if not self.sync.synced:
            self.sync.observe(slot, obs)
            if self.sync.synced:
                self.stage = Stage.WAIT_TK
                self.emit("punctual.synced", slot)
            return

        role = self.sync.role(slot)
        r = self._local_round(slot)
        self.tracker.observe(r, role, obs)

        # leader payload delivery (beacons are not DataMessages, so the
        # base class's success detection does not cover them)
        if (
            obs.own_success
            and isinstance(obs.message, TimekeeperBeacon)
            and obs.message.payload is not None
        ):
            self.succeeded = True

        if self.stage is Stage.WAIT_TK and role is SlotRole.TIMEKEEPER:
            self._decide_after_timekeeper(slot, halving=False)
            return
        if self.stage is Stage.RECHECK_TK and role is SlotRole.TIMEKEEPER:
            self._decide_after_timekeeper(slot, halving=True)
            return
        if self.stage is Stage.SLINGSHOT:
            self._observe_slingshot(slot, role, obs)
            return
        if self.stage is Stage.FOLLOW:
            self._observe_follow(slot, role, obs)
            return
        if self.stage in (Stage.LEADER, Stage.LEADER_PENDING):
            self._observe_leader(slot, role, obs)
            return
        if self.stage is Stage.FINISHED:
            if not self.succeeded:
                self.gave_up = True
            return

    # -- stage handlers ------------------------------------------------------

    def _decide_after_timekeeper(self, t: int, *, halving: bool) -> None:
        """WAIT_TK / RECHECK_TK resolution at a timekeeper slot."""
        r = self._local_round(t)
        lv = self.tracker.current(r)
        if not halving:
            if lv is not None and lv.deadline_round >= self._my_deadline_round(t):
                self._enter_follow(t)
            else:
                self._enter_slingshot(t)
            return
        # RECHECK: accept a leader covering at least half my deadline.
        start = self.eff_end - self.eff_window
        half_end = start + self.eff_window // 2
        half_rounds = max(0, (half_end - t) // ROUND_LENGTH)
        if (
            lv is not None
            and half_end > t
            and lv.deadline_round >= r + half_rounds
        ):
            self.eff_window //= 2
            self.eff_end = half_end
            self._enter_follow(t)
        else:
            self.stage = Stage.ANARCHIST
            self.emit("punctual.anarchist_release", t)

    def _enter_slingshot(self, t: int) -> None:
        self.stage = Stage.SLINGSHOT
        self.pullback_left = self.params.pullback_duration(self.eff_window)
        self.emit("punctual.slingshot_entered", t)

    def _enter_follow(self, t: int) -> None:
        """Adopt the leader; trim and build the embedded ALIGNED machine.

        If the global time is not yet known (leader adopted from a claim,
        no beacon heard), the machine is built lazily on the first beacon.
        """
        self.stage = Stage.FOLLOW
        self.machine = None
        self.trim = None
        self._machine_offset = None
        self.emit("punctual.follow_entered", t)
        self._try_build_machine(t)

    def _try_build_machine(self, t: int) -> None:
        v = self._vnow(t)
        if v is None:
            return
        rounds_left = self._remaining_rounds(t)
        v_lo, v_hi = v + 1, v + rounds_left
        if v_hi - v_lo < 2:
            self.stage = Stage.ANARCHIST
            self.emit("punctual.anarchist_release", t)
            return
        s, e = trimmed_window(v_lo, v_hi)
        level = window_class(e - s)
        if level < self.params.aligned.min_level:
            # trimmed window too small for the embedded schedule — the
            # paper's large-w₀ regime excludes this; simulate via anarchy.
            self.stage = Stage.ANARCHIST
            self.emit("punctual.anarchist_release", t)
            return
        self.machine = AlignedMachine(
            self.ctx.job_id, level, self.params.aligned, self.ctx.rng
        )
        if self._events is not None:
            self.machine.events = self._events
        self.machine.begin(s)
        self.trim = (s, e)
        self._machine_offset = self.tracker.vtime_offset

    def _observe_slingshot(self, t: int, role: SlotRole, obs: Observation) -> None:
        self.pullback_left -= 1
        if (
            obs.own_success
            and isinstance(obs.message, LeaderClaim)
            and obs.message.sender == self.ctx.job_id
        ):
            # I won the election.  If I deposed a beaconing incumbent, the
            # next timekeeper slot carries its handover beacon; skip it.
            # (The tracker already adopted *me* on my own claim, so detect
            # a real incumbent by whether beacons were ever heard: beacons
            # are the only source of the vtime offset.)
            self._pending_skip = 1 if self.tracker.vtime_offset is not None else 0
            self.stage = Stage.LEADER_PENDING
            self.emit(
                "punctual.leader_elected", t,
                deadline_round=self._my_deadline_round(t),
            )
            return
        r = self._local_round(t)
        lv = self.tracker.current(r)
        if lv is not None and lv.deadline_round >= self._my_deadline_round(t):
            self._enter_follow(t)
            return
        if self.pullback_left <= 0:
            self.stage = Stage.RECHECK_TK

    def _observe_follow(self, t: int, role: SlotRole, obs: Observation) -> None:
        # 1. complete the machine's act/observe pair for this slot first
        if self._machine_stepped and self.machine is not None:
            self.machine.observe(self._machine_v, obs)
            if self.machine.gave_up:
                self.gave_up = True
            return
        # 2. (re)build: lazily once the vtime is known, or on an origin
        #    change (a new leader announcing a new clock forces a re-trim)
        if self.machine is None:
            self._try_build_machine(t)
        elif (
            self.tracker.vtime_offset is not None
            and self._machine_offset is not None
            and self.tracker.vtime_offset != self._machine_offset
        ):
            self._try_build_machine(t)
        if self.stage is not Stage.FOLLOW:
            return  # _try_build_machine may have demoted us to ANARCHIST
        # 3. leader lost (silent timekeeper / expiry): re-run arrival logic
        r = self._local_round(t)
        if role is SlotRole.TIMEKEEPER and self.tracker.current(r) is None:
            self.machine = None
            self.trim = None
            self.stage = Stage.WAIT_TK
            self.emit("punctual.leader_lost", t)
            return
        # 4. trimmed window expired without completion: truncation
        if self.machine is not None and self.trim is not None:
            v = self._vnow(t)
            if v is not None and v >= self.trim[1] and not self.machine.finished:
                self.gave_up = True
                self.emit("punctual.truncation", t, v_hi=self.trim[1])

    def _observe_leader(self, t: int, role: SlotRole, obs: Observation) -> None:
        # A later-deadline claimant deposes me.
        if (
            role is SlotRole.ELECTION
            and obs.feedback is Feedback.SUCCESS
            and isinstance(obs.message, LeaderClaim)
            and obs.message.sender != self.ctx.job_id
        ):
            r = self._local_round(t)
            claim_deadline = r + obs.message.deadline
            if claim_deadline > self._my_deadline_round(t):
                self.emit(
                    "punctual.leader_deposed", t, by=obs.message.sender
                )
                if self.stage is Stage.LEADER:
                    self.stage = Stage.HANDOVER
                else:
                    # deposed before ever beaconing: nothing to hand over —
                    # just follow the stronger leader like anyone else.
                    self._enter_follow(t)

    # ------------------------------------------------------------------ done

    @property
    def done(self) -> bool:
        return self.succeeded or self.gave_up


def punctual_factory(params: PunctualParams):
    """A :data:`~repro.sim.engine.ProtocolFactory` running PUNCTUAL."""

    def make(job: Job, rng: np.random.Generator) -> PunctualProtocol:
        return PunctualProtocol(ProtocolContext.for_job(job, rng), params)

    # Fastpath marker (repro.fastpath.batched.plan_fastpath): function
    # attributes are not part of stable_digest's callable encoding, so
    # attaching them leaves every existing cache key untouched.
    make.fastpath_kind = "punctual"
    make.fastpath_params = params
    return make
