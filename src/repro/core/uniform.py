"""UNIFORM — the natural (and provably unfair) algorithm of Section 2.

Each job picks one (or Θ(1)) uniformly random slot(s) of its own window
and transmits its data message there; no listening, no adaptation.  The
paper proves two things about it, both reproduced by experiments E1/E2:

* Lemma 4 — on a γ-slack-feasible instance with γ < 1/6, a constant
  fraction of all n messages succeed, with probability 1 − exp(−Θ(n));
* Lemma 5 — it is *not fair*: on the harmonic instance certain jobs
  (ironically the most urgent ones) succeed with probability only
  ``O(1/n^Θ(1))``.

UNIFORM uses only local age, never the global clock.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, Message
from repro.params import UniformParams
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["UniformProtocol", "uniform_factory"]


class UniformProtocol(Protocol):
    """Transmit in ``attempts`` random window slots (without replacement).

    When the window is smaller than ``attempts``, every slot is used.
    A success stops further attempts (the job terminates).
    """

    def __init__(self, ctx: ProtocolContext, params: UniformParams) -> None:
        super().__init__(ctx)
        self.params = params
        self.chosen: Set[int] = set()
        self.last_p = 0.0

    def on_begin(self, slot: int) -> None:
        w = self.ctx.window
        k = min(self.params.attempts, w)
        picks = self.ctx.rng.choice(w, size=k, replace=False)
        self.chosen = {int(x) for x in picks}

    def on_act(self, slot: int) -> Optional[Message]:
        age = self.local_age(slot)
        # Marginal per-slot probability, for contention traces: the chance
        # a fresh job would transmit here is attempts/window.
        self.last_p = min(self.params.attempts / self.ctx.window, 1.0)
        if age in self.chosen:
            return DataMessage(self.ctx.job_id)
        return None

    def on_observe(self, slot: int, obs: Observation) -> None:
        # Succeeded jobs terminate (handled by the base class).  A job that
        # exhausted its chosen slots without success stays silent forever;
        # we mark it given-up so the engine can retire it early (pure
        # bookkeeping — it would not touch the channel again anyway).
        if (
            not self.succeeded
            and self.chosen
            and self.local_age(slot) >= max(self.chosen)
        ):
            self.gave_up = True
            self.emit("uniform.exhausted", slot, attempts=len(self.chosen))


def uniform_factory(params: UniformParams = UniformParams()):
    """A :data:`~repro.sim.engine.ProtocolFactory` running UNIFORM."""

    def make(job: Job, rng: np.random.Generator) -> UniformProtocol:
        return UniformProtocol(ProtocolContext.for_job(job, rng), params)

    # Fastpath marker (repro.fastpath.batched.plan_fastpath): function
    # attributes are not part of stable_digest's callable encoding, so
    # attaching them leaves every existing cache key untouched.
    make.fastpath_kind = "uniform"
    make.fastpath_params = params
    return make
