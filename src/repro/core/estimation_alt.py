"""Alternative size estimator: geometric collision probing (extension).

The paper's related work cites Greenberg–Flajolet–Ladner-style
procedures for "estimating the multiplicities of conflicts to speed
their resolution" [50].  This module implements the simplest member of
that family as a drop-in alternative to Section 3's estimator, for the
A5 ablation:

* probe phases ``i = 1, 2, …, ℓ``; in phase i every job transmits with
  probability ``2^{-i}`` for ``r`` slots;
* the estimate keys on the **first** phase whose slots are mostly
  *non-collision* (silence or success): with n jobs, phases with
  ``2^i ≪ n`` collide almost surely, and the crossover happens at
  ``2^i ≈ n``;
* estimate ``ñ = τ'·2^{i*}``; all phases colliding ⇒ the class is huge
  (estimate caps at the window); all phases quiet from the start ⇒ take
  phase 1 (tiny class).

Cost ``r·ℓ`` slots versus the paper's ``λ·ℓ²`` — asymptotically an
ℓ-factor cheaper — but with two weaknesses the ablation measures: no
per-phase high-probability concentration (r is a constant, so each
phase's verdict is a constant-confidence coin), and jamming *inflates*
it (a jammed success reads as noise, i.e. as a collision, pushing the
crossover later).  The paper's estimator is immune to that direction of
error because it counts successes, which jamming can only remove.

The probing logic is pure bookkeeping mirroring
:class:`repro.core.estimation.EstimationTally`; the stepwise tally and
the vectorized trial runner share the same resolution rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import InvalidParameterError, ProtocolViolationError

__all__ = [
    "geometric_length",
    "resolve_geometric_estimate",
    "GeometricTally",
    "simulate_geometric_fast",
]


def geometric_length(level: int, probes: int) -> int:
    """Total slots of the geometric estimator: ``r·ℓ``."""
    if level < 0:
        raise InvalidParameterError(f"level must be >= 0, got {level}")
    if probes < 1:
        raise InvalidParameterError(f"probes must be >= 1, got {probes}")
    return probes * level


def resolve_geometric_estimate(
    collision_counts: List[int], probes: int, tau: int, level: int
) -> int:
    """Estimate from per-phase collision counts.

    The winning phase is the first whose collision count is at most half
    its slots; estimate ``τ·2^{i*}`` capped at the window.  All phases
    colliding resolves to the cap (huge class); an empty count list
    (level 0) resolves to 0.
    """
    if len(collision_counts) != level:
        raise InvalidParameterError(
            f"expected {level} phase counts, got {len(collision_counts)}"
        )
    if level == 0:
        return 0
    for i, c in enumerate(collision_counts, start=1):
        if c <= probes // 2:
            return min(tau * (1 << i), 1 << level)
    return 1 << level


@dataclass
class GeometricTally:
    """Running collision counts for one geometric-probing run."""

    level: int
    probes: int
    counts: List[int] = field(default_factory=list)
    steps_seen: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * self.level

    @property
    def total_steps(self) -> int:
        return geometric_length(self.level, self.probes)

    @property
    def complete(self) -> bool:
        return self.steps_seen >= self.total_steps

    def current_phase(self) -> int:
        if self.complete:
            raise ProtocolViolationError("probing already complete")
        return self.steps_seen // self.probes + 1

    def transmit_probability(self) -> float:
        """The probe probability for the next step: ``2^{-phase}``."""
        return 1.0 / (1 << self.current_phase())

    def record(self, collision: bool) -> None:
        """Advance one step with whether the slot was a collision/noise."""
        if self.complete:
            raise ProtocolViolationError("record() after completion")
        if collision:
            self.counts[self.current_phase() - 1] += 1
        self.steps_seen += 1

    def estimate(self, tau: int) -> int:
        if not self.complete:
            raise ProtocolViolationError("estimate() before completion")
        return resolve_geometric_estimate(
            self.counts, self.probes, tau, self.level
        )


def simulate_geometric_fast(
    n_jobs: int,
    level: int,
    probes: int,
    tau: int,
    rng: np.random.Generator,
    *,
    n_trials: int = 1,
    p_jam: float = 0.0,
) -> np.ndarray:
    """Vectorized geometric-probing trials (for the A5 ablation).

    Per slot only the transmitter count matters: ``>= 2`` is a
    collision; exactly 1 is a collision *iff jammed* (noise reads the
    same as a collision to a listener).
    """
    if n_jobs < 0:
        raise InvalidParameterError(f"n_jobs must be >= 0, got {n_jobs}")
    if not 0.0 <= p_jam <= 1.0:
        raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
    estimates = np.empty(n_trials, dtype=np.int64)
    collisions = np.zeros((n_trials, level), dtype=np.int64)
    for i in range(1, level + 1):
        tx = rng.binomial(n_jobs, 1.0 / (1 << i), size=(n_trials, probes))
        coll = tx >= 2
        if p_jam > 0.0:
            jammed = (tx == 1) & (rng.random((n_trials, probes)) < p_jam)
            coll |= jammed
        collisions[:, i - 1] = coll.sum(axis=1)
    for t in range(n_trials):
        estimates[t] = resolve_geometric_estimate(
            list(collisions[t]), probes, tau, level
        )
    return estimates
