"""Pecking-order scheduling of active steps (Section 3).

At any slot exactly one job class is **active**; all live jobs agree on
which (Lemma 7).  The agreement is achieved with no communication beyond
the channel itself:

* window boundaries are implicit synchronization points — at any slot
  that is a multiple of ``2^ℓ``, class ℓ's previous run is over
  (truncated if incomplete) and a fresh run begins;
* every live job simulates every class smaller than its own by counting
  that class's active steps and watching the channel during its
  estimation, so it learns the class's estimate and hence exactly how
  many more active steps the class needs (Lemma 6);
* the active class at any slot is simply the smallest class whose
  current run is unfinished.

:class:`ClassRun` tracks one class's current run (estimation tally, then
broadcast schedule).  :class:`PeckingOrderView` tracks a contiguous range
of classes and answers "who is active now?".  Each job owns a private
view; because a view is a deterministic function of (slot index, channel
feedback) and all live jobs see the same feedback, all views agree — the
property test for Lemma 7 checks exactly this.

A job of class ℓ released at ``r`` needs no pre-``r`` history: ``r`` is a
multiple of ``2^ℓ`` and hence of every smaller class's size, so *all*
classes ≤ ℓ start fresh runs at ``r``.  Larger classes never pre-empt
smaller ones, so the job need not track them at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.core.broadcast import BroadcastSchedule, SubphasePosition, total_active_steps
from repro.core.estimation import EstimationTally
from repro.errors import InvalidParameterError, ProtocolViolationError
from repro.params import AlignedParams

__all__ = ["StepKind", "EstimationStep", "BroadcastStep", "ClassRun", "PeckingOrderView"]


class StepKind(enum.Enum):
    """What kind of active step a class is about to take."""

    ESTIMATION = "estimation"
    BROADCAST = "broadcast"


@dataclass(frozen=True, slots=True)
class EstimationStep:
    """An upcoming estimation step: transmit a ping w.p. ``1/2^phase``."""

    kind: StepKind
    phase: int  # 1-indexed


@dataclass(frozen=True, slots=True)
class BroadcastStep:
    """An upcoming broadcast step at a given subphase position."""

    kind: StepKind
    position: SubphasePosition


Step = Union[EstimationStep, BroadcastStep]


class ClassRun:
    """The state of one class's current (estimation + broadcast) run.

    Level 0 is special-cased as a single broadcast step of length 1
    (window size 1 leaves no room for coordination; a lone job just
    transmits).  Feasible instances with γ < 1 never contain class-0
    jobs, but the run must still be well-defined for schedule accounting.
    """

    def __init__(self, level: int, params: AlignedParams) -> None:
        if level < 0:
            raise InvalidParameterError(f"level must be >= 0, got {level}")
        self.level = level
        self.params = params
        self.steps_taken = 0
        self.tally: Optional[EstimationTally] = (
            EstimationTally(level, params.lam) if level > 0 else None
        )
        self.estimate: Optional[int] = None
        self.schedule: Optional[BroadcastSchedule] = None
        if level == 0:
            self.estimate = 0
            self.schedule = BroadcastSchedule.trivial()

    @property
    def estimation_steps(self) -> int:
        return 0 if self.tally is None else self.tally.total_steps

    @property
    def total_steps(self) -> Optional[int]:
        """Total active steps of the run; None until the estimate is known."""
        if self.level == 0:
            return 1
        if self.estimate is None:
            return None
        return total_active_steps(self.level, self.estimate, self.params.lam)

    @property
    def done(self) -> bool:
        total = self.total_steps
        return total is not None and self.steps_taken >= total

    def next_step(self) -> Step:
        """Describe the step the class takes in its next active slot."""
        if self.done:
            raise ProtocolViolationError(
                f"class {self.level} run is complete; no next step"
            )
        if self.level > 0 and self.steps_taken < self.estimation_steps:
            assert self.tally is not None
            return EstimationStep(StepKind.ESTIMATION, self.tally.current_phase())
        assert self.schedule is not None
        bstep = self.steps_taken - self.estimation_steps
        return BroadcastStep(StepKind.BROADCAST, self.schedule.position(bstep))

    def advance(self, success: bool) -> None:
        """Consume one active step, feeding the slot's outcome.

        ``success`` is whether the slot carried a successful transmission
        (anyone's) — the only channel information estimation needs.
        """
        if self.done:
            raise ProtocolViolationError(
                f"advance() on completed class-{self.level} run"
            )
        if self.level > 0 and self.steps_taken < self.estimation_steps:
            assert self.tally is not None
            self.tally.record(success)
            self.steps_taken += 1
            if self.tally.complete:
                self.estimate = self.tally.estimate(self.params.tau)
                if self.estimate:
                    self.schedule = BroadcastSchedule(
                        self.level, self.estimate, self.params.lam
                    )
            return
        self.steps_taken += 1


class PeckingOrderView:
    """One job's deterministic view of which class is active per slot.

    Parameters
    ----------
    params:
        ALIGNED parameters (λ, τ, ``min_level``).
    max_level:
        The owning job's class; classes ``min_level .. max_level`` are
        tracked.
    origin:
        The slot at which tracking starts (the job's release).  Must be a
        multiple of ``2^max_level``; all tracked classes reset here.

    Usage per slot ``t`` (consecutive from ``origin``)::

        active = view.on_slot_start(t)   # None, or the active level
        ... channel resolution ...
        view.on_slot_end(t, success)
    """

    def __init__(self, params: AlignedParams, max_level: int, origin: int) -> None:
        if max_level < params.min_level:
            raise InvalidParameterError(
                f"job class {max_level} below schedule min_level "
                f"{params.min_level}"
            )
        if origin % (1 << max_level) != 0:
            raise InvalidParameterError(
                f"origin {origin} not aligned to 2^{max_level}"
            )
        self.params = params
        self.min_level = params.min_level
        self.max_level = max_level
        self.origin = origin
        self.runs: Dict[int, ClassRun] = {
            lv: ClassRun(lv, params) for lv in range(self.min_level, max_level + 1)
        }
        self._expected_slot = origin
        self._active: Optional[int] = None
        self._phase = "start"  # alternates start -> end

    def on_slot_start(self, t: int) -> Optional[int]:
        """Handle boundaries, then return the active level (or None).

        None means every tracked class's run is complete — the slot
        belongs to some larger class, which this job need not model.
        """
        if self._phase != "start" or t != self._expected_slot:
            raise ProtocolViolationError(
                f"on_slot_start({t}) out of order "
                f"(expected slot {self._expected_slot}, phase {self._phase})"
            )
        for lv in range(self.min_level, self.max_level + 1):
            if t % (1 << lv) == 0:
                self.runs[lv] = ClassRun(lv, self.params)
        self._active = None
        for lv in range(self.min_level, self.max_level + 1):
            if not self.runs[lv].done:
                self._active = lv
                break
        self._phase = "end"
        return self._active

    def on_slot_end(self, t: int, success: bool) -> None:
        """Feed the slot's outcome; advances the active class's run."""
        if self._phase != "end" or t != self._expected_slot:
            raise ProtocolViolationError(
                f"on_slot_end({t}) out of order "
                f"(expected slot {self._expected_slot}, phase {self._phase})"
            )
        if self._active is not None:
            self.runs[self._active].advance(success)
        self._expected_slot = t + 1
        self._phase = "start"

    # -- introspection -----------------------------------------------------

    @property
    def active_level(self) -> Optional[int]:
        """The level chosen by the latest :meth:`on_slot_start`."""
        return self._active

    def run_of(self, level: int) -> ClassRun:
        return self.runs[level]

    def snapshot(self) -> Tuple[Tuple[int, int, Optional[int], bool], ...]:
        """A hashable digest of all runs (level, steps, estimate, done).

        Used by the Lemma 7 agreement tests to compare views across jobs.
        """
        return tuple(
            (
                lv,
                self.runs[lv].steps_taken,
                self.runs[lv].estimate,
                self.runs[lv].done,
            )
            for lv in range(self.min_level, self.max_level + 1)
        )
