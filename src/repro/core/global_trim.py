"""TRIMMED-ALIGNED: the global-clock variant of Section 4's intro.

Before introducing PUNCTUAL, the paper observes:

    "if all jobs had access to a global clock — that is, all jobs agreed
    on the index of the current slot — then each job could trim its own
    window without any help.  Then, the algorithm from Section 3 could
    be used."

This module implements exactly that middle point: arbitrary windows,
but a shared slot index.  Each job trims its window to the largest
power-of-2-aligned sub-window (Lemma 15: at least a quarter of the
original, and 4γ-slack feasibility becomes γ-slack feasibility) and runs
the unmodified ALIGNED machine inside it.

It slots between ALIGNED (needs aligned inputs) and PUNCTUAL (needs
nothing): same guarantees as ALIGNED at a 4x slack cost, none of
PUNCTUAL's round/leader machinery — and it quantifies, in the comparison
benches, exactly what the *absence* of a global clock costs (PUNCTUAL's
extra 10x round dilution and leader-election overhead).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import Message
from repro.core.aligned import AlignedMachine
from repro.core.trimming import trimmed_window
from repro.params import AlignedParams
from repro.sim.job import Job, window_class
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["TrimmedAlignedProtocol", "trimmed_aligned_factory"]


class TrimmedAlignedProtocol(Protocol):
    """Trim to an aligned window (global clock), then run ALIGNED inside.

    The job idles (pure listening) outside its trimmed window; inside it,
    the embedded :class:`AlignedMachine` is stepped one-to-one with real
    slots.  If the trimmed window's class falls below the schedule's
    ``min_level`` the job cannot participate (its window is too small for
    the configured pecking order) and gives up immediately — feasible
    instances in the protocol's regime never trigger this.
    """

    def __init__(self, ctx: ProtocolContext, params: AlignedParams) -> None:
        super().__init__(ctx)
        self.params = params
        self.machine: Optional[AlignedMachine] = None
        self.trim: Optional[tuple[int, int]] = None
        self.last_p = 0.0
        self._stepped = False

    def on_begin(self, slot: int) -> None:
        lo, hi = trimmed_window(slot, slot + self.ctx.window)
        level = window_class(hi - lo)
        if level < self.params.min_level:
            self.gave_up = True
            return
        self.trim = (lo, hi)
        self.machine = AlignedMachine(
            self.ctx.job_id, level, self.params, self.ctx.rng
        )
        if self._events is not None:
            # bind_telemetry() ran before begin(); hand the sink down.
            self.machine.events = self._events
        self.machine.begin(lo)

    def on_act(self, slot: int) -> Optional[Message]:
        self.last_p = 0.0
        if self.machine is None or self.trim is None:
            return None
        lo, hi = self.trim
        if not lo <= slot < hi or self.machine.finished:
            return None
        msg = self.machine.act(slot)
        self.last_p = self.machine.last_p
        self._stepped = True
        return msg

    def on_observe(self, slot: int, obs: Observation) -> None:
        if self.machine is None or self.trim is None:
            return
        if self._stepped:
            self.machine.observe(slot, obs)
            self._stepped = False
            if self.machine.gave_up:
                self.gave_up = True
        if slot >= self.trim[1] - 1 and not self.succeeded:
            # trimmed window over without delivery
            self.gave_up = True


def trimmed_aligned_factory(params: AlignedParams):
    """A :data:`~repro.sim.engine.ProtocolFactory` for TRIMMED-ALIGNED."""

    def make(job: Job, rng: np.random.Generator) -> TrimmedAlignedProtocol:
        return TrimmedAlignedProtocol(ProtocolContext.for_job(job, rng), params)

    return make
