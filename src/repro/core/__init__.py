"""The paper's protocols: UNIFORM, ALIGNED, PUNCTUAL, and their pieces."""

from repro.core.aligned import AlignedMachine, AlignedProtocol, aligned_factory
from repro.core.broadcast import (
    BroadcastSchedule,
    SubphasePosition,
    broadcast_length,
    total_active_steps,
)
from repro.core.estimation import (
    EstimationTally,
    estimation_length,
    phase_of_step,
    phase_probability,
    resolve_estimate,
)
from repro.core.global_trim import TrimmedAlignedProtocol, trimmed_aligned_factory
from repro.core.leader import LeaderTracker, LeaderView
from repro.core.punctual import PunctualProtocol, Stage, punctual_factory
from repro.core.rounds import ROUND_LENGTH, RoundSynchronizer, SlotRole
from repro.core.schedule import (
    BroadcastStep,
    ClassRun,
    EstimationStep,
    PeckingOrderView,
    StepKind,
)
from repro.core.trimming import trimmed_instance, trimmed_job, trimmed_window
from repro.core.uniform import UniformProtocol, uniform_factory

__all__ = [
    "AlignedMachine",
    "AlignedProtocol",
    "aligned_factory",
    "BroadcastSchedule",
    "SubphasePosition",
    "broadcast_length",
    "total_active_steps",
    "EstimationTally",
    "estimation_length",
    "phase_of_step",
    "phase_probability",
    "resolve_estimate",
    "LeaderTracker",
    "LeaderView",
    "PunctualProtocol",
    "Stage",
    "punctual_factory",
    "ROUND_LENGTH",
    "RoundSynchronizer",
    "SlotRole",
    "BroadcastStep",
    "ClassRun",
    "EstimationStep",
    "PeckingOrderView",
    "StepKind",
    "trimmed_instance",
    "trimmed_job",
    "trimmed_window",
    "TrimmedAlignedProtocol",
    "trimmed_aligned_factory",
    "UniformProtocol",
    "uniform_factory",
]
