"""Passive leader tracking for PUNCTUAL (Section 4).

Every job, whatever its stage, digests timekeeper beacons and successful
leader-election claims into one shared picture: *is there a leader, when
is its deadline, and what is the global (virtual) time?*  Because the
picture is a deterministic function of channel feedback, all synchronized
jobs hold the same picture — the general-case analogue of the Lemma 7
agreement argument.

Deadlines travel on the channel as **remaining rounds** (jobs have no
global clock, but all agree on round boundaries, so "my deadline is R
rounds from this one" is unambiguous).  Each tracker converts them to its
own local round counter on receipt.

Resolution rules the paper leaves implicit (documented in DESIGN.md):

* a *silent* timekeeper slot means "no leader" (a live leader transmits
  in every timekeeper slot; silence is proof of absence), while a *noisy*
  one is uninformative (jamming) and leaves the picture unchanged;
* an abdicating beacon clears the leader only if it comes from the
  tracked leader (matched by deadline) — a deposed leader's handover
  beacon is also marked abdicating but must not clear the *new* leader,
  which the tracker already adopted when it heard the winning claim;
* a successful claim replaces the tracked leader iff its deadline is
  strictly later (a job only contends when it outlives the incumbent, so
  ties mean no deposition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.channel.feedback import Feedback, Observation
from repro.channel.messages import LeaderClaim, TimekeeperBeacon
from repro.core.rounds import SlotRole

__all__ = ["LeaderView", "LeaderTracker"]


@dataclass(frozen=True, slots=True)
class LeaderView:
    """A snapshot of the tracked leader state.

    ``deadline_round`` is in the *owner's* local round counter: the last
    round whose timekeeper slot the leader will still attend.
    ``vtime_offset`` maps local rounds to the leader's announced global
    time (``virtual = local + offset``); None until a beacon is heard.
    """

    deadline_round: int
    vtime_offset: Optional[int]


class LeaderTracker:
    """Digests per-slot observations into the current :class:`LeaderView`."""

    def __init__(self) -> None:
        self._leader: Optional[LeaderView] = None
        self._vtime: Optional[int] = None

    def current(self, local_round: int) -> Optional[LeaderView]:
        """The tracked leader, if any is still alive at ``local_round``."""
        if self._leader is not None and self._leader.deadline_round < local_round:
            # expired without an observed abdication (e.g. we were not yet
            # listening when it abdicated)
            self._leader = None
        return self._leader

    @property
    def vtime_offset(self) -> Optional[int]:
        """Last known local-to-global round offset (survives leader loss).

        Kept after abdication so a newly elected leader that heard the old
        beacons can continue the same global timeline.
        """
        return self._vtime

    def observe(self, local_round: int, role: SlotRole, obs: Observation) -> None:
        """Feed one slot's feedback (with its round index and role)."""
        if role is SlotRole.TIMEKEEPER:
            if obs.feedback is Feedback.SILENCE:
                self._leader = None
            elif obs.feedback is Feedback.SUCCESS and isinstance(
                obs.message, TimekeeperBeacon
            ):
                beacon = obs.message
                deadline = local_round + beacon.deadline
                self._vtime = beacon.global_time - local_round
                if beacon.abdicating:
                    cur = self._leader
                    if cur is not None and cur.deadline_round == deadline:
                        self._leader = None
                    # else: handover beacon of a deposed leader; the new
                    # leader (adopted at claim time) stays tracked.
                else:
                    self._leader = LeaderView(deadline, self._vtime)
            # NOISE: uninformative, keep the picture.
        elif role is SlotRole.ELECTION:
            if obs.feedback is Feedback.SUCCESS and isinstance(
                obs.message, LeaderClaim
            ):
                claim_deadline = local_round + obs.message.deadline
                cur = self._leader
                if cur is None or claim_deadline > cur.deadline_round:
                    self._leader = LeaderView(claim_deadline, self.vtime_offset)
