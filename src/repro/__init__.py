"""repro — a reproduction of *Contention Resolution with Message Deadlines*.

Agrawal, Bender, Fineman, Gilbert, Young — SPAA 2020
(doi:10.1145/3350755.3400239).

Unit-length messages arrive over time on a shared multiple-access
channel, each with a delivery deadline.  For γ-slack-feasible inputs the
paper's protocols deliver every message within its window with high
probability in the window size.  This package implements the whole stack
from scratch:

* :mod:`repro.channel` — the slotted channel with collision detection,
  trinary feedback, and jamming adversaries;
* :mod:`repro.adversary` — *reactive* adversaries that observe trinary
  channel feedback through a sanctioned read-only view and adapt their
  jamming, plus the breaking-point certification harness in
  :mod:`repro.experiments.certify`;
* :mod:`repro.sim` — jobs, instances, γ-slack feasibility, the slot
  engine, traces, and metrics;
* :mod:`repro.core` — the paper's protocols: **UNIFORM** (Section 2),
  **ALIGNED** (Section 3: pecking order, size estimation, batch
  broadcast), **PUNCTUAL** (Section 4: rounds, slingshot leader
  election, follow-the-leader, anarchists);
* :mod:`repro.baselines` — binary exponential backoff, sawtooth, slotted
  ALOHA, and the centralized-EDF genie;
* :mod:`repro.workloads` — aligned/general/adversarial/realistic
  instance generators;
* :mod:`repro.faults` — composable fault injection (jamming budgets,
  feedback corruption, clock skew/drift, job crashes) consulted by the
  engine, plus the runtime invariant checker in
  :mod:`repro.sim.invariants`;
* :mod:`repro.fastpath` — vectorized numpy equivalents of the
  statistically heavy inner loops;
* :mod:`repro.obs` — run telemetry: a metrics registry, typed protocol
  lifecycle events, wall-clock spans, and JSONL artifacts summarized by
  ``repro obs``;
* :mod:`repro.verify` — the differential verification harness: engine ↔
  fastpath cross-execution, metamorphic invariances, and the
  determinism audit behind ``repro verify``;
* :mod:`repro.analysis` — the paper's closed-form bounds, contention
  analyses, statistics, and plain-text tables.

Quick start::

    from repro import (
        AlignedParams, aligned_factory, simulate, single_class_instance,
    )
    inst = single_class_instance(n=8, level=8)
    result = simulate(inst, aligned_factory(AlignedParams.simulation()), seed=0)
    print(result.summary())
"""

from repro.adversary import (
    AdaptiveBudgetJammer,
    ChannelView,
    FeedbackReactiveJammer,
    LeaderAssassinJammer,
    ReactiveAdversary,
    StructureTargetedJammer,
)
from repro.baselines import (
    aloha_factory,
    beb_factory,
    edf_factory,
    edf_schedule,
    nocd_factory,
    sawtooth_factory,
    slowfeedback_factory,
    softened_factory,
    window_scaled_aloha_factory,
)
from repro.cache import ResultCache, run_key, stable_digest
from repro.channel import (
    BudgetJammer,
    BurstJammer,
    Feedback,
    MultipleAccessChannel,
    NoJammer,
    Observation,
    PaperGuaranteeWarning,
    PeriodicJammer,
    ReactiveJammer,
    StochasticJammer,
    WindowedRateJammer,
)
from repro.core import (
    AlignedProtocol,
    PunctualProtocol,
    TrimmedAlignedProtocol,
    UniformProtocol,
    aligned_factory,
    punctual_factory,
    trimmed_aligned_factory,
    trimmed_instance,
    trimmed_window,
    uniform_factory,
)
from repro.errors import (
    InvalidInstanceError,
    InvalidParameterError,
    InvariantViolationError,
    ProtocolViolationError,
    ReproError,
    SimulationError,
)
from repro.faults import ClockFault, FaultPlan, FeedbackFault, JobFault
from repro.obs import (
    EventLog,
    EventSink,
    MetricsRegistry,
    Telemetry,
    TelemetryArtifact,
    read_artifact,
)
from repro.params import AlignedParams, PunctualParams, UniformParams
from repro.sim import (
    Instance,
    InvariantChecker,
    Job,
    JobStatus,
    RngFactory,
    SimulationResult,
    is_slack_feasible,
    peak_density,
    simulate,
    slack_of,
)
from repro.sim.engine import ENGINE_VERSION
from repro.sim.validate import Certificate, Finding, Severity, certify
from repro.sim.watchdog import Watchdog, WatchdogTrip
from repro.workloads import (
    aligned_random_instance,
    batch_instance,
    harmonic_starvation_instance,
    poisson_instance,
    sensor_network_instance,
    single_class_instance,
    uniform_random_instance,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # params
    "AlignedParams",
    "PunctualParams",
    "UniformParams",
    # protocols
    "AlignedProtocol",
    "PunctualProtocol",
    "TrimmedAlignedProtocol",
    "UniformProtocol",
    "aligned_factory",
    "punctual_factory",
    "trimmed_aligned_factory",
    "uniform_factory",
    "trimmed_instance",
    "trimmed_window",
    # baselines
    "aloha_factory",
    "beb_factory",
    "edf_factory",
    "edf_schedule",
    "nocd_factory",
    "sawtooth_factory",
    "slowfeedback_factory",
    "softened_factory",
    "window_scaled_aloha_factory",
    # channel
    "BudgetJammer",
    "BurstJammer",
    "Feedback",
    "MultipleAccessChannel",
    "NoJammer",
    "Observation",
    "PaperGuaranteeWarning",
    "PeriodicJammer",
    "ReactiveJammer",
    "StochasticJammer",
    "WindowedRateJammer",
    # reactive adversaries
    "AdaptiveBudgetJammer",
    "ChannelView",
    "FeedbackReactiveJammer",
    "LeaderAssassinJammer",
    "ReactiveAdversary",
    "StructureTargetedJammer",
    # faults
    "ClockFault",
    "FaultPlan",
    "FeedbackFault",
    "JobFault",
    # observability
    "EventLog",
    "EventSink",
    "MetricsRegistry",
    "Telemetry",
    "TelemetryArtifact",
    "read_artifact",
    # sim
    "ENGINE_VERSION",
    "Instance",
    "InvariantChecker",
    "Job",
    "JobStatus",
    "RngFactory",
    "SimulationResult",
    "Watchdog",
    "WatchdogTrip",
    # cache
    "ResultCache",
    "run_key",
    "stable_digest",
    "is_slack_feasible",
    "peak_density",
    "simulate",
    "slack_of",
    "Certificate",
    "Finding",
    "Severity",
    "certify",
    # workloads
    "aligned_random_instance",
    "batch_instance",
    "harmonic_starvation_instance",
    "poisson_instance",
    "sensor_network_instance",
    "single_class_instance",
    "uniform_random_instance",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "InvalidParameterError",
    "InvariantViolationError",
    "ProtocolViolationError",
    "SimulationError",
]
