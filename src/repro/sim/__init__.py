"""Slot-based simulation substrate: jobs, instances, feasibility, engine.

This package is protocol-agnostic — it knows nothing about UNIFORM,
ALIGNED, or PUNCTUAL beyond the :class:`Protocol` interface they all
implement.
"""

from repro.sim.engine import ProtocolFactory, SlotObserver, simulate
from repro.sim.feasibility import (
    DensityReport,
    is_slack_feasible,
    peak_density,
    slack_of,
    verify_edf_schedulable,
)
from repro.sim.instance import Instance, WindowKey
from repro.sim.invariants import InvariantChecker
from repro.sim.job import Job, JobStatus, is_power_of_two, window_class
from repro.sim.metrics import JobOutcome, SimulationResult
from repro.sim.protocolbase import Protocol, ProtocolContext
from repro.sim.rng import RngFactory
from repro.sim.trace import SlotRecord, TraceRecorder

# NOTE: repro.sim.validate is deliberately NOT imported here — it depends
# on repro.experiments (capacity planning) and repro.core (round costs),
# which sit above this package in the layering; importing it at package
# load would be circular.  It is re-exported from the top-level package.

__all__ = [
    "simulate",
    "ProtocolFactory",
    "SlotObserver",
    "Instance",
    "InvariantChecker",
    "WindowKey",
    "Job",
    "JobStatus",
    "is_power_of_two",
    "window_class",
    "JobOutcome",
    "SimulationResult",
    "Protocol",
    "ProtocolContext",
    "RngFactory",
    "SlotRecord",
    "TraceRecorder",
    "DensityReport",
    "peak_density",
    "is_slack_feasible",
    "slack_of",
    "verify_edf_schedulable",
]
