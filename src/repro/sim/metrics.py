"""Simulation results and aggregate metrics.

:class:`JobOutcome` records the fate of one job; :class:`SimulationResult`
bundles all outcomes with the optional trace and offers the aggregate
views the experiments report: overall success rate, success rate keyed by
window size, deadline-miss lists, and transmission-count statistics (the
paper's guarantees are per-job *with high probability in the window size*,
so per-window-size breakdowns are the headline measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sim.instance import Instance
from repro.sim.job import Job, JobStatus
from repro.sim.trace import TraceRecorder
from repro.sim.watchdog import WatchdogTrip

__all__ = ["JobOutcome", "SimulationResult"]


@dataclass(frozen=True, slots=True)
class JobOutcome:
    """The fate of one job in one simulation run.

    Attributes
    ----------
    job:
        The job (window included).
    status:
        Terminal :class:`JobStatus`.
    completion_slot:
        Slot of the successful broadcast, or -1.
    transmissions:
        Number of slots in which the job transmitted anything (control
        messages included) — the job's channel-access cost.  This is the
        *energy* metric of the modern backoff literature (each send
        attempt costs one unit, regardless of outcome).
    jammed_transmissions:
        How many of those attempts landed in a jammed slot — energy the
        adversary burned directly.  Always ``<= transmissions``; 0 in
        unjammed runs.
    """

    job: Job
    status: JobStatus
    completion_slot: int
    transmissions: int
    jammed_transmissions: int = 0

    @property
    def succeeded(self) -> bool:
        return self.status is JobStatus.SUCCEEDED

    @property
    def energy(self) -> int:
        """Channel-access energy: one unit per send attempt."""
        return self.transmissions

    @property
    def latency(self) -> int:
        """Slots from release to success (inclusive); -1 on failure."""
        if not self.succeeded:
            return -1
        return self.completion_slot - self.job.release + 1


@dataclass
class SimulationResult:
    """All outcomes of one simulation run plus aggregates.

    ``watchdog`` is ``None`` for a run that completed normally; a
    :class:`~repro.sim.watchdog.WatchdogTrip` marks a run cancelled by
    an attached :class:`~repro.sim.watchdog.Watchdog` — outcomes are
    then *partial*: jobs still live at the cut are recorded as failed.

    ``channel_attempts`` is the channel-side count of send attempts
    across the run (the sum of per-slot transmitter counts); -1 when the
    producing path did not track it.  On a fault-free engine run it
    equals the sum of per-job ``transmissions`` — the conservation law
    the verify battery checks.
    """

    instance: Instance
    outcomes: Tuple[JobOutcome, ...]
    slots_simulated: int
    trace: Optional[TraceRecorder] = None
    watchdog: Optional[WatchdogTrip] = None
    channel_attempts: int = -1

    def __post_init__(self) -> None:
        self._by_id: Dict[int, JobOutcome] = {
            o.job.job_id: o for o in self.outcomes
        }

    # -- lookups -------------------------------------------------------------

    def outcome_of(self, job_id: int) -> JobOutcome:
        return self._by_id[job_id]

    def __len__(self) -> int:
        return len(self.outcomes)

    # -- aggregates ------------------------------------------------------------

    @property
    def n_succeeded(self) -> int:
        return sum(1 for o in self.outcomes if o.succeeded)

    @property
    def success_rate(self) -> float:
        """Fraction of jobs that delivered by their deadline (1.0 if empty)."""
        if not self.outcomes:
            return 1.0
        return self.n_succeeded / len(self.outcomes)

    @property
    def missed(self) -> Tuple[JobOutcome, ...]:
        """Outcomes of jobs that failed to deliver."""
        return tuple(o for o in self.outcomes if not o.succeeded)

    def success_by_window(self) -> Mapping[int, Tuple[int, int]]:
        """``window size -> (successes, total)`` — the per-w_j guarantee view."""
        acc: Dict[int, List[int]] = {}
        for o in self.outcomes:
            s, t = acc.setdefault(o.job.window, [0, 0])
            acc[o.job.window][0] = s + (1 if o.succeeded else 0)
            acc[o.job.window][1] = t + 1
        return {w: (s, t) for w, (s, t) in sorted(acc.items())}

    def latencies(self) -> np.ndarray:
        """Latencies of successful jobs (slots from release to success)."""
        return np.array(
            [o.latency for o in self.outcomes if o.succeeded], dtype=np.int64
        )

    def transmission_counts(self) -> np.ndarray:
        """Per-job channel-access counts (all jobs)."""
        return np.array([o.transmissions for o in self.outcomes], dtype=np.int64)

    # -- channel-access energy -----------------------------------------------

    @property
    def total_energy(self) -> int:
        """Total send attempts across all jobs (one energy unit each)."""
        return sum(o.transmissions for o in self.outcomes)

    @property
    def mean_energy(self) -> float:
        """Mean send attempts per job (nan on an empty instance)."""
        if not self.outcomes:
            return float("nan")
        return self.total_energy / len(self.outcomes)

    @property
    def jammed_energy(self) -> int:
        """Send attempts that landed in jammed slots."""
        return sum(o.jammed_transmissions for o in self.outcomes)

    @property
    def energy_per_success(self) -> float:
        """Total energy divided by successes (nan when none succeeded)."""
        ok = self.n_succeeded
        if not ok:
            return float("nan")
        return self.total_energy / ok

    def energy_by_window(self) -> Mapping[int, float]:
        """Mean send attempts per job, keyed by window size."""
        acc: Dict[int, List[int]] = {}
        for o in self.outcomes:
            acc.setdefault(o.job.window, []).append(o.transmissions)
        return {w: float(np.mean(v)) for w, v in sorted(acc.items())}

    def normalized_latencies(self) -> np.ndarray:
        """Latency divided by window size, per successful job (in (0, 1])."""
        vals = [
            o.latency / o.job.window for o in self.outcomes if o.succeeded
        ]
        return np.array(vals, dtype=np.float64)

    def latency_percentiles(
        self, qs: Sequence[float] = (50, 90, 99)
    ) -> Mapping[float, float]:
        """Latency percentiles over successful jobs (nan when none)."""
        lat = self.latencies()
        if lat.size == 0:
            return {q: float("nan") for q in qs}
        vals = np.percentile(lat, list(qs))
        return {q: float(v) for q, v in zip(qs, vals)}

    def latency_by_window(self) -> Mapping[int, float]:
        """Mean latency of successful jobs, keyed by window size."""
        acc: Dict[int, List[int]] = {}
        for o in self.outcomes:
            if o.succeeded:
                acc.setdefault(o.job.window, []).append(o.latency)
        return {
            w: float(np.mean(v)) for w, v in sorted(acc.items())
        }

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"{self.instance.summary()}",
            f"slots simulated: {self.slots_simulated}",
            f"success: {self.n_succeeded}/{len(self.outcomes)} "
            f"({self.success_rate:.3f})",
        ]
        for w, (s, t) in self.success_by_window().items():
            lines.append(f"  window {w:>6}: {s}/{t}")
        tx = self.transmission_counts()
        if tx.size:
            lines.append(
                f"transmissions/job: mean {tx.mean():.2f}, max {tx.max()}"
            )
            jam = self.jammed_energy
            line = f"energy: {self.total_energy} attempts"
            if jam:
                line += f" ({jam} into jammed slots)"
            lines.append(line)
        return "\n".join(lines)
