"""Per-slot trace recording for simulations.

A :class:`TraceRecorder` captures, for every simulated slot, the channel
outcome plus engine-side context (how many jobs were live, how many
transmitted, and the summed transmit probability when a protocol exposes
it).  Traces power the contention analyses (Lemma 2 / Corollary 3
experiments) and the Figure 1 schedule regeneration.

Recording is opt-in; the engine skips all bookkeeping when no recorder is
installed, keeping the hot loop lean per the "measure before you pay"
guidance for simulation inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.channel.channel import SlotOutcome
from repro.channel.feedback import Feedback

__all__ = ["SlotRecord", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class SlotRecord:
    """Everything recorded about one simulated slot.

    Attributes
    ----------
    slot:
        Slot index.
    feedback:
        Trinary channel state.
    n_transmitters:
        Number of simultaneous transmissions (simulator ground truth).
    n_live:
        Jobs live (released, window open, not finished) during the slot.
    contention:
        Sum of live jobs' transmit probabilities for the slot, when the
        protocol reports one via ``transmit_probability``; ``nan`` when
        unavailable.  This is the paper's ``C(t)``.
    jammed:
        Whether the jammer corrupted the slot.
    message_type:
        Class name of the delivered message on success, else ``""``.
    """

    slot: int
    feedback: Feedback
    n_transmitters: int
    n_live: int
    contention: float
    jammed: bool
    message_type: str


class TraceRecorder:
    """Accumulates :class:`SlotRecord` objects and derived arrays."""

    def __init__(self) -> None:
        self.records: List[SlotRecord] = []

    def record(
        self,
        outcome: SlotOutcome,
        n_live: int,
        contention: float = float("nan"),
    ) -> None:
        self.records.append(
            SlotRecord(
                slot=outcome.slot,
                feedback=outcome.feedback,
                n_transmitters=outcome.n_transmitters,
                n_live=n_live,
                contention=contention,
                jammed=outcome.jammed,
                message_type=type(outcome.message).__name__
                if outcome.message is not None
                else "",
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    # -- derived arrays ----------------------------------------------------

    def feedback_codes(self) -> np.ndarray:
        """0 = silence, 1 = success, 2 = noise, per slot."""
        code = {Feedback.SILENCE: 0, Feedback.SUCCESS: 1, Feedback.NOISE: 2}
        return np.array([code[r.feedback] for r in self.records], dtype=np.int8)

    def contentions(self) -> np.ndarray:
        """Per-slot contention ``C(t)`` (nan where unreported)."""
        return np.array([r.contention for r in self.records], dtype=np.float64)

    def live_counts(self) -> np.ndarray:
        return np.array([r.n_live for r in self.records], dtype=np.int64)

    def success_slots(self) -> np.ndarray:
        """Indices of slots carrying a successful broadcast."""
        return np.array(
            [r.slot for r in self.records if r.feedback is Feedback.SUCCESS],
            dtype=np.int64,
        )

    def utilization(self) -> float:
        """Fraction of recorded slots carrying a success."""
        if not self.records:
            return 0.0
        return float(np.mean(self.feedback_codes() == 1))

    def collision_rate(self) -> float:
        """Fraction of recorded slots that were noise."""
        if not self.records:
            return 0.0
        return float(np.mean(self.feedback_codes() == 2))
