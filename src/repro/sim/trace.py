"""Per-slot trace recording for simulations.

A :class:`TraceRecorder` captures, for every simulated slot, the channel
outcome plus engine-side context (how many jobs were live, how many
transmitted, and the summed transmit probability when a protocol exposes
it).  Traces power the contention analyses (Lemma 2 / Corollary 3
experiments) and the Figure 1 schedule regeneration.

Recording is opt-in; the engine skips all bookkeeping when no recorder is
installed, keeping the hot loop lean per the "measure before you pay"
guidance for simulation inner loops.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.channel.channel import SlotOutcome
from repro.channel.feedback import Feedback

__all__ = ["SlotRecord", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class SlotRecord:
    """Everything recorded about one simulated slot.

    Attributes
    ----------
    slot:
        Slot index.
    feedback:
        Trinary channel state.
    n_transmitters:
        Number of simultaneous transmissions (simulator ground truth).
    n_live:
        Jobs live (released, window open, not finished) during the slot.
    contention:
        Sum of live jobs' transmit probabilities for the slot, when the
        protocol reports one via ``transmit_probability``; ``nan`` when
        unavailable.  This is the paper's ``C(t)``.
    jammed:
        Whether the jammer corrupted the slot.
    message_type:
        Class name of the delivered message on success, else ``""``.
    """

    slot: int
    feedback: Feedback
    n_transmitters: int
    n_live: int
    contention: float
    jammed: bool
    message_type: str

    def as_record(self) -> Dict[str, Any]:
        """JSON-serializable form (contention NaN encodes as ``None``)."""
        c = self.contention
        return {
            "slot": self.slot,
            "feedback": self.feedback.name,
            "n_tx": self.n_transmitters,
            "n_live": self.n_live,
            "contention": c if c == c else None,
            "jammed": self.jammed,
            "message_type": self.message_type,
        }

    @classmethod
    def from_record(cls, rec: Dict[str, Any]) -> "SlotRecord":
        c = rec.get("contention")
        return cls(
            slot=int(rec["slot"]),
            feedback=Feedback[rec["feedback"]],
            n_transmitters=int(rec["n_tx"]),
            n_live=int(rec["n_live"]),
            contention=float("nan") if c is None else float(c),
            jammed=bool(rec["jammed"]),
            message_type=rec.get("message_type", ""),
        )


class TraceRecorder:
    """Accumulates :class:`SlotRecord` objects and derived arrays."""

    def __init__(self) -> None:
        self.records: List[SlotRecord] = []

    def record(
        self,
        outcome: SlotOutcome,
        n_live: int,
        contention: float = float("nan"),
    ) -> None:
        self.records.append(
            SlotRecord(
                slot=outcome.slot,
                feedback=outcome.feedback,
                n_transmitters=outcome.n_transmitters,
                n_live=n_live,
                contention=contention,
                jammed=outcome.jammed,
                message_type=type(outcome.message).__name__
                if outcome.message is not None
                else "",
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    # -- derived arrays ----------------------------------------------------

    def feedback_codes(self) -> np.ndarray:
        """0 = silence, 1 = success, 2 = noise, per slot."""
        code = {Feedback.SILENCE: 0, Feedback.SUCCESS: 1, Feedback.NOISE: 2}
        return np.array([code[r.feedback] for r in self.records], dtype=np.int8)

    def contentions(self) -> np.ndarray:
        """Per-slot contention ``C(t)`` (nan where unreported)."""
        return np.array([r.contention for r in self.records], dtype=np.float64)

    def live_counts(self) -> np.ndarray:
        return np.array([r.n_live for r in self.records], dtype=np.int64)

    def success_slots(self) -> np.ndarray:
        """Indices of slots carrying a successful broadcast."""
        return np.array(
            [r.slot for r in self.records if r.feedback is Feedback.SUCCESS],
            dtype=np.int64,
        )

    def utilization(self) -> float:
        """Fraction of recorded slots carrying a success."""
        if not self.records:
            return 0.0
        return float(np.mean(self.feedback_codes() == 1))

    def collision_rate(self) -> float:
        """Fraction of recorded slots that were noise."""
        if not self.records:
            return 0.0
        return float(np.mean(self.feedback_codes() == 2))

    # -- nan-aware contention aggregation ----------------------------------
    #
    # Contention is nan in every slot where no live protocol reported a
    # transmit probability (e.g. listen-only phases), so plain mean/max
    # would poison the whole trace with one such slot.  All aggregation
    # here reduces over the reported slots only.

    def mean_contention(self) -> float:
        """Mean ``C(t)`` over slots where it was reported (nan if none)."""
        c = self.contentions()
        if c.size == 0 or np.isnan(c).all():
            return float("nan")
        return float(np.nanmean(c))

    def max_contention(self) -> float:
        """Max ``C(t)`` over slots where it was reported (nan if none)."""
        c = self.contentions()
        if c.size == 0 or np.isnan(c).all():
            return float("nan")
        return float(np.nanmax(c))

    def contention_percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> Dict[float, float]:
        """``q -> percentile of C(t)`` over reported slots (nan if none)."""
        c = self.contentions()
        if c.size == 0 or np.isnan(c).all():
            return {float(q): float("nan") for q in qs}
        vals = np.nanpercentile(c, list(qs))
        return {float(q): float(v) for q, v in zip(qs, vals)}

    # -- JSONL round-trip ---------------------------------------------------

    def to_records(self) -> List[Dict[str, Any]]:
        """All slots in JSON-serializable form, in slot order."""
        return [r.as_record() for r in self.records]

    @classmethod
    def from_records(cls, records: Iterable[Dict[str, Any]]) -> "TraceRecorder":
        """Rebuild a recorder from :meth:`to_records` output."""
        rec = cls()
        rec.records = [SlotRecord.from_record(r) for r in records]
        return rec

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """One JSON object per slot; reload with :meth:`read_jsonl`."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as f:
            for r in self.records:
                f.write(json.dumps(r.as_record()) + "\n")
        return path

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "TraceRecorder":
        """Load a trace written by :meth:`write_jsonl`."""
        records = (
            json.loads(line)
            for line in Path(path).read_text().splitlines()
            if line.strip()
        )
        return cls.from_records(records)
