"""Run watchdogs: graceful cancellation of runaway adversarial runs.

The engine always terminates — every job dies at its deadline, so a run
is bounded by the instance horizon — but against a strong adversary that
bound can be astronomically far away while nothing useful happens.  A
certification sweep bisecting severities cannot afford a worker that
spends minutes grinding out a foregone conclusion.  A :class:`Watchdog`
attached to :func:`~repro.sim.engine.simulate` cuts such runs short:

* ``max_slots`` — a hard budget on simulated slots;
* ``max_seconds`` — a wall-clock budget (checked every
  :data:`WALL_CHECK_PERIOD` slots, so overshoot is bounded and cheap);
* ``stall_factor`` — a *stall detector*: trip when no delivery progress
  has been made for ``stall_factor`` times the feasibility bound (the
  largest job window in the instance, i.e. the longest any single job
  could legitimately need).

A tripped watchdog never raises.  The engine finalizes live jobs as
failed (exactly like a horizon cut), returns the partial
:class:`~repro.sim.metrics.SimulationResult` with its
:attr:`~repro.sim.metrics.SimulationResult.watchdog` field set to a
:class:`WatchdogTrip`, and emits a ``watchdog.<reason>`` telemetry
event when telemetry is attached — sweep workers keep their schema and
their lives.

Determinism and caching
-----------------------
Slot-budget and stall trips are deterministic functions of the run, so
results with a watchdog attached are reproducible and cacheable — the
experiment layer folds the watchdog into cache keys (see
:func:`repro.cache.run_key`'s ``extra``).  Wall-clock trips are *not*
deterministic; digests from wall-tripped runs are therefore never
written to the result cache (:mod:`repro.experiments.parallel` checks
:attr:`WatchdogTrip.deterministic`).  Attaching no watchdog costs the
hot loop exactly one ``is None`` guard per slot, and results stay
bit-identical to a detached run unless the watchdog actually trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidParameterError

__all__ = ["WALL_CHECK_PERIOD", "Watchdog", "WatchdogTrip"]

#: Wall-clock is sampled once per this many simulated slots — frequent
#: enough to bound overshoot, rare enough that ``perf_counter`` never
#: shows up in a profile.
WALL_CHECK_PERIOD = 512

#: Trip reasons (the suffix of the emitted ``watchdog.*`` event kind).
REASON_SLOTS = "slot_budget"
REASON_WALL = "wall_clock"
REASON_STALL = "stall"


@dataclass(frozen=True)
class WatchdogTrip:
    """Why, where, and how a watchdog cancelled a run."""

    #: One of ``"slot_budget"``, ``"wall_clock"``, ``"stall"``.
    reason: str
    #: Slot at which the run was cut.
    slot: int
    #: Slots actually simulated before the cut.
    slots_simulated: int
    #: Human-readable limit description (e.g. ``"max_slots=100000"``).
    detail: str

    @property
    def deterministic(self) -> bool:
        """Whether this trip reproduces for equal (inputs, seed).

        Slot-budget and stall trips depend only on simulated content;
        wall-clock trips depend on machine load and must never be
        cached.
        """
        return self.reason != REASON_WALL

    @property
    def event_kind(self) -> str:
        """The telemetry event kind this trip emits (``watchdog.*``)."""
        return f"watchdog.{self.reason}"


@dataclass(frozen=True)
class Watchdog:
    """Limits on one simulation run; any subset may be enabled.

    Parameters
    ----------
    max_slots:
        Cancel after this many simulated slots (deterministic).
    max_seconds:
        Cancel once the run has consumed this much wall-clock time
        (nondeterministic; checked every :data:`WALL_CHECK_PERIOD`
        slots).
    stall_factor:
        Cancel when no job has been delivered for
        ``stall_factor * max(job windows)`` consecutive simulated slots
        while jobs were live (deterministic).  The largest window is
        the feasibility bound: any single job that can succeed at all
        can succeed within its own window, so ``stall_factor`` is "how
        many times over the worst-case feasible wait do we tolerate
        zero progress".  Values below 1 would cancel runs the paper's
        guarantees still cover; a small integer (2-4) is typical.
    """

    max_slots: Optional[int] = None
    max_seconds: Optional[float] = None
    stall_factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_slots is not None and self.max_slots <= 0:
            raise InvalidParameterError(
                f"max_slots must be positive, got {self.max_slots}"
            )
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise InvalidParameterError(
                f"max_seconds must be positive, got {self.max_seconds}"
            )
        if self.stall_factor is not None and self.stall_factor <= 0:
            raise InvalidParameterError(
                f"stall_factor must be positive, got {self.stall_factor}"
            )

    @property
    def enabled(self) -> bool:
        """True when at least one limit is set."""
        return (
            self.max_slots is not None
            or self.max_seconds is not None
            or self.stall_factor is not None
        )

    def stall_slots(self, max_window: int) -> Optional[int]:
        """The concrete no-progress budget for an instance, in slots."""
        if self.stall_factor is None:
            return None
        return max(1, int(self.stall_factor * max_window))

    def describe(self) -> str:
        parts = []
        if self.max_slots is not None:
            parts.append(f"max_slots={self.max_slots}")
        if self.max_seconds is not None:
            parts.append(f"max_seconds={self.max_seconds:g}")
        if self.stall_factor is not None:
            parts.append(f"stall_factor={self.stall_factor:g}")
        return "Watchdog(" + ", ".join(parts) + ")" if parts else "Watchdog()"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.describe()
