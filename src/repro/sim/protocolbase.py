"""The protocol interface every contention-resolution strategy implements.

A protocol is a *per-job* state machine.  The engine drives it with the
slot loop::

    begin(slot)                      # once, at the job's release
    repeat while the job is live:
        msg = act(slot)              # None = listen, Message = transmit
        obs = ...channel resolution...
        observe(slot, obs)

The model gives jobs no global clock; protocols must only use ``slot``
relative to the slot passed to :meth:`begin` (local age).  The aligned
special case (Section 3) is the exception — window alignment implies a
shared slot index, and aligned protocols may use ``slot`` directly.  Each
protocol documents which convention it follows.

Success tracking is redundant on purpose: the engine decides ground-truth
delivery from channel outcomes, while protocols also track their own
success (collision detection lets a transmitter see its own result) so
they can stop transmitting.  Tests assert the two never disagree.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, Message
from repro.errors import ProtocolViolationError
from repro.sim.job import Job

__all__ = ["Protocol", "ProtocolContext"]


class ProtocolContext:
    """Everything a protocol is allowed to know at activation.

    Attributes
    ----------
    job_id:
        Simulator identity (used only to stamp outgoing messages).
    window:
        The job's window size ``w_j`` — known a priori per the model.
    rng:
        The job's private random stream.
    """

    __slots__ = ("job_id", "window", "rng")

    def __init__(self, job_id: int, window: int, rng: np.random.Generator) -> None:
        self.job_id = job_id
        self.window = window
        self.rng = rng

    @classmethod
    def for_job(cls, job: Job, rng: np.random.Generator) -> "ProtocolContext":
        return cls(job.job_id, job.window, rng)

    def data_message(self) -> DataMessage:
        """The job's unit data message."""
        return DataMessage(self.job_id)


class Protocol(abc.ABC):
    """Abstract per-job contention-resolution state machine.

    Subclasses implement :meth:`on_begin`, :meth:`on_act`, and
    :meth:`on_observe`; the base class enforces the legal calling order
    and maintains the ``started`` / ``succeeded`` / ``gave_up`` flags and
    the transmission counter.

    The base-class state lives in ``__slots__`` so the engine's per-slot
    reads of ``succeeded`` / ``gave_up`` / ``transmissions`` skip the
    instance dict; subclasses without their own ``__slots__`` still get a
    ``__dict__`` for protocol-specific state.
    """

    __slots__ = (
        "ctx",
        "started",
        "start_slot",
        "succeeded",
        "gave_up",
        "transmissions",
        "_awaiting_observation",
        "_events",
    )

    def __init__(self, ctx: ProtocolContext) -> None:
        self.ctx = ctx
        self.started = False
        self.start_slot: int = -1
        self.succeeded = False
        self.gave_up = False
        self.transmissions = 0
        self._awaiting_observation = False
        self._events = None  # telemetry sink; bound by the engine

    # -- engine-facing lifecycle ------------------------------------------

    def bind_telemetry(self, sink) -> None:
        """Attach an :class:`~repro.obs.events.EventSink` for lifecycle
        events.  The engine calls this before :meth:`begin` when a
        telemetry object is attached; without one, ``_events`` stays
        ``None`` and :meth:`emit` is never reached (all emission sites
        guard on the sink), so event work is strictly pay-for-use.
        """
        self._events = sink

    def emit(self, kind: str, slot: int = -1, **data) -> None:
        """Emit one lifecycle event, stamped with this job's id.

        No-op when no sink is bound.  Emission sites on hot paths
        should guard on ``self._events is not None`` themselves to
        skip building ``data`` kwargs.
        """
        if self._events is not None:
            self._events.emit(kind, slot, self.ctx.job_id, **data)

    def begin(self, slot: int) -> None:
        """Activate the protocol at its job's release slot."""
        if self.started:
            raise ProtocolViolationError("begin() called twice")
        self.started = True
        self.start_slot = slot
        self.on_begin(slot)

    def act(self, slot: int) -> Optional[Message]:
        """Return the message to transmit this slot, or None to listen."""
        if not self.started:
            raise ProtocolViolationError("act() before begin()")
        if self._awaiting_observation:
            raise ProtocolViolationError("act() called twice without observe()")
        self._awaiting_observation = True
        if self.done:
            return None
        msg = self.on_act(slot)
        if msg is not None:
            self.transmissions += 1
        return msg

    def observe(self, slot: int, obs: Observation) -> None:
        """Deliver the slot's channel observation."""
        if not self._awaiting_observation:
            raise ProtocolViolationError("observe() without a preceding act()")
        self._awaiting_observation = False
        if (
            obs.own_success
            and obs.message is not None
            and isinstance(obs.message, DataMessage)
            and obs.message.sender == self.ctx.job_id
        ):
            self.succeeded = True
        self.on_observe(slot, obs)

    # -- state queries -----------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the protocol has stopped interacting with the channel.

        A done protocol still receives observations (it may be listening
        passively in the model, but our engines skip it for speed; no
        implemented protocol acts on post-done feedback).
        """
        return self.succeeded or self.gave_up

    def local_age(self, slot: int) -> int:
        """Slots elapsed since activation (0 in the activation slot)."""
        return slot - self.start_slot

    # -- subclass hooks ------------------------------------------------------

    def on_begin(self, slot: int) -> None:
        """Hook: called once at activation (default: nothing)."""

    @abc.abstractmethod
    def on_act(self, slot: int) -> Optional[Message]:
        """Hook: decide this slot's action (never called once done)."""

    def on_observe(self, slot: int, obs: Observation) -> None:
        """Hook: digest the slot's feedback (default: nothing)."""
