"""Deterministic, independent random streams for reproducible simulation.

Every stochastic component of a simulation (each job's protocol, the
jammer, each workload generator) draws from its own ``numpy`` generator,
derived from a single root seed via :class:`numpy.random.SeedSequence`
spawning keyed on a stable label.  Two consequences:

* a simulation is exactly reproducible from ``(instance, seed)``;
* changing one component's number of draws (e.g. turning jamming on) does
  not perturb any other component's stream, so paired comparisons across
  configurations share randomness where it matters.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

import numpy as np

__all__ = ["RngFactory"]


def _label_key(label: str) -> Tuple[int, int, int, int]:
    """A stable 128-bit key for a stream label, as four 32-bit words.

    Derived with blake2b over the label's UTF-8 bytes.  Earlier versions
    used ``crc32`` (32 bits): two distinct labels collide with
    probability ~``k²/2³³`` across ``k`` labels, and a collision makes
    two "independent" streams *bit-identical* — silently correlating a
    job's protocol with, say, a fault stream.  128 bits puts collisions
    out of reach.  Changing the key derivation changes every stream, so
    the switch bumped :data:`repro.sim.engine.ENGINE_VERSION`.
    """
    digest = hashlib.blake2b(
        label.encode("utf-8"), digest_size=16, person=b"repro-rng-v1"
    ).digest()
    return tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )


class RngFactory:
    """Spawns named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root entropy.  Equal seeds yield identical streams for identical
        labels, regardless of creation order.

    Examples
    --------
    >>> f = RngFactory(7)
    >>> a = f.stream("job", 3)
    >>> b = RngFactory(7).stream("job", 3)
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._cache: Dict[tuple, np.random.Generator] = {}

    def stream(self, label: str, index: int = 0) -> np.random.Generator:
        """The generator for ``(label, index)``.

        Repeated calls with the same key return the *same* generator
        object (its state advances across calls); use distinct keys for
        independent streams.
        """
        key = (label, int(index))
        gen = self._cache.get(key)
        if gen is None:
            seq = np.random.SeedSequence(
                self.seed, spawn_key=_label_key(label) + (int(index),)
            )
            gen = np.random.default_rng(seq)
            self._cache[key] = gen
        return gen

    def fresh(self, label: str, index: int = 0) -> np.random.Generator:
        """A brand-new generator for the key (state reset to the origin).

        Unlike :meth:`stream`, this never returns a cached object; used by
        tests that need to replay a component's draws.
        """
        seq = np.random.SeedSequence(
            self.seed, spawn_key=_label_key(label) + (int(index),)
        )
        return np.random.default_rng(seq)

    def job_rng(self, job_id: int) -> np.random.Generator:
        """The protocol stream of job ``job_id``."""
        return self.stream("job", job_id)

    def channel_rng(self) -> np.random.Generator:
        """The jammer/channel stream."""
        return self.stream("channel")

    def workload_rng(self, index: int = 0) -> np.random.Generator:
        """A workload-generation stream."""
        return self.stream("workload", index)
