"""γ-slack feasibility (Section 1.1).

An instance is **γ-slack feasible** when all messages could be scheduled by
their deadlines even if every message were ``1/γ`` slots long — i.e. the
instance only ever needs a γ fraction of channel bandwidth.

For unit jobs with windows this reduces to a Hall-type interval condition:
for every interval ``[s, e)``, the jobs whose windows nest inside it must
fit, so ``(# nested jobs) * ceil(1/γ) <= e - s``.  The condition is
necessary (those jobs have nowhere else to go) and sufficient (preemptive
EDF meets all deadlines when every interval satisfies it).  It is enough to
test intervals whose endpoints are job releases and deadlines.

The central quantity is the **peak density**

    density(I) = max over intervals [s, e) of  (# jobs nested in [s,e)) / (e - s)

An instance is γ-slack feasible iff ``density(I) <= γ`` (taking message
length ``1/γ`` as a real number, matching the paper's "constant fraction of
bandwidth" reading).  We expose the density directly so workload generators
can report the exact slack they achieved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.instance import Instance

__all__ = [
    "DensityReport",
    "peak_density",
    "is_slack_feasible",
    "slack_of",
    "verify_edf_schedulable",
]


@dataclass(frozen=True, slots=True)
class DensityReport:
    """The peak interval density and the interval achieving it."""

    density: float
    interval: Tuple[int, int]
    nested_jobs: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        s, e = self.interval
        return (
            f"peak density {self.density:.4f} on [{s},{e}) "
            f"({self.nested_jobs} nested jobs / {e - s} slots)"
        )


def peak_density(instance: Instance) -> DensityReport:
    """Compute the peak interval density of an instance.

    Runs in ``O(R * D)`` numpy work for ``R`` distinct releases and ``D``
    distinct deadlines, which is comfortably fast for the instance sizes
    the benchmarks use (thousands of jobs).

    Returns
    -------
    DensityReport
        Density 0 on the degenerate empty instance.
    """
    if len(instance) == 0:
        return DensityReport(0.0, (0, 0), 0)

    releases = np.array([j.release for j in instance.jobs], dtype=np.int64)
    deadlines = np.array([j.deadline for j in instance.jobs], dtype=np.int64)

    rs = np.unique(releases)  # candidate interval starts, ascending
    ds = np.unique(deadlines)  # candidate interval ends, ascending

    best_density = 0.0
    best_interval = (int(rs[0]), int(ds[-1]))
    best_count = 0

    # For each candidate start s (descending), count nested jobs per end e
    # with one histogram + cumsum; vectorized over all ends at once.
    order = np.argsort(releases)
    rel_sorted = releases[order]
    dl_sorted = deadlines[order]

    for s in rs[::-1]:
        lo = int(np.searchsorted(rel_sorted, s, side="left"))
        if lo >= len(rel_sorted):
            continue
        # deadlines of jobs released at or after s
        tail = dl_sorted[lo:]
        # nested count for end e = number of tail deadlines <= e
        counts = np.searchsorted(np.sort(tail), ds, side="right")
        lengths = ds - s
        valid = lengths > 0
        if not np.any(valid):
            continue
        dens = counts[valid] / lengths[valid]
        k = int(np.argmax(dens))
        if dens[k] > best_density:
            e = int(ds[valid][k])
            best_density = float(dens[k])
            best_interval = (int(s), e)
            best_count = int(counts[valid][k])
    return DensityReport(best_density, best_interval, best_count)


def is_slack_feasible(instance: Instance, gamma: float) -> bool:
    """Whether ``instance`` is γ-slack feasible.

    Parameters
    ----------
    gamma:
        Slack parameter in ``(0, 1]``.  Smaller γ means more slack demanded.
    """
    if not 0.0 < gamma <= 1.0:
        raise InvalidParameterError(f"gamma must be in (0, 1], got {gamma}")
    return peak_density(instance).density <= gamma + 1e-12


def slack_of(instance: Instance) -> float:
    """The tightest γ for which the instance is γ-slack feasible.

    Equal to the peak density; 0 for an empty instance.
    """
    return peak_density(instance).density


def verify_edf_schedulable(
    instance: Instance, message_length: int = 1
) -> Optional[Tuple[int, int]]:
    """Directly simulate preemptive EDF with ``message_length``-slot jobs.

    A constructive cross-check of the interval condition: returns ``None``
    when every job finishes by its deadline under earliest-deadline-first,
    otherwise the ``(job_id, deadline)`` of the first miss.  Used by tests
    to validate :func:`peak_density` (an instance has density ``<= 1/c``
    iff EDF schedules it with message length ``c``).
    """
    if message_length < 1:
        raise InvalidParameterError(
            f"message_length must be >= 1, got {message_length}"
        )
    jobs = list(instance.by_release)
    if not jobs:
        return None
    import heapq

    remaining = {j.job_id: message_length for j in jobs}
    heap: list[tuple[int, int]] = []  # (deadline, job_id)
    idx = 0
    t = jobs[0].release
    horizon = instance.horizon
    while t < horizon:
        while idx < len(jobs) and jobs[idx].release <= t:
            heapq.heappush(heap, (jobs[idx].deadline, jobs[idx].job_id))
            idx += 1
        if heap:
            deadline, jid = heap[0]
            if deadline <= t:
                return (jid, deadline)
            remaining[jid] -= 1
            if remaining[jid] == 0:
                heapq.heappop(heap)
            t += 1
        else:
            # jump to the next release
            t = jobs[idx].release if idx < len(jobs) else horizon
    for deadline, jid in heap:
        if remaining[jid] > 0:
            return (jid, deadline)
    return None
