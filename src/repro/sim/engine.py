"""The slot-by-slot simulation engine.

Drives an :class:`~repro.sim.instance.Instance` of jobs, each running its
own :class:`~repro.sim.protocolbase.Protocol`, over a shared
multiple-access channel:

1. activate jobs whose release slot arrived;
2. collect each live protocol's action (transmit / listen);
3. resolve the slot (jammer included);
4. deliver the resulting observation to every live protocol;
5. retire jobs that succeeded, gave up, or hit their deadline.

Ground-truth delivery is decided by the engine from channel outcomes — a
job succeeded iff a :class:`DataMessage` with its id was delivered (either
directly or piggybacked on a leader's timekeeper beacon), strictly inside
its window.  Protocol self-reported success is cross-checked against this
and any disagreement raises :class:`SimulationError`, catching a whole
class of protocol bugs in every test that runs a simulation.

Hot-path layout
---------------
The inner loop is pure Python and bounds every Monte-Carlo experiment in
the suite, so it is written for throughput:

* live jobs are kept in flat parallel lists (ids, jobs, protocols,
  pre-bound ``act``/``observe`` methods, deadlines) instead of a dict,
  compacted only on retirement;
* slot resolution is inlined (semantically identical to
  :func:`repro.channel.channel.resolve_slot`), and the jammer callout is
  skipped entirely for the benign :class:`NoJammer`;
* observations are shared frozen singletons where their content is
  identical for every listener (silence / noise), so silent slots cost
  one bound-method call per live job and nothing else;
* contention tracking (the per-slot ``last_p`` sum) runs only when a
  trace is recorded, with a one-time per-protocol capability check
  instead of a per-slot ``getattr`` probe;
* message delivery dispatches on the :attr:`Message.kind` tag rather
  than ``isinstance`` chains.

Fault and telemetry hooks
-------------------------
A :class:`~repro.faults.plan.FaultPlan` (``faults=``) lets the engine
perturb feedback, clocks, and job lifecycles, an
:class:`~repro.sim.invariants.InvariantChecker` (``invariants=``) audits
every slot, a :class:`~repro.obs.telemetry.Telemetry` object
(``telemetry=``) collects metrics, lifecycle events, and spans, and a
:class:`~repro.sim.watchdog.Watchdog` (``watchdog=``) cancels runaway
adversarial runs gracefully with a partial result.  All
four are strictly pay-for-what-you-use: with none attached the hot
loop executes the exact same statements as before (the hook branches
collapse to a handful of ``is None`` guards outside the per-listener
fan-out), so results stay bit-identical to :data:`ENGINE_VERSION` 2 and
throughput is preserved.  Telemetry draws no randomness and never
alters results — it only observes — so it is *not* folded into cache
keys.  Fault randomness draws from dedicated RNG streams, never from
the channel or job streams.

Any change that alters simulation *semantics* (outcomes, slot counts,
randomness consumption) must bump :data:`ENGINE_VERSION`, which the
result cache folds into its content digests.  Fault-injected runs are
additionally keyed on their plan (see :func:`repro.cache.run_key`), so
attaching a plan never needs a version bump.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.channel import MultipleAccessChannel, SlotOutcome
from repro.channel.feedback import Feedback, Observation
from repro.channel.jamming import Jammer, NoJammer
from repro.channel.messages import (
    KIND_BEACON,
    KIND_DATA,
    DataMessage,
    Message,
    TimekeeperBeacon,
)
from repro.errors import InvalidParameterError, SimulationError
from repro.sim.instance import Instance
from repro.sim.job import Job, JobStatus
from repro.sim.metrics import JobOutcome, SimulationResult
from repro.sim.protocolbase import Protocol, ProtocolContext
from repro.sim.rng import RngFactory
from repro.sim.trace import TraceRecorder
from repro.sim.watchdog import (
    REASON_SLOTS,
    REASON_STALL,
    REASON_WALL,
    WALL_CHECK_PERIOD,
    Watchdog,
    WatchdogTrip,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan
    from repro.obs.telemetry import Telemetry
    from repro.sim.invariants import InvariantChecker

__all__ = ["ENGINE_VERSION", "ProtocolFactory", "SlotObserver", "simulate"]

#: Version of the engine's observable simulation semantics.  Bump whenever
#: a change can alter any :class:`SimulationResult` for some input — the
#: content-addressed result cache keys on it, so stale entries invalidate
#: themselves.
#: 3: RNG stream keys moved from crc32 (32-bit, collision-prone) to a
#: 128-bit blake2b derivation (see :func:`repro.sim.rng._label_key`);
#: every random stream, and therefore every sampled outcome, changed.
ENGINE_VERSION = 3

#: Builds the protocol for one job, given the job and its private stream.
ProtocolFactory = Callable[[Job, np.random.Generator], Protocol]

#: Optional per-slot callback ``(outcome, live_job_ids)`` for instrumentation.
SlotObserver = Callable[[SlotOutcome, Tuple[int, ...]], None]

# Shared immutable observations; their content is independent of the
# perceiving job, so one object per (feedback, transmitted) pair serves
# every listener of every slot.
_OBS_SILENCE = Observation.silence(False)
_OBS_SILENCE_TX = Observation.silence(True)
_OBS_NOISE = Observation.noise(False)
_OBS_NOISE_TX = Observation.noise(True)

_SILENCE = Feedback.SILENCE
_SUCCESS = Feedback.SUCCESS
_NOISE = Feedback.NOISE


def _delivered_ids(outcome: SlotOutcome) -> Tuple[int, ...]:
    """Job ids whose data message was delivered in this slot.

    A delivery is either a bare :class:`DataMessage` or one piggybacked as
    the ``payload`` of a :class:`TimekeeperBeacon` (PUNCTUAL leaders hand
    over / abdicate with their data attached).
    """
    msg = outcome.message
    if msg is None:
        return ()
    kind = msg.kind
    if kind == KIND_BEACON:
        if msg.payload is not None:
            return (msg.payload.sender,)
        return ()
    if kind == KIND_DATA:
        return (msg.sender,)
    return ()


def simulate(
    instance: Instance,
    factory: ProtocolFactory,
    *,
    jammer: Optional[Jammer] = None,
    seed: int = 0,
    trace: bool = False,
    observers: Sequence[SlotObserver] = (),
    horizon: Optional[int] = None,
    faults: Optional["FaultPlan"] = None,
    invariants: Union[bool, "InvariantChecker"] = False,
    telemetry: Optional["Telemetry"] = None,
    watchdog: Optional[Watchdog] = None,
) -> SimulationResult:
    """Run one complete simulation and return per-job outcomes.

    Parameters
    ----------
    instance:
        The jobs to simulate.
    factory:
        Builds each job's protocol; receives ``(job, rng)`` where ``rng``
        is the job's private stream from :class:`RngFactory`.
    jammer:
        Optional channel adversary.
    seed:
        Root seed; fixes every random stream in the run.
    trace:
        Record a per-slot :class:`TraceRecorder` (sums per-slot contention
        from protocols that expose ``last_p``).
    observers:
        Extra per-slot callbacks (e.g. schedule reconstruction).
    horizon:
        Last slot (exclusive) to simulate; defaults to the instance
        horizon.  Jobs are hard-stopped at their own deadlines regardless.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`.  A plan may carry
        its own jammer, mutually exclusive with ``jammer=``.  A no-op
        plan behaves exactly like ``None``.
    invariants:
        ``True`` to audit the run with a fresh
        :class:`~repro.sim.invariants.InvariantChecker`, or a
        caller-supplied checker instance (inspect it after the run).
        Violations raise :class:`repro.errors.InvariantViolationError`.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` collector.
        When attached, the engine records per-slot channel statistics
        and contention, emits job lifecycle events, binds protocols to
        the event sink (so they emit their own phase events), and times
        the run as a ``simulate`` span.  Never changes results.
    watchdog:
        Optional :class:`~repro.sim.watchdog.Watchdog`.  When one of its
        limits trips, the run is cancelled *gracefully*: live jobs are
        finalized as failed (like a horizon cut), a ``watchdog.*``
        telemetry event is emitted when telemetry is attached, and the
        partial result carries the :class:`~repro.sim.watchdog.WatchdogTrip`
        in :attr:`~repro.sim.metrics.SimulationResult.watchdog`.  Nothing
        is raised.  Absent (or with no limits set) the hot loop pays one
        ``is None`` guard per slot and results are bit-identical.

    Returns
    -------
    SimulationResult
    """
    rngs = RngFactory(seed)
    ch_rng = rngs.channel_rng()

    bound = None
    if faults is not None and not faults.is_noop:
        bound = faults.bind(instance, rngs)
        if bound.jammer is not None:
            if jammer is not None:
                raise InvalidParameterError(
                    "got a jammer= argument and a FaultPlan with its own "
                    "jammer; pick one adversary"
                )
            jammer = bound.jammer

    jam: Jammer = jammer if jammer is not None else NoJammer()
    no_jam = type(jam) is NoJammer
    if not no_jam:
        jam.reset()  # budgeted jammers: restore per-run counters
    corrupt = bound.feedback if bound is not None else None
    f_rng = bound.feedback_rng if corrupt is not None else None

    checker: Optional["InvariantChecker"]
    if invariants is True:
        from repro.sim.invariants import InvariantChecker

        checker = InvariantChecker()
    elif invariants:
        checker = invariants  # type: ignore[assignment]
    else:
        checker = None
    if checker is not None and corrupt is not None:
        if corrupt.p_success_erasure > 0.0 and corrupt.affect_transmitters:
            # an erased transmitter legitimately re-sends; only the
            # duplicate-delivery check is relaxed.
            checker.allow_redelivery = True

    recorder = TraceRecorder() if trace else None
    # SlotOutcome objects are only materialised for instrumentation.
    need_outcome = recorder is not None or bool(observers)

    jobs_sorted = list(instance.by_release)
    if bound is not None and bound.has_job_faults:
        # late releases reorder activation; keep ties in by_release order
        order = sorted(
            range(len(jobs_sorted)),
            key=lambda i: (bound.release_of(jobs_sorted[i]), i),
        )
        jobs_sorted = [jobs_sorted[i] for i in order]
        releases = [bound.release_of(j) for j in jobs_sorted]
    else:
        releases = [j.release for j in jobs_sorted]
    n_total = len(jobs_sorted)
    end = instance.horizon if horizon is None else min(horizon, instance.horizon)

    # Telemetry is observational only: it consumes no randomness and
    # takes no branch a protocol can see, so attaching it keeps results
    # bit-identical.  With telemetry off, the per-slot cost is a single
    # ``is None`` check (tele_slot), matching the recorder discipline.
    tele = telemetry
    if tele is not None:
        tele.on_run_start(
            seed=seed,
            n_jobs=n_total,
            horizon=end,
            jammer=None if no_jam else jam,
            faults=faults if bound is not None else None,
        )
        tele_slot = tele.record_slot
        tele_events = tele.events
    else:
        tele_slot = None
        tele_events = None
    track_contention = recorder is not None or tele_slot is not None

    # Flat parallel views of the live set (same index across all lists).
    live_ids: List[int] = []
    live_jobs: List[Job] = []
    live_protos: List[Protocol] = []
    live_act: List[Callable[[int], Optional[Message]]] = []
    live_observe: List[Callable[[int, Observation], None]] = []
    live_deadline: List[int] = []
    live_has_p: List[bool] = []
    live_jammed: List[int] = []  # per-job attempts spent into jammed slots

    outcomes: Dict[int, JobOutcome] = {}
    delivered_slot: Dict[int, int] = {}

    next_job = 0
    t = releases[0] if jobs_sorted else 0
    slots_simulated = 0
    channel_attempts = 0  # total send attempts the channel saw

    # Watchdog limits (see sim/watchdog.py).  All state lives in locals;
    # with no watchdog the per-slot cost is a single ``is None`` guard.
    wd = watchdog if watchdog is not None and watchdog.enabled else None
    wd_trip: Optional[WatchdogTrip] = None
    if wd is not None:
        wd_slot_limit = wd.max_slots
        wd_deadline = (
            time.perf_counter() + wd.max_seconds
            if wd.max_seconds is not None
            else None
        )
        wd_stall_limit = wd.stall_slots(
            max((j.window for j in jobs_sorted), default=1)
        )
        wd_progress_mark = 0  # slots_simulated at the last progress sign

    def finalize(job: Job, proto: Protocol, jammed_tx: int = 0) -> None:
        if job.job_id in delivered_slot:
            status = JobStatus.SUCCEEDED
            comp = delivered_slot[job.job_id]
        elif proto.gave_up:
            status = JobStatus.GAVE_UP
            comp = -1
        else:
            status = JobStatus.FAILED
            comp = -1
        if proto.succeeded and status is not JobStatus.SUCCEEDED:
            raise SimulationError(
                f"job {job.job_id} claims success but no delivery was observed"
            )
        if tele_events is not None:
            if status is JobStatus.SUCCEEDED:
                tele_events.emit(
                    "job.success",
                    comp,
                    job.job_id,
                    latency=comp - job.release + 1,
                    transmissions=proto.transmissions,
                )
            elif status is JobStatus.GAVE_UP:
                tele_events.emit("job.gave_up", -1, job.job_id)
            else:
                tele_events.emit("job.deadline_miss", job.deadline, job.job_id)
        outcomes[job.job_id] = JobOutcome(
            job, status, comp, proto.transmissions, jammed_tx
        )

    while t < end or live_protos:
        if t >= end and not live_protos:
            break
        # 1. activate
        if wd is not None and next_job < n_total and releases[next_job] == t:
            wd_progress_mark = slots_simulated  # activation counts as progress
        while next_job < n_total and releases[next_job] == t:
            job = jobs_sorted[next_job]
            proto = factory(job, rngs.job_rng(job.job_id))
            if tele_events is not None:
                # Bind before begin(): protocols that construct inner
                # machines in on_begin propagate the sink to them.
                bind = getattr(proto, "bind_telemetry", None)
                if bind is not None:
                    bind(tele_events)
                tele_events.emit(
                    "job.activated", t, job.job_id, window=job.window
                )
            if bound is None:
                proto.begin(t)
                act_fn = proto.act
                observe_fn = proto.observe
            else:
                act_fn, observe_fn = bound.activate(job, proto, t)
            if checker is not None:
                checker.on_activate(job, proto, t)
            live_ids.append(job.job_id)
            live_jobs.append(job)
            live_protos.append(proto)
            live_act.append(act_fn)
            live_observe.append(observe_fn)
            live_deadline.append(job.deadline)
            live_has_p.append(hasattr(proto, "last_p"))
            live_jammed.append(0)
            next_job += 1
        if next_job < n_total and not live_protos:
            # jump over idle gaps between batches
            t = releases[next_job]
            continue

        n_live = len(live_protos)

        # 2. collect actions
        transmissions: List[Tuple[int, Message]] = []
        tx_idx: List[int] = []
        for i in range(n_live):
            msg = live_act[i](t)
            if msg is not None:
                transmissions.append((live_ids[i], msg))
                tx_idx.append(i)

        if track_contention:
            # Contention tracking pays for itself only under tracing or
            # telemetry.  The capability check is one-time per protocol,
            # upgraded lazily for wrappers that grow ``last_p`` on their
            # first act().
            contention = 0.0
            have_contention = False
            for i in range(n_live):
                if live_has_p[i]:
                    contention += float(live_protos[i].last_p)  # type: ignore[attr-defined]
                    have_contention = True
                else:
                    p = getattr(live_protos[i], "last_p", None)
                    if p is not None:
                        live_has_p[i] = True
                        contention += float(p)
                        have_contention = True

        # 3 + 4. resolve the slot and fan the observation out.  Inlined
        # resolve_slot(): silence when nobody transmits, success when
        # exactly one transmits un-jammed, noise otherwise.
        slots_simulated += 1
        outcome: Optional[SlotOutcome] = None
        delivered_now = -1  # consumed only by the invariant checker
        n_tx = len(transmissions)
        channel_attempts += n_tx
        if n_tx == 0:
            jammed = (not no_jam) and jam.attempt(t, 0, None, ch_rng)
            obs = _OBS_NOISE if jammed else _OBS_SILENCE
            if need_outcome:
                outcome = SlotOutcome(
                    t, _NOISE if jammed else _SILENCE, None, 0, jammed
                )
            if corrupt is None:
                for observe in live_observe:
                    observe(t, obs)
            else:
                for observe in live_observe:
                    observe(t, corrupt.corrupt(obs, f_rng))
        elif n_tx == 1:
            jid0, msg0 = transmissions[0]
            i0 = tx_idx[0]
            jammed = (not no_jam) and jam.attempt(t, 1, msg0, ch_rng)
            if jammed:
                live_jammed[i0] += 1
                if need_outcome:
                    outcome = SlotOutcome(t, _NOISE, None, 1, True)
                if corrupt is None:
                    for i in range(n_live):
                        live_observe[i](
                            t, _OBS_NOISE_TX if i == i0 else _OBS_NOISE
                        )
                else:
                    for i in range(n_live):
                        live_observe[i](
                            t,
                            corrupt.corrupt(
                                _OBS_NOISE_TX if i == i0 else _OBS_NOISE,
                                f_rng,
                            ),
                        )
            else:
                if need_outcome:
                    outcome = SlotOutcome(t, _SUCCESS, msg0, 1, False)
                kind = msg0.kind
                if kind == KIND_DATA:
                    delivered_slot.setdefault(msg0.sender, t)
                    delivered_now = msg0.sender
                elif kind == KIND_BEACON and msg0.payload is not None:
                    delivered_slot.setdefault(msg0.payload.sender, t)
                    delivered_now = msg0.payload.sender
                obs_listen = Observation(_SUCCESS, msg0, False, False)
                obs_tx = Observation(_SUCCESS, msg0, True, msg0.sender == jid0)
                if corrupt is None:
                    for i in range(n_live):
                        live_observe[i](t, obs_tx if i == i0 else obs_listen)
                else:
                    for i in range(n_live):
                        live_observe[i](
                            t,
                            corrupt.corrupt(
                                obs_tx if i == i0 else obs_listen, f_rng
                            ),
                        )
        else:
            jammed = (not no_jam) and jam.attempt(t, n_tx, None, ch_rng)
            if jammed:
                for i in tx_idx:
                    live_jammed[i] += 1
            if need_outcome:
                outcome = SlotOutcome(t, _NOISE, None, n_tx, jammed)
            k = 0
            if corrupt is None:
                for i in range(n_live):
                    if k < n_tx and tx_idx[k] == i:
                        live_observe[i](t, _OBS_NOISE_TX)
                        k += 1
                    else:
                        live_observe[i](t, _OBS_NOISE)
            else:
                for i in range(n_live):
                    if k < n_tx and tx_idx[k] == i:
                        live_observe[i](t, corrupt.corrupt(_OBS_NOISE_TX, f_rng))
                        k += 1
                    else:
                        live_observe[i](t, corrupt.corrupt(_OBS_NOISE, f_rng))

        if checker is not None:
            checker.after_slot(t, delivered_now, live_ids, live_protos, tx_idx)

        if tele_slot is not None:
            tele_slot(
                n_tx,
                jammed,
                n_live,
                contention if have_contention else float("nan"),
            )

        if recorder is not None:
            assert outcome is not None
            recorder.record(
                outcome,
                n_live=n_live,
                contention=contention if have_contention else float("nan"),
            )
        if observers:
            assert outcome is not None
            ids = tuple(live_ids)
            for cb in observers:
                cb(outcome, ids)

        # 5. retire
        t += 1
        any_dead = False
        for i in range(n_live):
            p = live_protos[i]
            if p.succeeded or p.gave_up or t >= live_deadline[i]:
                any_dead = True
                break
        if any_dead:
            keep_ids: List[int] = []
            keep_jobs: List[Job] = []
            keep_protos: List[Protocol] = []
            keep_act: List[Callable[[int], Optional[Message]]] = []
            keep_observe: List[Callable[[int, Observation], None]] = []
            keep_deadline: List[int] = []
            keep_has_p: List[bool] = []
            keep_jammed: List[int] = []
            for i in range(n_live):
                p = live_protos[i]
                if p.succeeded or p.gave_up or t >= live_deadline[i]:
                    finalize(live_jobs[i], p, live_jammed[i])
                else:
                    keep_ids.append(live_ids[i])
                    keep_jobs.append(live_jobs[i])
                    keep_protos.append(p)
                    keep_act.append(live_act[i])
                    keep_observe.append(live_observe[i])
                    keep_deadline.append(live_deadline[i])
                    keep_has_p.append(live_has_p[i])
                    keep_jammed.append(live_jammed[i])
            live_ids = keep_ids
            live_jobs = keep_jobs
            live_protos = keep_protos
            live_act = keep_act
            live_observe = keep_observe
            live_deadline = keep_deadline
            live_has_p = keep_has_p
            live_jammed = keep_jammed

        if wd is not None:
            if delivered_now >= 0:
                wd_progress_mark = slots_simulated
            if wd_slot_limit is not None and slots_simulated >= wd_slot_limit:
                wd_trip = WatchdogTrip(
                    REASON_SLOTS,
                    t - 1,
                    slots_simulated,
                    f"max_slots={wd_slot_limit}",
                )
            elif (
                wd_stall_limit is not None
                and live_protos
                and slots_simulated - wd_progress_mark >= wd_stall_limit
            ):
                wd_trip = WatchdogTrip(
                    REASON_STALL,
                    t - 1,
                    slots_simulated,
                    f"no delivery for {wd_stall_limit} slots "
                    f"(stall_factor={wd.stall_factor:g})",
                )
            elif (
                wd_deadline is not None
                and slots_simulated % WALL_CHECK_PERIOD == 0
                and time.perf_counter() > wd_deadline
            ):
                wd_trip = WatchdogTrip(
                    REASON_WALL,
                    t - 1,
                    slots_simulated,
                    f"max_seconds={wd.max_seconds:g}",
                )
            if wd_trip is not None:
                break

        if next_job >= n_total and not live_protos:
            break

    if wd_trip is not None:
        # Graceful cancellation: jobs still live at the cut become failures
        # (exactly the horizon-cut semantics) and the result is partial.
        for i in range(len(live_protos)):
            finalize(live_jobs[i], live_protos[i], live_jammed[i])
        if tele_events is not None:
            tele_events.emit(
                wd_trip.event_kind,
                wd_trip.slot,
                -1,
                slots_simulated=wd_trip.slots_simulated,
                detail=wd_trip.detail,
            )

    # Jobs never activated (horizon cut): mark failed with zero attempts.
    for job in jobs_sorted:
        if job.job_id not in outcomes:
            outcomes[job.job_id] = JobOutcome(job, JobStatus.FAILED, -1, 0)

    ordered = tuple(outcomes[j.job_id] for j in instance.by_release)
    result = SimulationResult(
        instance=instance,
        outcomes=ordered,
        slots_simulated=slots_simulated,
        trace=recorder,
        watchdog=wd_trip,
        channel_attempts=channel_attempts,
    )
    if tele is not None:
        tele.on_run_end(result)
    return result
