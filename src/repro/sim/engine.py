"""The slot-by-slot simulation engine.

Drives an :class:`~repro.sim.instance.Instance` of jobs, each running its
own :class:`~repro.sim.protocolbase.Protocol`, over a shared
:class:`~repro.channel.channel.MultipleAccessChannel`:

1. activate jobs whose release slot arrived;
2. collect each live protocol's action (transmit / listen);
3. resolve the slot on the channel (jammer included);
4. deliver the resulting observation to every live protocol;
5. retire jobs that succeeded, gave up, or hit their deadline.

Ground-truth delivery is decided by the engine from channel outcomes — a
job succeeded iff a :class:`DataMessage` with its id was delivered (either
directly or piggybacked on a leader's timekeeper beacon), strictly inside
its window.  Protocol self-reported success is cross-checked against this
and any disagreement raises :class:`SimulationError`, catching a whole
class of protocol bugs in every test that runs a simulation.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.channel import MultipleAccessChannel, SlotOutcome
from repro.channel.jamming import Jammer
from repro.channel.messages import DataMessage, Message, TimekeeperBeacon
from repro.errors import SimulationError
from repro.sim.instance import Instance
from repro.sim.job import Job, JobStatus
from repro.sim.metrics import JobOutcome, SimulationResult
from repro.sim.protocolbase import Protocol, ProtocolContext
from repro.sim.rng import RngFactory
from repro.sim.trace import TraceRecorder

__all__ = ["ProtocolFactory", "SlotObserver", "simulate"]

#: Builds the protocol for one job, given the job and its private stream.
ProtocolFactory = Callable[[Job, np.random.Generator], Protocol]

#: Optional per-slot callback ``(outcome, live_job_ids)`` for instrumentation.
SlotObserver = Callable[[SlotOutcome, Tuple[int, ...]], None]


def _delivered_ids(outcome: SlotOutcome) -> Tuple[int, ...]:
    """Job ids whose data message was delivered in this slot.

    A delivery is either a bare :class:`DataMessage` or one piggybacked as
    the ``payload`` of a :class:`TimekeeperBeacon` (PUNCTUAL leaders hand
    over / abdicate with their data attached).
    """
    msg = outcome.message
    if msg is None:
        return ()
    if isinstance(msg, TimekeeperBeacon):
        if msg.payload is not None:
            return (msg.payload.sender,)
        return ()
    if isinstance(msg, DataMessage):
        return (msg.sender,)
    return ()


def simulate(
    instance: Instance,
    factory: ProtocolFactory,
    *,
    jammer: Optional[Jammer] = None,
    seed: int = 0,
    trace: bool = False,
    observers: Sequence[SlotObserver] = (),
    horizon: Optional[int] = None,
) -> SimulationResult:
    """Run one complete simulation and return per-job outcomes.

    Parameters
    ----------
    instance:
        The jobs to simulate.
    factory:
        Builds each job's protocol; receives ``(job, rng)`` where ``rng``
        is the job's private stream from :class:`RngFactory`.
    jammer:
        Optional channel adversary.
    seed:
        Root seed; fixes every random stream in the run.
    trace:
        Record a per-slot :class:`TraceRecorder` (sums per-slot contention
        from protocols that expose ``last_p``).
    observers:
        Extra per-slot callbacks (e.g. schedule reconstruction).
    horizon:
        Last slot (exclusive) to simulate; defaults to the instance
        horizon.  Jobs are hard-stopped at their own deadlines regardless.

    Returns
    -------
    SimulationResult
    """
    rngs = RngFactory(seed)
    channel = MultipleAccessChannel(jammer=jammer, rng=rngs.channel_rng())
    recorder = TraceRecorder() if trace else None

    jobs_sorted = list(instance.by_release)
    end = instance.horizon if horizon is None else min(horizon, instance.horizon)

    live: Dict[int, Tuple[Job, Protocol]] = {}
    outcomes: Dict[int, JobOutcome] = {}
    delivered_slot: Dict[int, int] = {}

    next_job = 0
    t = jobs_sorted[0].release if jobs_sorted else 0
    # Fast-forward the channel clock to the first release so slot indices
    # line up with the instance timeline.
    channel.now = t
    slots_simulated = 0

    def finalize(job: Job, proto: Protocol) -> None:
        if job.job_id in delivered_slot:
            status = JobStatus.SUCCEEDED
            comp = delivered_slot[job.job_id]
        elif proto.gave_up:
            status = JobStatus.GAVE_UP
            comp = -1
        else:
            status = JobStatus.FAILED
            comp = -1
        if proto.succeeded and status is not JobStatus.SUCCEEDED:
            raise SimulationError(
                f"job {job.job_id} claims success but no delivery was observed"
            )
        outcomes[job.job_id] = JobOutcome(job, status, comp, proto.transmissions)

    while t < end or live:
        if t >= end and not live:
            break
        # 1. activate
        while next_job < len(jobs_sorted) and jobs_sorted[next_job].release == t:
            job = jobs_sorted[next_job]
            proto = factory(job, rngs.job_rng(job.job_id))
            proto.begin(t)
            live[job.job_id] = (job, proto)
            next_job += 1
        if next_job < len(jobs_sorted) and not live:
            # jump over idle gaps between batches
            t = jobs_sorted[next_job].release
            channel.now = t
            continue

        # 2. collect actions
        transmissions: List[Tuple[int, Message]] = []
        contention = 0.0
        have_contention = False
        for jid, (job, proto) in live.items():
            msg = proto.act(t)
            if msg is not None:
                transmissions.append((jid, msg))
            p = getattr(proto, "last_p", None)
            if p is not None:
                contention += float(p)
                have_contention = True

        # 3. resolve
        outcome = channel.step(transmissions)
        slots_simulated += 1
        for jid in _delivered_ids(outcome):
            delivered_slot.setdefault(jid, t)

        # 4. observe
        transmitted_ids = {jid for jid, _ in transmissions}
        for jid, (job, proto) in live.items():
            obs = MultipleAccessChannel.observation_for(
                outcome, jid, jid in transmitted_ids
            )
            proto.observe(t, obs)

        if recorder is not None:
            recorder.record(
                outcome,
                n_live=len(live),
                contention=contention if have_contention else float("nan"),
            )
        if observers:
            ids = tuple(live.keys())
            for cb in observers:
                cb(outcome, ids)

        # 5. retire
        t += 1
        dead = [
            jid
            for jid, (job, proto) in live.items()
            if proto.done or t >= job.deadline
        ]
        for jid in dead:
            job, proto = live.pop(jid)
            finalize(job, proto)

        if next_job >= len(jobs_sorted) and not live:
            break

    # Jobs never activated (horizon cut): mark failed with zero attempts.
    for job in jobs_sorted:
        if job.job_id not in outcomes:
            outcomes[job.job_id] = JobOutcome(job, JobStatus.FAILED, -1, 0)

    ordered = tuple(outcomes[j.job_id] for j in instance.by_release)
    return SimulationResult(
        instance=instance,
        outcomes=ordered,
        slots_simulated=slots_simulated,
        trace=recorder,
    )
