"""Instances: immutable collections of jobs plus structural queries.

An :class:`Instance` wraps a job list with the derived views protocols and
analyses need repeatedly: horizon, jobs grouped by identical window, jobs
grouped by class, release order, and alignment checks.  All views are
computed lazily and cached; the instance itself is immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import InvalidInstanceError
from repro.sim.job import Job, is_power_of_two

__all__ = ["Instance", "WindowKey"]

#: An exact window, identifying a job class occupancy: ``(release, deadline)``.
WindowKey = Tuple[int, int]


@dataclass(frozen=True)
class Instance:
    """An immutable set of jobs arriving over time.

    Parameters
    ----------
    jobs:
        The jobs.  IDs must be unique; order is irrelevant (views sort).
    """

    jobs: Tuple[Job, ...]

    def __init__(self, jobs: Iterable[Job]) -> None:
        tup = tuple(jobs)
        ids = [j.job_id for j in tup]
        if len(set(ids)) != len(ids):
            raise InvalidInstanceError("duplicate job ids in instance")
        object.__setattr__(self, "jobs", tup)

    # -- basic views -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, i: int) -> Job:
        return self.jobs[i]

    @cached_property
    def by_release(self) -> Tuple[Job, ...]:
        """Jobs sorted by ``(release, deadline, job_id)``."""
        return tuple(sorted(self.jobs, key=lambda j: (j.release, j.deadline, j.job_id)))

    @cached_property
    def horizon(self) -> int:
        """One past the last deadline (0 for an empty instance)."""
        return max((j.deadline for j in self.jobs), default=0)

    @cached_property
    def first_release(self) -> int:
        """Earliest release time (0 for an empty instance)."""
        return min((j.release for j in self.jobs), default=0)

    @cached_property
    def min_window(self) -> int:
        """Smallest window size ``w_0`` (0 for an empty instance)."""
        return min((j.window for j in self.jobs), default=0)

    @cached_property
    def max_window(self) -> int:
        """Largest window size (0 for an empty instance)."""
        return max((j.window for j in self.jobs), default=0)

    # -- alignment -------------------------------------------------------

    @cached_property
    def is_aligned(self) -> bool:
        """True iff every job's window is power-of-2 aligned (Section 3)."""
        return all(j.is_aligned for j in self.jobs)

    def require_aligned(self) -> None:
        """Raise :class:`InvalidInstanceError` unless aligned."""
        for j in self.jobs:
            if not j.is_aligned:
                raise InvalidInstanceError(
                    f"job {j.job_id} window [{j.release},{j.deadline}) "
                    "is not power-of-2 aligned"
                )

    # -- groupings -------------------------------------------------------

    @cached_property
    def by_window(self) -> Mapping[WindowKey, Tuple[Job, ...]]:
        """Jobs grouped by exact window ``(release, deadline)``.

        In ALIGNED, jobs sharing the same exact window coordinate as one
        job-class occupancy; this is the grouping those protocols act on.
        """
        groups: Dict[WindowKey, List[Job]] = {}
        for j in self.jobs:
            groups.setdefault((j.release, j.deadline), []).append(j)
        return {k: tuple(v) for k, v in sorted(groups.items())}

    @cached_property
    def by_class(self) -> Mapping[int, Tuple[Job, ...]]:
        """Aligned jobs grouped by class ``ℓ`` (window size ``2^ℓ``)."""
        self.require_aligned()
        groups: Dict[int, List[Job]] = {}
        for j in self.jobs:
            groups.setdefault(j.job_class, []).append(j)
        return {k: tuple(v) for k, v in sorted(groups.items())}

    @cached_property
    def classes(self) -> Tuple[int, ...]:
        """Sorted distinct job classes present (aligned instances)."""
        return tuple(sorted(self.by_class))

    # -- queries ---------------------------------------------------------

    def live_at(self, slot: int) -> Tuple[Job, ...]:
        """Jobs whose window contains ``slot``."""
        return tuple(j for j in self.jobs if j.contains(slot))

    def nested_jobs(self, release: int, deadline: int) -> Tuple[Job, ...]:
        """Jobs whose windows are contained in ``[release, deadline)``.

        This includes jobs with exactly that window — the quantity
        ``N̂_W`` of Lemma 11.
        """
        probe = Job(-1, release, deadline)
        return tuple(j for j in self.jobs if j.nested_in(probe))

    def shifted(self, delta: int) -> "Instance":
        """The whole instance translated by ``delta`` slots."""
        return Instance(j.shifted(delta) for j in self.jobs)

    def merged(self, other: "Instance") -> "Instance":
        """Union of two instances (ids must stay unique)."""
        return Instance(tuple(self.jobs) + tuple(other.jobs))

    def relabeled(self, start: int = 0) -> "Instance":
        """A copy with ids renumbered ``start, start+1, ...`` in release order."""
        return Instance(
            Job(start + i, j.release, j.deadline)
            for i, j in enumerate(self.by_release)
        )

    def summary(self) -> str:
        """One-line human-readable description."""
        if not self.jobs:
            return "Instance(empty)"
        return (
            f"Instance(n={len(self.jobs)}, horizon={self.horizon}, "
            f"windows {self.min_window}..{self.max_window}, "
            f"aligned={self.is_aligned})"
        )
