"""Runtime invariant checking for simulation runs.

The engine already cross-checks one ground truth (protocol self-reported
success vs. observed delivery).  :class:`InvariantChecker` extends that
to a per-slot audit that can be enabled in *any* run
(``simulate(..., invariants=True)``) and is cheap enough for CI chaos
smokes.  It enforces:

* **No success outside the window** — every delivered data message
  belongs to an activated job and lands strictly inside
  ``[release, deadline)`` (the paper's hard deadline semantics).
* **No duplicate success** — a job's message is delivered at most once.
  Under success-erasure feedback faults a *correct* transmitter may
  legitimately re-send (it never learned it succeeded), so the engine
  relaxes this one check via :attr:`allow_redelivery` when such a fault
  is active.
* **No transmission after known success** — a protocol whose
  ``succeeded`` flag is set must never transmit again.  This is the
  double-send detector and is *not* relaxed under faults: the flag is
  only set when the protocol saw its own success.
* **Monotone protocol state** — ``succeeded`` and ``gave_up`` never
  revert, and the transmission counter never decreases.
* **Contention bookkeeping (Lemma 2)** — every reported per-slot
  transmission probability ``last_p`` is a probability (finite, in
  ``[0, 1]``); Lemma 2's success-probability envelope is meaningless
  otherwise.

Violations raise :class:`repro.errors.InvariantViolationError`
immediately, naming the slot and job, so a failing chaos run points at
the first broken slot instead of a corrupted aggregate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import InvariantViolationError
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol

__all__ = ["InvariantChecker"]


class InvariantChecker:
    """Per-slot audit of protocol and delivery invariants.

    Driven by the engine: :meth:`on_activate` once per job,
    :meth:`after_slot` once per simulated slot.  Stateless across runs —
    use a fresh checker per simulation (``invariants=True`` does this
    automatically).

    Attributes
    ----------
    allow_redelivery:
        Set by the engine when a success-erasure feedback fault targets
        transmitters; relaxes only the duplicate-delivery check.
    slots_checked:
        Number of slots audited (for tests asserting the checker ran).
    """

    __slots__ = ("allow_redelivery", "slots_checked", "_jobs", "_state", "_delivered")

    def __init__(self, *, allow_redelivery: bool = False) -> None:
        self.allow_redelivery = allow_redelivery
        self.slots_checked = 0
        self._jobs: Dict[int, Job] = {}
        self._state: Dict[int, Tuple[bool, bool, int]] = {}
        self._delivered: Dict[int, int] = {}

    # -- engine hooks ------------------------------------------------------

    def on_activate(self, job: Job, proto: Protocol, slot: int) -> None:
        """Record a job's activation and its protocol's initial state."""
        if not job.release <= slot < job.deadline:
            raise InvariantViolationError(
                f"slot {slot}: job {job.job_id} activated outside its window "
                f"[{job.release}, {job.deadline})"
            )
        self._jobs[job.job_id] = job
        self._state[job.job_id] = (
            bool(proto.succeeded),
            bool(proto.gave_up),
            int(proto.transmissions),
        )

    def after_slot(
        self,
        slot: int,
        delivered: int,
        live_ids: Sequence[int],
        live_protos: Sequence[Protocol],
        tx_idx: Sequence[int],
    ) -> None:
        """Audit one resolved slot.

        Parameters
        ----------
        delivered:
            Job id whose data message was delivered this slot, or ``-1``.
        tx_idx:
            Indices into the live lists of the jobs that transmitted.
        """
        self.slots_checked += 1
        state = self._state

        # transmission after known success (checked against the state
        # snapshot from *before* this slot: succeeded was set no later
        # than the previous slot's observe).
        for i in tx_idx:
            prev = state.get(live_ids[i])
            if prev is not None and prev[0]:
                raise InvariantViolationError(
                    f"slot {slot}: job {live_ids[i]} transmitted after its "
                    "protocol recorded success (double-send)"
                )

        if delivered >= 0:
            job = self._jobs.get(delivered)
            if job is None:
                raise InvariantViolationError(
                    f"slot {slot}: delivery for job {delivered}, which was "
                    "never activated"
                )
            if not job.release <= slot < job.deadline:
                raise InvariantViolationError(
                    f"slot {slot}: job {delivered} delivered outside its "
                    f"window [{job.release}, {job.deadline})"
                )
            first = self._delivered.setdefault(delivered, slot)
            if first != slot and not self.allow_redelivery:
                raise InvariantViolationError(
                    f"slot {slot}: duplicate delivery for job {delivered} "
                    f"(first delivered at slot {first})"
                )

        for i, proto in enumerate(live_protos):
            jid = live_ids[i]
            succeeded = bool(proto.succeeded)
            gave_up = bool(proto.gave_up)
            transmissions = int(proto.transmissions)
            prev = state.get(jid)
            if prev is not None:
                if prev[0] and not succeeded:
                    raise InvariantViolationError(
                        f"slot {slot}: job {jid} protocol reverted "
                        "succeeded from True to False"
                    )
                if prev[1] and not gave_up:
                    raise InvariantViolationError(
                        f"slot {slot}: job {jid} protocol reverted "
                        "gave_up from True to False"
                    )
                if transmissions < prev[2]:
                    raise InvariantViolationError(
                        f"slot {slot}: job {jid} transmission counter "
                        f"decreased ({prev[2]} -> {transmissions})"
                    )
            state[jid] = (succeeded, gave_up, transmissions)

            p = getattr(proto, "last_p", None)
            if p is not None:
                p = float(p)
                if math.isnan(p) or not 0.0 <= p <= 1.0:
                    raise InvariantViolationError(
                        f"slot {slot}: job {jid} reported transmission "
                        f"probability last_p={p!r} outside [0, 1] "
                        "(contention bookkeeping inconsistent with Lemma 2)"
                    )

    # -- reporting ---------------------------------------------------------

    @property
    def deliveries(self) -> Dict[int, int]:
        """Job id → first delivery slot, as audited."""
        return dict(self._delivered)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"InvariantChecker(slots_checked={self.slots_checked}, "
            f"deliveries={len(self._delivered)})"
        )
