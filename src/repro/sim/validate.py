"""Instance validation and protocol-readiness certification.

Before running a protocol on a workload it pays to know whether the
workload is even in the protocol's regime.  :func:`certify` runs the
structural and capacity checks in one pass and returns a
:class:`Certificate` of findings — each a severity, a code, and a
human-readable message — that the CLI and notebooks can print directly.

Checks performed:

* structural — empty instance, duplicate ids (already impossible via
  ``Instance``), window span, alignment;
* feasibility — peak density vs the requested γ, with the witness
  interval;
* ALIGNED readiness — alignment, ``min_level`` consistency, the
  deterministic schedule overhead, and the planner's γ* vs the
  instance's actual density;
* PUNCTUAL readiness — minimum window vs fixed costs (sync + pullback),
  per-window-size path prediction (follow vs anarchist), and anarchist
  contention estimates per window size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.rounds import ROUND_LENGTH
from repro.experiments.capacity import max_feasible_gamma, punctual_overheads
from repro.params import AlignedParams, PunctualParams
from repro.sim.feasibility import peak_density
from repro.sim.instance import Instance
from repro.sim.job import window_class

__all__ = ["Severity", "Finding", "Certificate", "certify"]


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class Finding:
    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value.upper():7}] {self.code}: {self.message}"


@dataclass
class Certificate:
    """The result of :func:`certify`: findings plus the headline verdict."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, severity: Severity, code: str, message: str) -> None:
        self.findings.append(Finding(severity, code, message))

    @property
    def ok(self) -> bool:
        """True when no ERROR-level finding was raised."""
        return all(f.severity is not Severity.ERROR for f in self.findings)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def render(self) -> str:
        lines = [str(f) for f in self.findings]
        lines.append(f"verdict: {'OK' if self.ok else 'NOT READY'}")
        return "\n".join(lines)


def certify(
    instance: Instance,
    *,
    gamma: Optional[float] = None,
    aligned: Optional[AlignedParams] = None,
    punctual: Optional[PunctualParams] = None,
) -> Certificate:
    """Run every applicable readiness check.

    Parameters
    ----------
    gamma:
        The slack the workload is supposed to satisfy; checked against
        the measured peak density when given.
    aligned / punctual:
        Parameter sets to certify the instance against; each adds its
        protocol-specific checks.
    """
    cert = Certificate()

    # -- structural ---------------------------------------------------------
    if len(instance) == 0:
        cert.add(Severity.WARNING, "empty", "instance has no jobs")
        return cert
    cert.add(
        Severity.INFO,
        "shape",
        f"{len(instance)} jobs, horizon {instance.horizon}, windows "
        f"{instance.min_window}..{instance.max_window}, "
        f"aligned={instance.is_aligned}",
    )

    # -- feasibility ----------------------------------------------------------
    report = peak_density(instance)
    cert.add(
        Severity.INFO,
        "density",
        f"peak density {report.density:.4f} on {report.interval} "
        f"({report.nested_jobs} nested jobs)",
    )
    if gamma is not None:
        if report.density > gamma + 1e-12:
            cert.add(
                Severity.ERROR,
                "infeasible",
                f"not γ-slack feasible at γ={gamma}: density "
                f"{report.density:.4f} exceeds it",
            )
        else:
            cert.add(
                Severity.INFO,
                "feasible",
                f"γ-slack feasible at γ={gamma}",
            )

    # -- ALIGNED readiness ----------------------------------------------------
    if aligned is not None:
        if not instance.is_aligned:
            cert.add(
                Severity.ERROR,
                "aligned.unaligned",
                "ALIGNED requires power-of-2-aligned windows",
            )
        else:
            lowest = min(j.job_class for j in instance.jobs)
            highest = max(j.job_class for j in instance.jobs)
            if lowest < aligned.min_level:
                cert.add(
                    Severity.ERROR,
                    "aligned.min_level",
                    f"jobs of class {lowest} exist below the schedule's "
                    f"min_level {aligned.min_level}: they can never run",
                )
            if highest < aligned.min_level:
                return cert  # capacity math is undefined below the floor
            overhead = aligned.schedule_overhead(highest)
            sev = Severity.ERROR if overhead >= 1.0 else (
                Severity.WARNING if overhead > 0.6 else Severity.INFO
            )
            cert.add(
                sev,
                "aligned.overhead",
                f"deterministic schedule overhead {overhead:.2f} of a "
                f"class-{highest} window "
                f"(λ={aligned.lam}, min_level={aligned.min_level})",
            )
            g_star = max_feasible_gamma(highest, aligned)
            density = report.density
            if g_star == 0.0:
                cert.add(
                    Severity.ERROR,
                    "aligned.capacity",
                    "the empty schedule alone does not fit: raise "
                    "min_level or lower λ",
                )
            elif density > g_star:
                cert.add(
                    Severity.WARNING,
                    "aligned.capacity",
                    f"density {density:.4f} exceeds the planner's "
                    f"conservative γ* {g_star:.4f}: truncations possible",
                )
            else:
                cert.add(
                    Severity.INFO,
                    "aligned.capacity",
                    f"density {density:.4f} within planner γ* {g_star:.4f}",
                )

    # -- PUNCTUAL readiness ------------------------------------------------------
    if punctual is not None:
        sizes = sorted({j.window for j in instance.jobs})
        for w in sizes:
            budget = punctual_overheads(w, punctual)
            fixed = budget.sync_slots + budget.pullback_slots + 2 * ROUND_LENGTH
            if budget.window <= fixed:
                cert.add(
                    Severity.ERROR,
                    "punctual.window",
                    f"window {w} (effective {budget.window}) cannot cover "
                    f"the fixed costs (~{fixed} slots)",
                )
                continue
            path = (
                "follow" if budget.virtual_level is not None else "anarchist"
            )
            n_this = sum(1 for j in instance.jobs if j.window == w)
            contention = n_this * punctual.anarchist_probability(budget.window)
            cert.add(
                Severity.INFO,
                "punctual.path",
                f"window {w}: expected path {path}, "
                f"~{budget.anarchist_attempts:.1f} anarchist attempts, "
                f"worst-case anarchist contention {contention:.2f}",
            )
            if path == "anarchist" and contention > 2.0:
                cert.add(
                    Severity.WARNING,
                    "punctual.contention",
                    f"window {w}: {n_this} potential anarchists give "
                    f"contention {contention:.1f} > 2 — the release stage "
                    "may self-jam (see E12's saturated burst)",
                )
    return cert
