"""Jobs: unit-length messages with release times and deadlines.

Section 1.1: an instance is a set of jobs; job ``j`` has release time
``r_j``, deadline ``d_j``, and must broadcast one data message in some slot
of its window ``[r_j, d_j)``.  We use the half-open convention — the window
contains exactly ``w_j = d_j - r_j`` slots, which matches the paper's
``w_j = d_j - r_j`` window size.

A job knows its window *size* upon activation but not its absolute release
time (no global clock); the absolute fields on :class:`Job` are simulator
bookkeeping, never exposed to protocol logic except where the paper's model
allows it (the aligned special case).

Energy convention: each slot in which a job transmits anything costs one
unit of *channel-access energy* — the headline metric of the modern
backoff literature (arXiv 2302.07751, 2408.11275).  The per-job counter
lives on :class:`~repro.sim.protocolbase.Protocol` (``transmissions``),
the engine folds it into :class:`~repro.sim.metrics.JobOutcome`, and the
aggregate views live on :class:`~repro.sim.metrics.SimulationResult`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidInstanceError

__all__ = ["Job", "JobStatus", "is_power_of_two", "window_class"]


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive integral power of two."""
    return x > 0 and (x & (x - 1)) == 0


def window_class(w: int) -> int:
    """The job class ``ℓ`` of a power-of-two window size ``w = 2^ℓ``.

    Raises
    ------
    InvalidInstanceError
        If ``w`` is not a power of two.
    """
    if not is_power_of_two(w):
        raise InvalidInstanceError(f"window size {w} is not a power of two")
    return int(w).bit_length() - 1


class JobStatus(enum.Enum):
    """Lifecycle of a job inside the simulator."""

    PENDING = "pending"  # release time not reached yet
    LIVE = "live"  # inside its window, still trying
    SUCCEEDED = "succeeded"  # data message delivered
    FAILED = "failed"  # window closed without a successful broadcast
    GAVE_UP = "gave_up"  # protocol truncated / stopped before the deadline

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.GAVE_UP)


@dataclass(frozen=True, slots=True)
class Job:
    """One unit-length message with a delivery window.

    Attributes
    ----------
    job_id:
        Simulator-level identity (jobs themselves are anonymous).
    release:
        First slot of the window (the job is activated at the start of it).
    deadline:
        One past the last slot of the window; the job may transmit in slots
        ``release .. deadline - 1``.
    """

    job_id: int
    release: int
    deadline: int

    def __post_init__(self) -> None:
        if self.release < 0:
            raise InvalidInstanceError(
                f"job {self.job_id}: negative release {self.release}"
            )
        if self.deadline <= self.release:
            raise InvalidInstanceError(
                f"job {self.job_id}: empty window [{self.release}, {self.deadline})"
            )

    @property
    def window(self) -> int:
        """Window size ``w_j = d_j - r_j`` (number of usable slots)."""
        return self.deadline - self.release

    @property
    def is_aligned(self) -> bool:
        """True iff the window is power-of-2 aligned.

        Section 3: size a power of 2 *and* release a multiple of that size.
        """
        w = self.window
        return is_power_of_two(w) and self.release % w == 0

    @property
    def job_class(self) -> int:
        """Class ``ℓ`` such that ``w = 2^ℓ`` (aligned jobs only)."""
        if not self.is_aligned:
            raise InvalidInstanceError(
                f"job {self.job_id} (window [{self.release},{self.deadline})) "
                "is not power-of-2 aligned"
            )
        return window_class(self.window)

    def contains(self, slot: int) -> bool:
        """Whether ``slot`` falls inside this job's window."""
        return self.release <= slot < self.deadline

    def local_age(self, slot: int) -> int:
        """Slots elapsed since release; 0 in the job's first slot."""
        return slot - self.release

    def shifted(self, delta: int) -> "Job":
        """A copy with the whole window translated by ``delta`` slots."""
        return Job(self.job_id, self.release + delta, self.deadline + delta)

    def with_window(self, release: int, deadline: int) -> "Job":
        """A copy with a replaced window (used by trimming)."""
        return Job(self.job_id, release, deadline)

    def overlaps(self, other: "Job") -> bool:
        """Whether two windows share at least one slot."""
        return self.release < other.deadline and other.release < self.deadline

    def nested_in(self, other: "Job") -> bool:
        """Whether this window is contained in ``other``'s window."""
        return other.release <= self.release and self.deadline <= other.deadline
