"""Named workload and protocol registries shared by the CLI and campaigns.

The CLI has always resolved ``--workload batch --protocol punctual`` by
name; the campaign layer (:mod:`repro.campaign`) declares whole grids of
the same names in YAML.  Both must mean exactly the same thing by
``"batch"`` or ``"punctual"``, so the name → builder dispatch lives
here, once, keyed by plain parameter dicts (picklable, digestible)
instead of an ``argparse.Namespace``.

Every builder takes a flat mapping of knobs; missing keys fall back to
:data:`KNOB_DEFAULTS` (the CLI's historical defaults, so a spec that
says nothing gets the same workload the bare CLI would build).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

import numpy as np

from repro.baselines import (
    beb_factory,
    edf_factory,
    nocd_factory,
    sawtooth_factory,
    slowfeedback_factory,
    softened_factory,
    urgency_aloha_factory,
    window_scaled_aloha_factory,
)
from repro.core.aligned import aligned_factory
from repro.core.global_trim import trimmed_aligned_factory
from repro.core.punctual import punctual_factory
from repro.core.uniform import uniform_factory
from repro.errors import InvalidParameterError
from repro.params import AlignedParams, PunctualParams
from repro.sim.instance import Instance
from repro.workloads import (
    aligned_random_instance,
    batch_instance,
    harmonic_starvation_instance,
    sensor_network_instance,
    single_class_instance,
    staircase_instance,
)

__all__ = [
    "INSTANCE_PROTOCOLS",
    "KNOB_DEFAULTS",
    "PROTOCOLS",
    "STREAM_PROTOCOLS",
    "WORKLOADS",
    "aligned_params",
    "build_workload",
    "protocol_factories",
    "punctual_params",
    "protocol_factory",
]

#: The CLI's historical defaults; any knob a caller omits means this.
KNOB_DEFAULTS: Dict[str, Any] = {
    "n": 8,
    "window": 4096,
    "level": 9,
    "gamma": 0.02,
    "workload_seed": 0,
    "lam": 1,
    "min_level": 9,
    "pullback_exp": 1,
    "slingshot_exp": 2,
}

#: Workload names resolvable by :func:`build_workload`.
WORKLOADS: Tuple[str, ...] = (
    "batch",
    "single-class",
    "aligned-random",
    "harmonic",
    "staircase",
    "sensors",
)

#: Protocol names resolvable by :func:`protocol_factory` (``aligned``
#: only on aligned instances).
PROTOCOLS: Tuple[str, ...] = (
    "punctual",
    "aligned",
    "trimmed",
    "uniform",
    "beb",
    "sawtooth",
    "aloha",
    "urgency",
    "edf",
    "soft",
    "slowfb",
    "nocd",
)

#: Protocols whose factory needs the *whole* instance up front (EDF's
#: oracle schedule, trimming's global pass) or an aligned instance —
#: unavailable to the open-loop streaming engine, which discovers jobs
#: one arrival at a time.  ``stream``'s CLI choices are ``PROTOCOLS``
#: minus this set.
INSTANCE_PROTOCOLS: Tuple[str, ...] = ("aligned", "trimmed", "edf")

#: Protocol names the streaming engine can run (derived, never hand-typed).
STREAM_PROTOCOLS: Tuple[str, ...] = tuple(
    p for p in PROTOCOLS if p not in INSTANCE_PROTOCOLS
)


def _knob(params: Mapping[str, Any], key: str) -> Any:
    return params[key] if key in params else KNOB_DEFAULTS[key]


def build_workload(params: Mapping[str, Any]) -> Instance:
    """Build the workload named ``params["workload"]``.

    Unknown names raise :class:`~repro.errors.InvalidParameterError`
    naming the choices; omitted knobs take :data:`KNOB_DEFAULTS`.
    """
    name = params.get("workload", "batch")
    n = int(_knob(params, "n"))
    window = int(_knob(params, "window"))
    level = int(_knob(params, "level"))
    gamma = float(_knob(params, "gamma"))
    rng = np.random.default_rng(int(_knob(params, "workload_seed")))
    if name == "batch":
        return batch_instance(n, window=window)
    if name == "single-class":
        return single_class_instance(n, level=level)
    if name == "aligned-random":
        levels = list(range(level, level + 3))
        return aligned_random_instance(rng, level + 4, levels, gamma=gamma)
    if name == "harmonic":
        return harmonic_starvation_instance(n, gamma)
    if name == "staircase":
        return staircase_instance(
            n_steps=5, jobs_per_step=max(n // 5, 1),
            step=window // 4, window=window,
        )
    if name == "sensors":
        return sensor_network_instance(
            rng, n_sensors=n, period=2 * window,
            relative_deadline=window, n_periods=3,
        )
    raise InvalidParameterError(
        f"unknown workload: {name} (choices: {sorted(WORKLOADS)})"
    )


def aligned_params(params: Mapping[str, Any]) -> AlignedParams:
    """The ALIGNED parameter bundle these knobs select."""
    return AlignedParams(
        lam=int(_knob(params, "lam")),
        tau=4,
        min_level=int(_knob(params, "min_level")),
    )


def punctual_params(params: Mapping[str, Any]) -> PunctualParams:
    return PunctualParams(
        aligned=AlignedParams(
            lam=1, tau=2, min_level=int(_knob(params, "min_level"))
        ),
        lam=max(int(_knob(params, "lam")), 2),
        pullback_exp=int(_knob(params, "pullback_exp")),
        slingshot_exp=int(_knob(params, "slingshot_exp")),
    )


def protocol_factories(
    params: Mapping[str, Any], instance: Instance
) -> Dict[str, Callable]:
    """Every protocol factory these knobs admit for ``instance``."""
    factories: Dict[str, Callable] = {
        "punctual": punctual_factory(punctual_params(params)),
        "uniform": uniform_factory(),
        "beb": beb_factory(),
        "sawtooth": sawtooth_factory(),
        "aloha": window_scaled_aloha_factory(8.0),
        "urgency": urgency_aloha_factory(2.0),
        "trimmed": trimmed_aligned_factory(aligned_params(params)),
        "edf": edf_factory(instance),
        "soft": softened_factory(),
        "slowfb": slowfeedback_factory(),
        "nocd": nocd_factory(),
    }
    if instance.is_aligned:
        factories["aligned"] = aligned_factory(aligned_params(params))
    return factories


def protocol_factory(
    name: str, params: Mapping[str, Any], instance: Instance
) -> Callable:
    """The factory for one named protocol on ``instance``.

    Raises :class:`~repro.errors.InvalidParameterError` when the name is
    unknown or unavailable for this workload (``aligned`` on an
    unaligned instance).
    """
    factories = protocol_factories(params, instance)
    if name not in factories:
        raise InvalidParameterError(
            f"protocol {name!r} unavailable for this workload "
            f"(choices: {sorted(factories)})"
        )
    return factories[name]
