"""Workload generators: aligned, general, adversarial, realistic."""

from repro.workloads.adversarial import (
    harmonic_starvation_instance,
    rolling_batches_instance,
    staircase_instance,
)
from repro.workloads.aligned import (
    aligned_random_instance,
    batch_instance,
    figure1_instance,
    nested_stack_instance,
    single_class_instance,
)
from repro.workloads.general import (
    poisson_instance,
    two_scale_instance,
    uniform_random_instance,
)
from repro.workloads.realistic import (
    alarm_burst_instance,
    mixed_criticality_instance,
    sensor_network_instance,
)
from repro.workloads.io import (
    instance_from_json,
    instance_to_json,
    load_instance,
    load_instance_csv,
    save_instance,
    save_instance_csv,
)
from repro.workloads.thinning import thin_to_density

__all__ = [
    "instance_from_json",
    "instance_to_json",
    "load_instance",
    "load_instance_csv",
    "save_instance",
    "save_instance_csv",
    "harmonic_starvation_instance",
    "staircase_instance",
    "rolling_batches_instance",
    "aligned_random_instance",
    "batch_instance",
    "figure1_instance",
    "nested_stack_instance",
    "single_class_instance",
    "poisson_instance",
    "two_scale_instance",
    "uniform_random_instance",
    "sensor_network_instance",
    "alarm_burst_instance",
    "mixed_criticality_instance",
    "thin_to_density",
]
