"""Generators for power-of-2-aligned workloads (Section 3 setting).

All generators here emit instances where every window has power-of-two
size ``2^ℓ`` and a release that is a multiple of its size.  The random
generator enforces γ-slack feasibility *by construction* using a per-window
budget: if each aligned window of size ``w`` holds at most
``floor(γ w / L)`` jobs, where ``L`` is the number of participating levels,
then any interval of length ``x`` nests at most ``Σ_ℓ (x / 2^ℓ) ⌊γ 2^ℓ/L⌋
<= γ x`` jobs — so the instance is γ-slack feasible with no post-hoc
thinning (the budget argument mirrors the laminar decomposition in
Lemma 11's proof).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.instance import Instance
from repro.sim.job import Job

__all__ = [
    "single_class_instance",
    "batch_instance",
    "aligned_random_instance",
    "nested_stack_instance",
    "figure1_instance",
]


def single_class_instance(n: int, level: int, start: int = 0) -> Instance:
    """``n`` jobs sharing one aligned window ``[start, start + 2^level)``.

    ``start`` must be a multiple of ``2^level``.  The workhorse for the
    estimation and broadcast experiments (one job-class occupancy).
    """
    w = 1 << level
    if start % w != 0:
        raise InvalidParameterError(
            f"start {start} is not a multiple of window {w}"
        )
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    return Instance(Job(i, start, start + w) for i in range(n))


def batch_instance(n: int, window: int, release: int = 0) -> Instance:
    """``n`` jobs sharing the (not necessarily aligned) window given."""
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if window <= 0:
        raise InvalidParameterError(f"window must be positive, got {window}")
    return Instance(Job(i, release, release + window) for i in range(n))


def aligned_random_instance(
    rng: np.random.Generator,
    horizon_level: int,
    levels: Sequence[int],
    gamma: float,
    *,
    fill: float = 1.0,
) -> Instance:
    """A random γ-slack-feasible aligned workload.

    Parameters
    ----------
    rng:
        Randomness source.
    horizon_level:
        The timeline is ``[0, 2^horizon_level)``.
    levels:
        Job classes to populate; each must be ``<= horizon_level``.
    gamma:
        Slack target.  Guaranteed by construction (see module docstring).
    fill:
        Fraction of each window's budget to draw on average, in [0, 1];
        counts are binomial over the budget.

    Returns
    -------
    Instance
        Jobs with ids assigned in release order.
    """
    if not 0.0 < gamma <= 1.0:
        raise InvalidParameterError(f"gamma must be in (0, 1], got {gamma}")
    if not 0.0 <= fill <= 1.0:
        raise InvalidParameterError(f"fill must be in [0, 1], got {fill}")
    lv = sorted(set(int(l) for l in levels))
    if not lv:
        return Instance(())
    if lv[0] < 0 or lv[-1] > horizon_level:
        raise InvalidParameterError(
            f"levels must lie in [0, {horizon_level}], got {lv}"
        )
    horizon = 1 << horizon_level
    n_levels = len(lv)
    jobs: List[Job] = []
    jid = 0
    for level in lv:
        w = 1 << level
        budget = int(np.floor(gamma * w / n_levels))
        if budget == 0:
            continue
        n_windows = horizon // w
        counts = rng.binomial(budget, fill, size=n_windows)
        for k in range(n_windows):
            for _ in range(int(counts[k])):
                jobs.append(Job(jid, k * w, (k + 1) * w))
                jid += 1
    return Instance(sorted(jobs, key=lambda j: (j.release, j.deadline, j.job_id)))


def nested_stack_instance(
    levels: Sequence[int], per_level: int, start: int = 0
) -> Instance:
    """One occupied window per level, all nested at ``start``.

    Level ``ℓ`` gets ``per_level`` jobs in the window
    ``[start, start + 2^ℓ)``; ``start`` must be a multiple of the largest
    window.  Exercises the pecking order maximally (every class pre-empts
    every larger one at the same instant).
    """
    lv = sorted(set(int(l) for l in levels))
    if per_level < 0:
        raise InvalidParameterError(f"per_level must be >= 0, got {per_level}")
    if lv and start % (1 << lv[-1]) != 0:
        raise InvalidParameterError(
            f"start {start} not aligned to largest window {1 << lv[-1]}"
        )
    jobs: List[Job] = []
    jid = 0
    for level in lv:
        w = 1 << level
        for _ in range(per_level):
            jobs.append(Job(jid, start, start + w))
            jid += 1
    return Instance(jobs)


def figure1_instance(
    small_level: int = 4, jobs_small: int = 2, jobs_medium: int = 3, jobs_large: int = 3
) -> Instance:
    """The three-row scenario of the paper's Figure 1.

    Small windows of size ``2^small_level`` tile the timeline; one medium
    window (twice the size) and one large window (four times) sit above
    them, so the schedule shows the medium/large classes being pre-empted
    at each small critical time exactly as the figure depicts.
    """
    s = 1 << small_level
    jobs: List[Job] = []
    jid = 0
    for k in range(4):  # four small windows across the large window
        for _ in range(jobs_small):
            jobs.append(Job(jid, k * s, (k + 1) * s))
            jid += 1
    for k in range(2):  # two medium windows
        for _ in range(jobs_medium):
            jobs.append(Job(jid, 2 * k * s, 2 * (k + 1) * s))
            jid += 1
    for _ in range(jobs_large):  # one large window
        jobs.append(Job(jid, 0, 4 * s))
        jid += 1
    return Instance(jobs)
