"""General (unaligned) random workloads — the PUNCTUAL setting.

Arbitrary release times, arbitrary window sizes, no global alignment.
Feasibility is achieved either by construction (density budgeting per
dyadic level, as in the aligned generator but with random phase) or by
post-hoc thinning.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.instance import Instance
from repro.sim.job import Job
from repro.stream.arrivals import PoissonProcess, materialize
from repro.workloads.thinning import thin_to_density

__all__ = ["poisson_instance", "uniform_random_instance", "two_scale_instance"]


def poisson_instance(
    rng: np.random.Generator,
    horizon: int,
    rate: float,
    window_sizes: Sequence[int],
    *,
    gamma: Optional[float] = None,
    weights: Optional[Sequence[float]] = None,
) -> Instance:
    """Poisson arrivals with windows drawn from a finite menu.

    Parameters
    ----------
    rng:
        Randomness source.
    horizon:
        Releases fall in ``[0, horizon)``.
    rate:
        Expected arrivals per slot.
    window_sizes:
        Menu of window sizes, sampled per job (uniform unless ``weights``).
    gamma:
        If given, the result is thinned to γ-slack feasibility.

    Notes
    -----
    Draws route through :class:`repro.stream.arrivals.PoissonProcess`,
    which consumes randomness in fixed-size blocks in slot order.  The
    instance over ``[0, h1)`` is therefore a prefix of the instance over
    ``[0, h2)`` for any ``h2 > h1`` on the same generator state — the
    horizon is a cut, not a reshuffle.  (The original implementation
    drew one horizon-sized count vector followed by all window picks,
    so extending the horizon relabeled every job's window draw.)
    """
    inst = materialize(
        PoissonProcess(
            rate=rate,
            window_sizes=tuple(int(w) for w in window_sizes),
            weights=tuple(float(w) for w in weights)
            if weights is not None
            else None,
        ),
        rng,
        horizon,
    )
    if gamma is not None:
        inst = thin_to_density(inst, gamma, rng).relabeled()
    return inst


def uniform_random_instance(
    rng: np.random.Generator,
    n: int,
    horizon: int,
    window_range: Tuple[int, int],
    *,
    gamma: Optional[float] = None,
) -> Instance:
    """``n`` jobs with uniform releases and uniform window sizes."""
    if n < 0 or horizon <= 0:
        raise InvalidParameterError("need n >= 0 and horizon > 0")
    lo, hi = window_range
    if lo <= 0 or hi < lo:
        raise InvalidParameterError(f"invalid window range ({lo}, {hi})")
    releases = rng.integers(0, horizon, size=n)
    windows = rng.integers(lo, hi + 1, size=n)
    jobs = [
        Job(i, int(releases[i]), int(releases[i] + windows[i])) for i in range(n)
    ]
    inst = Instance(sorted(jobs, key=lambda j: (j.release, j.deadline, j.job_id)))
    inst = inst.relabeled()
    if gamma is not None:
        inst = thin_to_density(inst, gamma, rng).relabeled()
    return inst


def two_scale_instance(
    rng: np.random.Generator,
    n_small: int,
    n_large: int,
    small_window: int,
    large_window: int,
    horizon: int,
    *,
    gamma: Optional[float] = None,
) -> Instance:
    """A bimodal mix of urgent and relaxed traffic.

    The contention dilemma of Section 4 in workload form: small-window
    jobs must pre-empt large-window jobs that arrived earlier, with no
    alignment to lean on.
    """
    if small_window <= 0 or large_window <= 0:
        raise InvalidParameterError("window sizes must be positive")
    if horizon <= 0 or n_small < 0 or n_large < 0:
        raise InvalidParameterError("invalid sizes")
    jobs: List[Job] = []
    jid = 0
    for _ in range(n_small):
        r = int(rng.integers(0, horizon))
        jobs.append(Job(jid, r, r + small_window))
        jid += 1
    for _ in range(n_large):
        r = int(rng.integers(0, horizon))
        jobs.append(Job(jid, r, r + large_window))
        jid += 1
    inst = Instance(
        sorted(jobs, key=lambda j: (j.release, j.deadline, j.job_id))
    ).relabeled()
    if gamma is not None:
        inst = thin_to_density(inst, gamma, rng).relabeled()
    return inst
