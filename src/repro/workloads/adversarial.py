"""Adversarial workloads from the paper's lower-bound arguments.

The star is the **harmonic starvation instance** of Lemma 5: all ``n``
jobs are released at slot 0 and job ``j`` (1-indexed) has window size
``⌈j/γ⌉``.  The instance is γ-slack feasible, yet under UNIFORM the
contention of the early slots is ≈ ``ln n``, so the small-window
(high-priority!) jobs succeed with probability only ``O(1/n^Θ(1))``.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.instance import Instance
from repro.sim.job import Job

__all__ = [
    "harmonic_starvation_instance",
    "staircase_instance",
    "rolling_batches_instance",
]


def harmonic_starvation_instance(n: int, gamma: float) -> Instance:
    """The Lemma 5 instance: ``w_j = ⌈j/γ⌉``, all released at 0.

    Parameters
    ----------
    n:
        Number of jobs (>= 1).
    gamma:
        Slack parameter in (0, 1].  Job ``j``'s window is ``⌈j/γ⌉``, which
        keeps every prefix interval at density <= γ.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if not 0.0 < gamma <= 1.0:
        raise InvalidParameterError(f"gamma must be in (0, 1], got {gamma}")
    return Instance(
        Job(j - 1, 0, int(math.ceil(j / gamma))) for j in range(1, n + 1)
    )


def staircase_instance(
    n_steps: int, jobs_per_step: int, step: int, window: int
) -> Instance:
    """Batches of equal-window jobs released every ``step`` slots.

    A "conveyor belt" of contention: batch ``k`` is released at ``k*step``
    with window size ``window``.  With ``step < window`` consecutive
    batches overlap, stressing protocols' handling of staggered arrivals
    (the unaligned regime PUNCTUAL is designed for).
    """
    if n_steps < 0 or jobs_per_step < 0:
        raise InvalidParameterError("n_steps and jobs_per_step must be >= 0")
    if step <= 0 or window <= 0:
        raise InvalidParameterError("step and window must be positive")
    jobs: List[Job] = []
    jid = 0
    for k in range(n_steps):
        r = k * step
        for _ in range(jobs_per_step):
            jobs.append(Job(jid, r, r + window))
            jid += 1
    return Instance(jobs)


def rolling_batches_instance(
    rng: np.random.Generator,
    n_batches: int,
    horizon: int,
    batch_size_range: tuple[int, int],
    window_range: tuple[int, int],
) -> Instance:
    """Random bursts: each batch lands at a uniform slot with one window.

    No feasibility guarantee — pair with
    :func:`repro.workloads.thinning.thin_to_density` when slack matters.
    """
    if n_batches < 0 or horizon <= 0:
        raise InvalidParameterError("need n_batches >= 0 and horizon > 0")
    lo_b, hi_b = batch_size_range
    lo_w, hi_w = window_range
    if lo_b < 0 or hi_b < lo_b or lo_w <= 0 or hi_w < lo_w:
        raise InvalidParameterError("invalid batch size / window ranges")
    jobs: List[Job] = []
    jid = 0
    for _ in range(n_batches):
        release = int(rng.integers(0, horizon))
        size = int(rng.integers(lo_b, hi_b + 1))
        window = int(rng.integers(lo_w, hi_w + 1))
        for _ in range(size):
            jobs.append(Job(jid, release, release + window))
            jid += 1
    return Instance(sorted(jobs, key=lambda j: (j.release, j.deadline, j.job_id)))
