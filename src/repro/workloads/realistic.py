"""Workloads modelled on the paper's motivating applications.

The introduction motivates deadlines with real-time industrial protocols
(WirelessHART, RT-Link, Glossy): sensors produce periodic readings that
are useless unless delivered within a bound.  These generators produce
that traffic shape — periodic per-sensor jobs with jitter, plus sporadic
alarm bursts — so the examples exercise the protocols on the scenario the
paper actually cares about.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.instance import Instance
from repro.sim.job import Job
from repro.workloads.thinning import thin_to_density

__all__ = ["sensor_network_instance", "alarm_burst_instance", "mixed_criticality_instance"]


def sensor_network_instance(
    rng: np.random.Generator,
    n_sensors: int,
    period: int,
    relative_deadline: int,
    n_periods: int,
    *,
    jitter: int = 0,
    phase_stagger: bool = True,
) -> Instance:
    """Periodic sensor traffic: each sensor emits once per period.

    Parameters
    ----------
    n_sensors:
        Number of sensors; each produces ``n_periods`` jobs.
    period:
        Slots between consecutive readings of one sensor.
    relative_deadline:
        Window size of each job (must be <= period so instances of one
        sensor never self-overlap).
    jitter:
        Each release is perturbed by a uniform offset in [0, jitter].
    phase_stagger:
        Spread sensor phases uniformly over the period (the usual
        provisioning trick); when False all sensors fire together,
        the worst case.
    """
    if n_sensors < 0 or n_periods < 0:
        raise InvalidParameterError("counts must be >= 0")
    if period <= 0 or relative_deadline <= 0:
        raise InvalidParameterError("period and deadline must be positive")
    if relative_deadline > period:
        raise InvalidParameterError(
            f"relative_deadline {relative_deadline} exceeds period {period}"
        )
    if jitter < 0:
        raise InvalidParameterError("jitter must be >= 0")
    if jitter > period - relative_deadline:
        raise InvalidParameterError(
            f"jitter {jitter} exceeds the per-sensor slack "
            f"{period - relative_deadline} (period - relative_deadline), "
            "so consecutive readings of one sensor could overlap"
        )
    jobs: List[Job] = []
    jid = 0
    for s in range(n_sensors):
        phase = (s * period) // max(n_sensors, 1) if phase_stagger else 0
        for k in range(n_periods):
            r = phase + k * period
            if jitter:
                r += int(rng.integers(0, jitter + 1))
            jobs.append(Job(jid, r, r + relative_deadline))
            jid += 1
    return Instance(sorted(jobs, key=lambda j: (j.release, j.deadline, j.job_id)))


def alarm_burst_instance(
    rng: np.random.Generator,
    n_alarms: int,
    burst_slot: int,
    window: int,
    *,
    spread: int = 0,
) -> Instance:
    """An emergency burst: many urgent messages at (nearly) one instant.

    Models the alarm-flood scenario of industrial monitoring — a plant
    event trips ``n_alarms`` sensors within ``spread`` slots, each needing
    delivery within ``window`` slots.
    """
    if n_alarms < 0 or window <= 0 or spread < 0:
        raise InvalidParameterError("invalid alarm parameters")
    jobs: List[Job] = []
    for i in range(n_alarms):
        r = burst_slot + (int(rng.integers(0, spread + 1)) if spread else 0)
        jobs.append(Job(i, r, r + window))
    return Instance(sorted(jobs, key=lambda j: (j.release, j.deadline, j.job_id)))


def mixed_criticality_instance(
    rng: np.random.Generator,
    horizon: int,
    *,
    critical_rate: float = 0.01,
    critical_window: int = 64,
    bulk_rate: float = 0.02,
    bulk_window: int = 1024,
    gamma: Optional[float] = None,
) -> Instance:
    """Safety-critical control traffic sharing the channel with bulk telemetry.

    Two Poisson flows: *critical* jobs with tight windows and *bulk* jobs
    with loose ones — the QoS-prioritization scenario of Section 1.  If
    ``gamma`` is given the combined instance is thinned to feasibility.
    """
    if horizon <= 0:
        raise InvalidParameterError("horizon must be positive")
    if critical_window <= 0 or bulk_window <= 0:
        raise InvalidParameterError("windows must be positive")
    jobs: List[Job] = []
    jid = 0
    for t in range(horizon):
        for _ in range(int(rng.poisson(critical_rate))):
            jobs.append(Job(jid, t, t + critical_window))
            jid += 1
        for _ in range(int(rng.poisson(bulk_rate))):
            jobs.append(Job(jid, t, t + bulk_window))
            jid += 1
    inst = Instance(jobs)
    if gamma is not None:
        inst = thin_to_density(inst, gamma, rng).relabeled()
    return inst
