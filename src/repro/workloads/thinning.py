"""Post-processing workloads to a target slack.

Random generators (Poisson arrivals, bursty traffic) do not naturally
produce γ-slack-feasible instances; :func:`thin_to_density` repairs one by
randomly dropping jobs from the densest interval until the peak density
reaches the target.  The result is always γ-slack feasible, and dropping
from the violating interval (rather than uniformly) removes as few jobs as
possible in practice.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.feasibility import peak_density
from repro.sim.instance import Instance
from repro.sim.job import Job

__all__ = ["thin_to_density"]


def thin_to_density(
    instance: Instance, gamma: float, rng: np.random.Generator
) -> Instance:
    """Drop jobs until the instance is γ-slack feasible.

    Parameters
    ----------
    instance:
        Input jobs (unchanged; a new instance is returned).
    gamma:
        Target peak density in ``(0, 1]``.
    rng:
        Randomness for victim selection.

    Returns
    -------
    Instance
        A subset of the input jobs with ``peak_density <= gamma``.

    Notes
    -----
    Termination is guaranteed: every iteration removes at least one job
    from the certified densest interval, and an instance whose every
    interval of length ``x`` holds at most ``gamma * x`` jobs is feasible.
    The empty instance trivially satisfies any γ.
    """
    if not 0.0 < gamma <= 1.0:
        raise InvalidParameterError(f"gamma must be in (0, 1], got {gamma}")
    jobs: List[Job] = list(instance.jobs)
    current = Instance(jobs)
    while True:
        report = peak_density(current)
        if report.density <= gamma + 1e-12:
            return current
        s, e = report.interval
        nested = [
            i
            for i, j in enumerate(jobs)
            if s <= j.release and j.deadline <= e
        ]
        # Remove enough nested jobs to bring this interval to target.
        excess = len(nested) - int(np.floor(gamma * (e - s)))
        excess = max(1, excess)
        victims = rng.choice(len(nested), size=min(excess, len(nested)), replace=False)
        for v in sorted((nested[int(i)] for i in victims), reverse=True):
            jobs.pop(v)
        current = Instance(jobs)
