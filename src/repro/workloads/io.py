"""Workload persistence: save and load instances as JSON or CSV.

Reproducible experiments want workloads on disk: a generated instance
can be archived next to its results and reloaded bit-exactly.  The JSON
form carries a small header (format version, counts) plus the job
triples; the CSV form is a plain ``job_id,release,deadline`` table for
spreadsheet-side inspection.  Both round-trip exactly through
:class:`~repro.sim.instance.Instance`.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Union

from repro.errors import InvalidInstanceError
from repro.sim.instance import Instance
from repro.sim.job import Job

__all__ = [
    "instance_to_json",
    "instance_from_json",
    "save_instance",
    "load_instance",
    "save_instance_csv",
    "load_instance_csv",
]

PathLike = Union[str, pathlib.Path]

FORMAT = "repro-instance"
VERSION = 1


def instance_to_json(instance: Instance) -> str:
    """Serialize an instance to a JSON string."""
    payload = {
        "format": FORMAT,
        "version": VERSION,
        "n_jobs": len(instance),
        "horizon": instance.horizon,
        "jobs": [
            [j.job_id, j.release, j.deadline] for j in instance.by_release
        ],
    }
    return json.dumps(payload, indent=2)


def instance_from_json(text: str) -> Instance:
    """Parse an instance from :func:`instance_to_json` output.

    Raises
    ------
    InvalidInstanceError
        On a wrong format marker, unsupported version, or malformed jobs.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidInstanceError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise InvalidInstanceError("missing repro-instance format marker")
    if payload.get("version") != VERSION:
        raise InvalidInstanceError(
            f"unsupported instance format version {payload.get('version')}"
        )
    jobs = payload.get("jobs")
    if not isinstance(jobs, list):
        raise InvalidInstanceError("jobs must be a list")
    out = []
    for entry in jobs:
        if not (isinstance(entry, list) and len(entry) == 3):
            raise InvalidInstanceError(f"malformed job entry: {entry!r}")
        out.append(Job(int(entry[0]), int(entry[1]), int(entry[2])))
    inst = Instance(out)
    declared = payload.get("n_jobs")
    if declared is not None and declared != len(inst):
        raise InvalidInstanceError(
            f"header says {declared} jobs, payload has {len(inst)}"
        )
    return inst


def save_instance(instance: Instance, path: PathLike) -> None:
    """Write an instance to a JSON file."""
    pathlib.Path(path).write_text(instance_to_json(instance) + "\n")


def load_instance(path: PathLike) -> Instance:
    """Read an instance from a JSON file."""
    return instance_from_json(pathlib.Path(path).read_text())


def save_instance_csv(instance: Instance, path: PathLike) -> None:
    """Write an instance as a ``job_id,release,deadline`` CSV."""
    with pathlib.Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["job_id", "release", "deadline"])
        for j in instance.by_release:
            writer.writerow([j.job_id, j.release, j.deadline])


def load_instance_csv(path: PathLike) -> Instance:
    """Read an instance from :func:`save_instance_csv` output."""
    jobs = []
    with pathlib.Path(path).open() as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames != ["job_id", "release", "deadline"]:
            raise InvalidInstanceError(
                f"unexpected CSV header: {reader.fieldnames}"
            )
        for row in reader:
            jobs.append(
                Job(int(row["job_id"]), int(row["release"]), int(row["deadline"]))
            )
    return Instance(jobs)
