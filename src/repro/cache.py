"""Content-addressed on-disk cache for simulation results.

Every Monte-Carlo run in this repo is deterministic in
``(instance, protocol, jammer, seed, engine version)``; re-running a
sweep after an unrelated code change repeats exactly the same work.  This
module gives that work a stable address:

* :func:`stable_digest` walks a Python object graph (dataclasses, numpy
  arrays, closures with their cell contents, partials, plain containers)
  and produces a sha256 hex digest that is stable across processes and
  interpreter runs — unlike ``hash()``/``pickle`` it never folds in
  memory addresses or per-process randomization;
* :func:`run_key` combines the simulation inputs with
  :data:`repro.sim.engine.ENGINE_VERSION` into one digest, so any change
  to engine semantics invalidates every cached entry automatically;
* :class:`ResultCache` maps digests to small pickled records (the
  :class:`~repro.experiments.parallel.SeedDigest` sized results that the
  experiment layer ships between processes) under a cache root, with
  atomic writes and corrupted-entry recovery (a bad entry is deleted and
  reported as a miss — caching may never change results or crash a run).

The experiment layer (:func:`repro.experiments.parallel.run_seeds`,
:class:`repro.experiments.sweep.Sweep`,
:func:`repro.experiments.compare.compare_protocols`) accepts a ``cache=``
knob: ``None``/``False`` disables caching, ``True`` uses the default
root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), a path string or
:class:`ResultCache` selects an explicit root.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro.sim.engine import ENGINE_VERSION

__all__ = [
    "CACHE_FORMAT",
    "ResultCache",
    "as_cache",
    "default_cache_root",
    "run_key",
    "run_key_batch",
    "stable_digest",
]

#: Bump when the stored record layout changes (keys then stop matching).
#: 2: SeedDigest grew ``watchdog_reason`` (run-watchdog support).
#: 3: SeedDigest grew ``attempts_sum`` (channel-access energy).
CACHE_FORMAT = 3


# ---------------------------------------------------------------------------
# stable content digests
# ---------------------------------------------------------------------------


def _feed(h, obj: Any, seen: set) -> None:
    """Recursively mix ``obj`` into hash ``h`` in a canonical encoding.

    Every branch writes a type tag before its payload so that e.g. the
    string ``"1"`` and the integer ``1`` cannot collide.  Cycles are cut
    with an identity set (the first visit hashes the content; re-visits
    hash a marker).
    """
    if obj is None:
        h.update(b"N")
        return
    if obj is True or obj is False:
        h.update(b"T" if obj else b"F")
        return
    t = type(obj)
    if t is int:
        h.update(b"i%d;" % obj)
        return
    if t is float:
        h.update(b"f")
        h.update(obj.hex().encode())
        return
    if t is str:
        b = obj.encode("utf-8")
        h.update(b"s%d;" % len(b))
        h.update(b)
        return
    if t is bytes:
        h.update(b"b%d;" % len(obj))
        h.update(obj)
        return
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        _feed(h, obj.item(), seen)
        return

    oid = id(obj)
    if oid in seen:
        h.update(b"R")  # already on the walk stack: cycle marker
        return
    seen.add(oid)
    try:
        if t is tuple or t is list:
            h.update(b"(" if t is tuple else b"[")
            h.update(b"%d;" % len(obj))
            for item in obj:
                _feed(h, item, seen)
            return
        if t is dict:
            items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
            h.update(b"{%d;" % len(items))
            for k, v in items:
                _feed(h, k, seen)
                _feed(h, v, seen)
            return
        if t in (set, frozenset):
            h.update(b"<%d;" % len(obj))
            for item in sorted(obj, key=repr):
                _feed(h, item, seen)
            return
        if isinstance(obj, enum.Enum):
            h.update(b"E")
            _feed(h, type(obj).__qualname__, seen)
            _feed(h, obj.name, seen)
            return
        if isinstance(obj, np.ndarray):
            h.update(b"A")
            _feed(h, str(obj.dtype), seen)
            _feed(h, obj.shape, seen)
            h.update(np.ascontiguousarray(obj).tobytes())
            return
        if isinstance(obj, functools.partial):
            h.update(b"P")
            _feed(h, obj.func, seen)
            _feed(h, obj.args, seen)
            _feed(h, obj.keywords, seen)
            return
        if callable(obj) and hasattr(obj, "__qualname__"):
            # Function / method: identity is module + qualname, plus any
            # captured state (defaults and closure cells) so two closures
            # from one factory with different parameters digest apart.
            h.update(b"C")
            _feed(h, getattr(obj, "__module__", ""), seen)
            _feed(h, obj.__qualname__, seen)
            _feed(h, getattr(obj, "__defaults__", None), seen)
            closure = getattr(obj, "__closure__", None)
            if closure:
                for cell in closure:
                    _feed(h, cell.cell_contents, seen)
            self_obj = getattr(obj, "__self__", None)
            if self_obj is not None:
                _feed(h, self_obj, seen)
            return
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            h.update(b"D")
            _feed(h, type(obj).__qualname__, seen)
            for f in dataclasses.fields(obj):
                _feed(h, f.name, seen)
                _feed(h, getattr(obj, f.name), seen)
            return
        # Generic object: class identity plus visible state.
        h.update(b"O")
        _feed(h, type(obj).__module__, seen)
        _feed(h, type(obj).__qualname__, seen)
        state = getattr(obj, "__dict__", None)
        if state:
            _feed(h, state, seen)
        for klass in type(obj).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot.startswith("__"):
                    continue
                try:
                    _feed(h, (slot, getattr(obj, slot)), seen)
                except AttributeError:
                    continue
    finally:
        seen.discard(oid)


def stable_digest(obj: Any) -> str:
    """A sha256 hex digest of ``obj``'s content, stable across processes."""
    h = hashlib.sha256()
    _feed(h, obj, set())
    return h.hexdigest()


def run_key(
    *,
    instance: Any,
    protocol: Any,
    jammer: Any = None,
    seed: int = 0,
    faults: Any = None,
    extra: Any = None,
) -> str:
    """The cache key of one simulation run.

    ``protocol`` may be anything that pins down the protocol content —
    a factory callable (closures digest their captured parameters), a
    params dataclass, or a builder object.  ``extra`` lets callers fold
    in additional context (e.g. a digest-record schema version).

    ``faults`` is an optional :class:`repro.faults.FaultPlan`.  It is
    folded into the key only when set and not a no-op, so every key
    minted before fault injection existed — and every clean run since —
    keeps its address, while a faulted run can never collide with a
    clean one.  Stateful jammers (inside the plan or passed via
    ``jammer=``) are :meth:`~repro.channel.jamming.Jammer.reset` before
    digesting, so a jammer that already ran digests identically to a
    fresh one (the engine resets it again before simulating anyway).
    """
    reset = getattr(jammer, "reset", None)
    if callable(reset):
        reset()
    if faults is not None:
        if getattr(faults, "is_noop", False):
            faults = None  # the engine ignores no-op plans; so do keys
        else:
            reset = getattr(faults, "reset", None)
            if callable(reset):
                reset()
    key: tuple = (
        "repro-run",
        ENGINE_VERSION,
        CACHE_FORMAT,
        instance,
        protocol,
        jammer,
        int(seed),
        extra,
    )
    if faults is not None:
        key = key + ("faults", faults)
    return stable_digest(key)


def run_key_batch(
    *,
    instance: Any,
    protocol: Any,
    seeds: Any,
    jammer: Any = None,
    faults: Any = None,
    extra: Any = None,
) -> list:
    """:func:`run_key` for many seeds, hashing the shared prefix once.

    Returns ``[run_key(..., seed=s, ...) for s in seeds]`` — the keys are
    *string-equal* to per-seed calls — but the instance/protocol/jammer
    walk (by far the expensive part for a large instance) happens once:
    the common tuple prefix is fed into one hasher, which is then forked
    per seed with ``hash.copy()``.

    Feeding the prefix element-by-element with a fresh ``seen`` set per
    element matches :func:`stable_digest` on the whole tuple because the
    cycle-cut set only retains objects for the duration of their own
    walk (every entry is discarded on the way out), so no state crosses
    element boundaries.
    """
    reset = getattr(jammer, "reset", None)
    if callable(reset):
        reset()
    if faults is not None:
        if getattr(faults, "is_noop", False):
            faults = None
        else:
            reset = getattr(faults, "reset", None)
            if callable(reset):
                reset()
    prefix = (
        "repro-run",
        ENGINE_VERSION,
        CACHE_FORMAT,
        instance,
        protocol,
        jammer,
    )
    n_elems = len(prefix) + 2 + (2 if faults is not None else 0)
    h = hashlib.sha256()
    h.update(b"(")
    h.update(b"%d;" % n_elems)
    for item in prefix:
        _feed(h, item, set())
    keys = []
    for s in seeds:
        hs = h.copy()
        _feed(hs, int(s), set())
        _feed(hs, extra, set())
        if faults is not None:
            _feed(hs, "faults", set())
            _feed(hs, faults, set())
        keys.append(hs.hexdigest())
    return keys


# ---------------------------------------------------------------------------
# on-disk store
# ---------------------------------------------------------------------------


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """A content-addressed pickle store under one directory.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` (two-level fan-out to
    keep directories small).  All operations are safe against concurrent
    writers: writes go to a temp file and ``os.replace`` into place, and
    unreadable entries are treated as misses and deleted.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The stored value, or ``None`` on a miss or corrupted entry."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted / truncated / unreadable: recover by recomputing.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        if self.root.is_dir():
            for p in self.root.glob("*/*.pkl"):
                try:
                    p.unlink()
                    n += 1
                except OSError:
                    pass
        return n

    def stats(self) -> str:
        return (
            f"ResultCache({self.root}): {self.hits} hits, "
            f"{self.misses} misses, {self.puts} writes"
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ResultCache(root={str(self.root)!r})"


def as_cache(
    cache: Union[None, bool, str, Path, ResultCache]
) -> Optional[ResultCache]:
    """Coerce the public ``cache=`` knob into a :class:`ResultCache`.

    ``None``/``False`` → disabled; ``True`` → default root; a path →
    cache rooted there; a :class:`ResultCache` passes through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
