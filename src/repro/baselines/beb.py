"""Binary exponential backoff (BEB) with a deadline cutoff.

The classic algorithm the paper positions itself against (Section 1,
"Randomized Backoff"; used by Ethernet [72] and IEEE 802.11 [1]).  The
windowed formulation: a job's *k*-th attempt is made in a uniformly random
slot of a backoff window of ``2^k`` slots placed immediately after its
previous attempt; the window doubles after every failure.  A job keeps
trying until it succeeds or its deadline passes — the deadline is a
cutoff, not an input to the strategy, which is precisely the unfairness
the paper targets (no starvation protection, no prioritization).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, Message
from repro.errors import InvalidParameterError
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["BinaryExponentialBackoff", "beb_factory"]


class BinaryExponentialBackoff(Protocol):
    """Windowed binary exponential backoff.

    Parameters
    ----------
    ctx:
        Protocol context.
    initial_window:
        Size of the first backoff window (``>= 1``); the classic protocol
        uses 1 (transmit immediately) or a small constant.
    max_exponent:
        Cap on the doubling, mirroring e.g. 802.11's CWmax.  ``None``
        doubles forever.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        initial_window: int = 1,
        max_exponent: Optional[int] = 16,
    ) -> None:
        super().__init__(ctx)
        if initial_window < 1:
            raise InvalidParameterError(
                f"initial_window must be >= 1, got {initial_window}"
            )
        if max_exponent is not None and max_exponent < 0:
            raise InvalidParameterError(
                f"max_exponent must be >= 0, got {max_exponent}"
            )
        self.initial_window = initial_window
        self.max_exponent = max_exponent
        self.attempt = 0  # number of failed attempts so far
        self._next_tx_age: int = 0  # local age of the next attempt
        self.last_p = 0.0

    def current_backoff_window(self) -> int:
        """The backoff window for the upcoming attempt."""
        exp = self.attempt
        if self.max_exponent is not None:
            exp = min(exp, self.max_exponent)
        return self.initial_window << exp

    def on_begin(self, slot: int) -> None:
        w = self.current_backoff_window()
        self._next_tx_age = int(self.ctx.rng.integers(w))

    def on_act(self, slot: int) -> Optional[Message]:
        age = self.local_age(slot)
        self.last_p = 1.0 / self.current_backoff_window()
        if age == self._next_tx_age:
            return DataMessage(self.ctx.job_id)
        return None

    def on_observe(self, slot: int, obs: Observation) -> None:
        age = self.local_age(slot)
        if age == self._next_tx_age and not self.succeeded:
            # attempt failed: back off into the next, doubled window
            self.attempt += 1
            w = self.current_backoff_window()
            self._next_tx_age = age + 1 + int(self.ctx.rng.integers(w))


def beb_factory(initial_window: int = 1, max_exponent: Optional[int] = 16):
    """A :data:`~repro.sim.engine.ProtocolFactory` running BEB."""

    def make(job: Job, rng: np.random.Generator) -> BinaryExponentialBackoff:
        return BinaryExponentialBackoff(
            ProtocolContext.for_job(job, rng), initial_window, max_exponent
        )

    return make
