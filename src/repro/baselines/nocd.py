"""Contention resolution without collision detection (after arXiv
2111.06650 / 2004.08039).

The robust no-CD line drops the trinary feedback the rest of this repo
assumes: a device cannot tell an empty slot from a collision (both are
"no success"), so the only channel information is *success / no
success*.  The standard scheme maintains a contention estimate ``m`` and
transmits with probability ``1/m``: each observed success means one
contender drained (``m`` decrements), while a long stretch with no
success at all means the estimate is too low and the true contention is
choking the channel (``m`` doubles).  With the right patience factor the
estimate converges to within a constant of the true contention and
throughput is constant.

Feedback discipline: :meth:`on_observe` reads *only* whether the slot
carried a success (``obs.feedback is SUCCESS``) and the base class's
own-success latch — never the silence/noise distinction, which a no-CD
device cannot perceive.  A jammer that turns successes into noise is
therefore indistinguishable from contention and inflates ``m`` — the
documented robustness trade of this model: energy stays bounded while
throughput degrades.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.feedback import Feedback, Observation
from repro.channel.messages import DataMessage, Message
from repro.errors import InvalidParameterError
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["NoCollisionDetectionBackoff", "nocd_factory"]


class NoCollisionDetectionBackoff(Protocol):
    """Success-only contention estimation: transmit w.p. ``1/m``.

    Parameters
    ----------
    ctx:
        Protocol context.
    initial_estimate:
        Starting contention estimate ``m`` (``>= 1``).
    patience:
        How many successless slots (as a multiple of ``m``) before the
        estimate doubles; must be ``> 0``.  Larger values are more
        conservative: fewer spurious doublings, slower reaction to a
        burst of arrivals.
    max_estimate:
        Cap on ``m`` so adversarial jamming cannot push the send
        probability to zero permanently.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        initial_estimate: float = 2.0,
        patience: float = 2.0,
        max_estimate: float = float(1 << 20),
    ) -> None:
        super().__init__(ctx)
        if initial_estimate < 1.0:
            raise InvalidParameterError(
                f"initial_estimate must be >= 1, got {initial_estimate}"
            )
        if patience <= 0.0:
            raise InvalidParameterError(
                f"patience must be > 0, got {patience}"
            )
        if max_estimate < initial_estimate:
            raise InvalidParameterError(
                f"max_estimate {max_estimate} below initial_estimate "
                f"{initial_estimate}"
            )
        self.estimate = initial_estimate  # the current m
        self.patience = patience
        self.max_estimate = max_estimate
        self._successless = 0  # slots since the last observed success
        self.last_p = 0.0

    def on_act(self, slot: int) -> Optional[Message]:
        p = min(1.0, 1.0 / self.estimate)
        self.last_p = p
        if self.ctx.rng.random() < p:
            return DataMessage(self.ctx.job_id)
        return None

    def on_observe(self, slot: int, obs: Observation) -> None:
        if obs.feedback is Feedback.SUCCESS:
            # one contender drained; the estimate follows it down
            self.estimate = max(self.estimate - 1.0, 1.0)
            self._successless = 0
            return
        # no success this slot — silence and collision look identical
        self._successless += 1
        if self._successless >= self.patience * self.estimate:
            self.estimate = min(self.estimate * 2.0, self.max_estimate)
            self._successless = 0


def nocd_factory(
    initial_estimate: float = 2.0,
    patience: float = 2.0,
    max_estimate: float = float(1 << 20),
):
    """A :data:`~repro.sim.engine.ProtocolFactory` for the no-CD protocol."""

    def make(job: Job, rng: np.random.Generator) -> NoCollisionDetectionBackoff:
        return NoCollisionDetectionBackoff(
            ProtocolContext.for_job(job, rng),
            initial_estimate,
            patience,
            max_estimate,
        )

    return make
