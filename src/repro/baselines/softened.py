"""Collision-softening backoff (after arXiv 2408.11275).

The collision-softening line of work observes that classic exponential
backoff over-reacts to collisions: doubling the contention window after
*every* collision overshoots the contention estimate and wastes the tail
of the window.  Softened backoff grows the window by a *sub-doubling*
multiplicative factor on each of its own collided attempts, and shrinks
it again when the channel shows signs of draining (another job's
success) — a multiplicative-increase / multiplicative-decrease scheme
whose window tracks the true contention instead of racing past it.

Adaptation to this engine: the protocol transmits in each slot
independently with probability ``1/W`` (the probabilistic form of a
window, matching :class:`~repro.baselines.sawtooth.SawtoothBackoff`'s
idiom).  On an own collided attempt ``W ← min(W·growth, cap)``; on an
observed success — its own contention evidence *decreasing* — ``W ←
max(W/soften, 1)``.  Like BEB and sawtooth it ignores deadlines: the
deadline only truncates it, which is exactly the comparison the frontier
experiment draws against the deadline-aware protocols.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.feedback import Feedback, Observation
from repro.channel.messages import DataMessage, Message
from repro.errors import InvalidParameterError
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["CollisionSofteningBackoff", "softened_factory"]


class CollisionSofteningBackoff(Protocol):
    """MIMD backoff: sub-doubling growth on collision, decay on drain.

    Parameters
    ----------
    ctx:
        Protocol context.
    growth:
        Multiplicative window growth per own collided attempt; must be
        ``> 1``.  The softening literature uses factors well below the
        classic 2 (default 1.5).
    soften:
        Multiplicative window decrease per observed success; must be
        ``>= 1`` (1 disables the decrease, degenerating to a gentler
        BEB).
    initial_window:
        Starting window ``W`` (``>= 1``).
    max_window:
        Cap on ``W`` so a long jam cannot push the transmission
        probability to zero permanently.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        growth: float = 1.5,
        soften: float = 1.25,
        initial_window: float = 1.0,
        max_window: float = float(1 << 16),
    ) -> None:
        super().__init__(ctx)
        if growth <= 1.0:
            raise InvalidParameterError(f"growth must be > 1, got {growth}")
        if soften < 1.0:
            raise InvalidParameterError(f"soften must be >= 1, got {soften}")
        if initial_window < 1.0:
            raise InvalidParameterError(
                f"initial_window must be >= 1, got {initial_window}"
            )
        if max_window < initial_window:
            raise InvalidParameterError(
                f"max_window {max_window} below initial_window {initial_window}"
            )
        self.growth = growth
        self.soften = soften
        self.max_window = max_window
        self.window_size = initial_window  # the current W
        self._transmitted = False  # did we transmit in the pending slot?
        self.last_p = 0.0

    def on_act(self, slot: int) -> Optional[Message]:
        p = 1.0 / self.window_size
        self.last_p = p
        if self.ctx.rng.random() < p:
            self._transmitted = True
            return DataMessage(self.ctx.job_id)
        self._transmitted = False
        return None

    def on_observe(self, slot: int, obs: Observation) -> None:
        if self._transmitted and not self.succeeded:
            # own attempt collided (or was jammed): soft growth
            self.window_size = min(
                self.window_size * self.growth, self.max_window
            )
        elif obs.feedback is Feedback.SUCCESS:
            # a contender drained: decrease toward the new contention
            self.window_size = max(self.window_size / self.soften, 1.0)


def softened_factory(
    growth: float = 1.5,
    soften: float = 1.25,
    initial_window: float = 1.0,
    max_window: float = float(1 << 16),
):
    """A :data:`~repro.sim.engine.ProtocolFactory` running softened backoff."""

    def make(job: Job, rng: np.random.Generator) -> CollisionSofteningBackoff:
        return CollisionSofteningBackoff(
            ProtocolContext.for_job(job, rng),
            growth,
            soften,
            initial_window,
            max_window,
        )

    return make
