"""Slow-feedback energy-efficient backoff (after arXiv 2302.07751).

The energy-efficient backoff line asks how little a device can *listen*
and still resolve contention: per-slot feedback is expensive (the radio
must be on), so the protocol commits to a whole epoch of decisions in
advance and only learns its own success or failure.  The scheme here is
the batched form of that idea: epoch ``i`` spans ``base·2^i`` slots, and
the job picks a fixed *budget* of uniformly random slots in the epoch to
transmit in, sleeping through the rest.  Within an epoch it reads no
channel feedback at all — the single bit it consumes is whether one of
its own attempts succeeded (which the engine reports on the attempt
itself) — so its channel-access energy is ``O(budget · log T)`` over any
span ``T``, against the ``Θ(T)``-listening of fully-adaptive protocols.

Like the other unaware baselines, deadlines only truncate it; its energy
frugality is exactly what the deadline-miss × energy frontier trades off
against the deadline-aware protocols' responsiveness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, Message
from repro.errors import InvalidParameterError
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["SlowFeedbackBackoff", "slowfeedback_factory"]


class SlowFeedbackBackoff(Protocol):
    """Doubling epochs with a fixed per-epoch budget of blind attempts.

    Parameters
    ----------
    ctx:
        Protocol context.
    budget:
        Send attempts per epoch (``>= 1``).  Epochs shorter than the
        budget transmit in every slot.
    base:
        Length of epoch 0 (``>= 1``); epoch ``i`` spans ``base·2^i``
        slots.
    """

    def __init__(
        self, ctx: ProtocolContext, budget: int = 2, base: int = 2
    ) -> None:
        super().__init__(ctx)
        if budget < 1:
            raise InvalidParameterError(f"budget must be >= 1, got {budget}")
        if base < 1:
            raise InvalidParameterError(f"base must be >= 1, got {base}")
        self.budget = budget
        self.base = base
        self.epoch_len = 0  # set by _start_epoch
        self.epoch_pos = 0
        self._sends: list = []  # ascending send offsets of this epoch
        self._send_i = 0  # next offset to compare against
        self.last_p = 0.0
        self._start_epoch(base)

    def _start_epoch(self, length: int) -> None:
        self.epoch_len = length
        self.epoch_pos = 0
        self._send_i = 0
        k = min(self.budget, length)
        picks = self.ctx.rng.choice(length, size=k, replace=False)
        self._sends = sorted(int(x) for x in picks)

    def on_act(self, slot: int) -> Optional[Message]:
        # Expected send rate of the epoch; the actual decision is the
        # pre-committed offset list (no per-slot randomness or feedback).
        self.last_p = min(self.budget, self.epoch_len) / self.epoch_len
        if (
            self._send_i < len(self._sends)
            and self._sends[self._send_i] == self.epoch_pos
        ):
            self._send_i += 1
            return DataMessage(self.ctx.job_id)
        return None

    def on_observe(self, slot: int, obs: Observation) -> None:
        # Slow feedback: nothing in ``obs`` is consumed (the base class
        # already latched own-success, which stops the protocol).
        self.epoch_pos += 1
        if self.epoch_pos >= self.epoch_len and not self.succeeded:
            self._start_epoch(self.epoch_len * 2)


def slowfeedback_factory(budget: int = 2, base: int = 2):
    """A :data:`~repro.sim.engine.ProtocolFactory` running slow-feedback backoff."""

    def make(job: Job, rng: np.random.Generator) -> SlowFeedbackBackoff:
        return SlowFeedbackBackoff(
            ProtocolContext.for_job(job, rng), budget, base
        )

    return make
