"""The windowed-backoff family ([91]: "Singletons for Simpletons").

Classic backoff is a sequence of **windows**: during the k-th window of
size ``w_k`` the job transmits in exactly one uniformly random slot of
the window.  The growth schedule is the whole algorithm:

* binary exponential — ``w_k = 2^k`` (see :mod:`repro.baselines.beb`,
  kept separate since it is the headline baseline);
* **fixed** — ``w_k = W`` forever (slotted-ALOHA-with-memory);
* **linear** — ``w_k = k·W``;
* **polynomial** — ``w_k = W·k^d`` for degree d (quadratic by default);
* **fibonacci** — ``w_k = W·F_k``, an intermediate growth rate between
  polynomial and exponential that the windowed-backoff literature uses
  as a probe of the growth-rate/makespan trade-off.

[91] revisits exactly these schedules with Chernoff-style analyses; the
E17 face-off benchmark reproduces the qualitative ordering (slower
growth ⇒ better makespan at known scale but worse adaptivity; faster
growth ⇒ robust but overshoots).  All variants stop at their deadline,
like every baseline here.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, Message
from repro.errors import InvalidParameterError
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = [
    "WindowedBackoff",
    "fixed_window_factory",
    "linear_backoff_factory",
    "polynomial_backoff_factory",
    "fibonacci_backoff_factory",
]

#: Maps the 1-indexed attempt number to that attempt's window size.
GrowthSchedule = Callable[[int], int]


class WindowedBackoff(Protocol):
    """One random transmission per window; windows sized by a schedule."""

    def __init__(
        self, ctx: ProtocolContext, schedule: GrowthSchedule, name: str = ""
    ) -> None:
        super().__init__(ctx)
        self.schedule = schedule
        self.name = name or "windowed"
        self.attempt = 1
        self._window_size = self._checked_size(1)
        self._window_start = 0  # local age at which the current window began
        self._tx_offset = 0
        self.last_p = 0.0

    def _checked_size(self, attempt: int) -> int:
        size = int(self.schedule(attempt))
        if size < 1:
            raise InvalidParameterError(
                f"growth schedule returned {size} for attempt {attempt}"
            )
        return size

    def on_begin(self, slot: int) -> None:
        self._tx_offset = int(self.ctx.rng.integers(self._window_size))

    def on_act(self, slot: int) -> Optional[Message]:
        age = self.local_age(slot)
        self.last_p = 1.0 / self._window_size
        if age - self._window_start == self._tx_offset:
            return DataMessage(self.ctx.job_id)
        return None

    def on_observe(self, slot: int, obs: Observation) -> None:
        age = self.local_age(slot)
        if age - self._window_start == self._window_size - 1 and not self.succeeded:
            # window over: open the next one
            self.attempt += 1
            self._window_start = age + 1
            self._window_size = self._checked_size(self.attempt)
            self._tx_offset = int(self.ctx.rng.integers(self._window_size))


def _factory(schedule: GrowthSchedule, name: str):
    def make(job: Job, rng: np.random.Generator) -> WindowedBackoff:
        return WindowedBackoff(ProtocolContext.for_job(job, rng), schedule, name)

    return make


def fixed_window_factory(window: int = 32):
    """``w_k = W``: memoryful slotted ALOHA at rate 1/W."""
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    return _factory(lambda k: window, f"fixed({window})")


def linear_backoff_factory(base: int = 4):
    """``w_k = k·W``."""
    if base < 1:
        raise InvalidParameterError(f"base must be >= 1, got {base}")
    return _factory(lambda k: base * k, f"linear({base})")


def polynomial_backoff_factory(base: int = 2, degree: int = 2):
    """``w_k = W·k^d`` (quadratic by default)."""
    if base < 1 or degree < 1:
        raise InvalidParameterError("base and degree must be >= 1")
    return _factory(lambda k: base * k**degree, f"poly({base},{degree})")


def fibonacci_backoff_factory(base: int = 2):
    """``w_k = W·F_k`` with F₁ = F₂ = 1."""
    if base < 1:
        raise InvalidParameterError(f"base must be >= 1, got {base}")

    def fib_window(k: int) -> int:
        a, b = 1, 1
        for _ in range(k - 1):
            a, b = b, a + b
        return base * a

    return _factory(fib_window, f"fibonacci({base})")
