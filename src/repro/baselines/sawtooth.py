"""Sawtooth backoff — the asymptotically optimal non-monotone strategy.

The paper's related-work section (citing [8, 45, 52]) notes that
monotone backoff is suboptimal for makespan while the non-monotone
*sawtooth* strategy is optimal.  One sawtooth "run" over a window of size
``W`` executes rounds of sizes ``W, W/2, W/4, ..., 1``: in the round of
size ``s`` the job transmits in each slot independently with probability
``1/s``.  If the whole run fails, the next run doubles ``W`` and repeats.
Sweeping the probability *upward* within a run guarantees that whatever
the (unknown) number of contenders ``n``, some round has ``Θ(1/n)``-ish
probability while ``Θ(n)`` slots remain — hence constant throughput.

Like BEB, sawtooth ignores deadlines: the deadline only truncates it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, Message
from repro.errors import InvalidParameterError
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["SawtoothBackoff", "sawtooth_factory"]


class SawtoothBackoff(Protocol):
    """Doubling runs of halving rounds, transmitting w.p. ``1/s`` in size-s rounds."""

    def __init__(self, ctx: ProtocolContext, initial_run: int = 2) -> None:
        super().__init__(ctx)
        if initial_run < 2:
            raise InvalidParameterError(
                f"initial_run must be >= 2, got {initial_run}"
            )
        self.initial_run = initial_run
        self.run_size = initial_run  # W of the current run
        self.round_size = initial_run  # s of the current round within the run
        self.round_left = initial_run  # slots remaining in the current round
        self.last_p = 0.0

    def _advance_position(self) -> None:
        """Move to the next slot of the sawtooth pattern."""
        self.round_left -= 1
        if self.round_left > 0:
            return
        if self.round_size > 1:
            self.round_size //= 2
        else:
            # run exhausted: double the run and restart the sweep
            self.run_size *= 2
            self.round_size = self.run_size
        self.round_left = self.round_size

    def on_act(self, slot: int) -> Optional[Message]:
        p = 1.0 / self.round_size
        self.last_p = p
        if self.ctx.rng.random() < p:
            return DataMessage(self.ctx.job_id)
        return None

    def on_observe(self, slot: int, obs: Observation) -> None:
        self._advance_position()


def sawtooth_factory(initial_run: int = 2):
    """A :data:`~repro.sim.engine.ProtocolFactory` running sawtooth backoff."""

    def make(job: Job, rng: np.random.Generator) -> SawtoothBackoff:
        return SawtoothBackoff(ProtocolContext.for_job(job, rng), initial_run)

    return make
