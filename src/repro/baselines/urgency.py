"""Urgency-ramped ALOHA: probability rises as the deadline approaches.

The natural deadline-aware heuristic missing from the paper's menu: a
memoryless transmitter whose per-slot probability is ``c / remaining``
where *remaining* is the number of slots left in its window.  Early in a
large window the job is nearly silent (like SLINGSHOT's pullback); as
the deadline closes in, the probability ramps toward the 1/2 cap (like
the anarchist's release, but continuous).

Worth having as a baseline because it captures the *intuition* behind
PUNCTUAL (be meek early, aggressive late) with none of its machinery —
no rounds, no estimation, no leader.  The comparison benches show where
intuition alone falls short: with many same-deadline jobs everyone ramps
together and the endgame collapses into collisions, whereas PUNCTUAL's
estimation spreads the load.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, Message
from repro.errors import InvalidParameterError
from repro.params import cap_probability
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["UrgencyAloha", "urgency_aloha_factory"]


class UrgencyAloha(Protocol):
    """Transmit w.p. ``min(c / remaining, 1/2)``, remaining-slot counted.

    Parameters
    ----------
    c:
        The urgency budget: the expected number of attempts a lone job
        makes over any suffix of its window is ≈ ``c·ln(remaining)``,
        concentrated near the deadline.
    """

    def __init__(self, ctx: ProtocolContext, c: float = 2.0) -> None:
        super().__init__(ctx)
        if c <= 0:
            raise InvalidParameterError(f"c must be positive, got {c}")
        self.c = float(c)
        self.last_p = 0.0

    def probability_at(self, slot: int) -> float:
        remaining = self.ctx.window - self.local_age(slot)
        if remaining <= 0:
            return 0.0
        return cap_probability(self.c / remaining)

    def on_act(self, slot: int) -> Optional[Message]:
        p = self.probability_at(slot)
        self.last_p = p
        if p > 0 and self.ctx.rng.random() < p:
            return DataMessage(self.ctx.job_id)
        return None

    def on_observe(self, slot: int, obs: Observation) -> None:
        pass


def urgency_aloha_factory(c: float = 2.0):
    """A :data:`~repro.sim.engine.ProtocolFactory` for urgency-ramped ALOHA."""
    if c <= 0:
        raise InvalidParameterError(f"c must be positive, got {c}")

    def make(job: Job, rng: np.random.Generator) -> UrgencyAloha:
        return UrgencyAloha(ProtocolContext.for_job(job, rng), c)

    return make
