"""Slotted ALOHA with a fixed (or window-scaled) transmit probability.

The simplest memoryless strategy: transmit with probability ``p`` in
every slot until success or deadline.  With ``p`` tuned to ``1/n`` for
``n`` contenders this is throughput-optimal among memoryless strategies
(the classic ``1/e``), but ``n`` is unknown in our setting — so ALOHA
serves as the "no coordination at all" baseline, and the window-scaled
variant ``p = c/w_j`` is the natural deadline-aware tweak (each job
expects ``c`` attempts within its window).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, Message
from repro.errors import InvalidParameterError
from repro.params import cap_probability
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["SlottedAloha", "aloha_factory", "window_scaled_aloha_factory"]


class SlottedAloha(Protocol):
    """Transmit i.i.d. with probability ``p`` every slot until success."""

    def __init__(self, ctx: ProtocolContext, p: float) -> None:
        super().__init__(ctx)
        if not 0.0 < p <= 1.0:
            raise InvalidParameterError(f"p must be in (0, 1], got {p}")
        self.p = p
        self.last_p = p

    def on_act(self, slot: int) -> Optional[Message]:
        if self.ctx.rng.random() < self.p:
            return DataMessage(self.ctx.job_id)
        return None

    def on_observe(self, slot: int, obs: Observation) -> None:
        pass


def aloha_factory(p: float):
    """ALOHA with one fixed probability for every job."""

    def make(job: Job, rng: np.random.Generator) -> SlottedAloha:
        return SlottedAloha(ProtocolContext.for_job(job, rng), p)

    return make


def window_scaled_aloha_factory(c: float = 4.0):
    """ALOHA with ``p = min(c / w_j, 1/2)`` per job.

    Each job budgets ``c`` expected attempts across its window — a
    deadline-aware heuristic that, like UNIFORM, still lets small-window
    jobs drown among large populations (no estimation, no pecking order).
    """
    if c <= 0:
        raise InvalidParameterError(f"c must be positive, got {c}")

    def make(job: Job, rng: np.random.Generator) -> SlottedAloha:
        p = cap_probability(c / job.window)
        p = max(p, 1e-9)  # degenerate huge windows still get a chance
        return SlottedAloha(ProtocolContext.for_job(job, rng), p)

    return make
