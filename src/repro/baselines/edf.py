"""Centralized earliest-deadline-first — the omniscient reference point.

Section 3 observes that a centralized scheduler doing pecking-order /
earliest-deadline-first scheduling is optimal for jobs with deadlines.
This module provides that genie: a scheduler that sees every job and
assigns one slot per job with no collisions, computing the best possible
outcome for an instance.  Protocol comparisons report their success rates
against this upper bound.

Two entry points:

* :func:`edf_schedule` — the assignment itself (job → slot), maximal: it
  delivers every job iff the instance is 1-slack feasible;
* :class:`OracleEdfProtocol` — the same assignment wrapped as a
  :class:`Protocol` so it can run through the ordinary engine (each job
  transmits exactly in its assigned slot; no collisions ever occur),
  letting the comparison benches use one pipeline for everything.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional

import numpy as np

from repro.channel.messages import DataMessage, Message
from repro.sim.instance import Instance
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["edf_schedule", "OracleEdfProtocol", "edf_factory"]


def edf_schedule(instance: Instance) -> Dict[int, int]:
    """Earliest-deadline-first slot assignment.

    Scans time; at each slot serves the released, unexpired job with the
    earliest deadline.  Returns ``job_id -> slot`` for every job that can
    be served; jobs missing from the map are unschedulable (EDF is
    optimal for unit jobs, so no schedule serves more).
    """
    jobs = list(instance.by_release)
    assignment: Dict[int, int] = {}
    if not jobs:
        return assignment
    heap: list[tuple[int, int]] = []  # (deadline, job_id)
    idx = 0
    t = jobs[0].release
    while idx < len(jobs) or heap:
        if not heap and idx < len(jobs):
            t = max(t, jobs[idx].release)
        while idx < len(jobs) and jobs[idx].release <= t:
            heapq.heappush(heap, (jobs[idx].deadline, jobs[idx].job_id))
            idx += 1
        # drop expired jobs
        while heap and heap[0][0] <= t:
            heapq.heappop(heap)
        if heap:
            _, jid = heapq.heappop(heap)
            assignment[jid] = t
        t += 1
    return assignment


class OracleEdfProtocol(Protocol):
    """Transmit exactly in the slot the centralized EDF oracle assigned."""

    def __init__(self, ctx: ProtocolContext, assigned_slot: Optional[int]) -> None:
        super().__init__(ctx)
        self.assigned_slot = assigned_slot
        self.last_p = 0.0

    def on_act(self, slot: int) -> Optional[Message]:
        if self.assigned_slot is not None and slot == self.assigned_slot:
            self.last_p = 1.0
            return DataMessage(self.ctx.job_id)
        self.last_p = 0.0
        return None

    def on_observe(self, slot: int, obs) -> None:
        if self.assigned_slot is None or slot >= self.assigned_slot:
            if not self.succeeded:
                self.gave_up = True


def edf_factory(instance: Instance):
    """A factory precomputing the EDF assignment for ``instance``.

    Must be built from the same instance that is then simulated.
    """
    assignment = edf_schedule(instance)

    def make(job: Job, rng: np.random.Generator) -> OracleEdfProtocol:
        return OracleEdfProtocol(
            ProtocolContext.for_job(job, rng), assignment.get(job.job_id)
        )

    return make
