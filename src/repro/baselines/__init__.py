"""Baseline strategies: classic backoff (BEB, sawtooth, ALOHA, EDF) and
the modern zoo (collision-softening, slow-feedback, no-CD)."""

from repro.baselines.aloha import (
    SlottedAloha,
    aloha_factory,
    window_scaled_aloha_factory,
)
from repro.baselines.beb import BinaryExponentialBackoff, beb_factory
from repro.baselines.edf import OracleEdfProtocol, edf_factory, edf_schedule
from repro.baselines.nocd import NoCollisionDetectionBackoff, nocd_factory
from repro.baselines.sawtooth import SawtoothBackoff, sawtooth_factory
from repro.baselines.slowfeedback import (
    SlowFeedbackBackoff,
    slowfeedback_factory,
)
from repro.baselines.softened import (
    CollisionSofteningBackoff,
    softened_factory,
)
from repro.baselines.urgency import UrgencyAloha, urgency_aloha_factory
from repro.baselines.windowed import (
    WindowedBackoff,
    fibonacci_backoff_factory,
    fixed_window_factory,
    linear_backoff_factory,
    polynomial_backoff_factory,
)

__all__ = [
    "UrgencyAloha",
    "urgency_aloha_factory",
    "WindowedBackoff",
    "fixed_window_factory",
    "linear_backoff_factory",
    "polynomial_backoff_factory",
    "fibonacci_backoff_factory",
    "SlottedAloha",
    "aloha_factory",
    "window_scaled_aloha_factory",
    "BinaryExponentialBackoff",
    "beb_factory",
    "OracleEdfProtocol",
    "edf_factory",
    "edf_schedule",
    "SawtoothBackoff",
    "sawtooth_factory",
    "CollisionSofteningBackoff",
    "softened_factory",
    "SlowFeedbackBackoff",
    "slowfeedback_factory",
    "NoCollisionDetectionBackoff",
    "nocd_factory",
]
