"""The multiple-access channel with collision detection.

Implements the model of Section 1.1: time is a sequence of synchronized
slots; in each slot any subset of players may transmit; a transmission
succeeds iff it is the *only* one in its slot (and the jammer does not
corrupt it).  Listeners perceive trinary feedback (silence / success /
noise) and receive the message content on success.

The channel is a pure resolution function plus a slot counter and success
log; it holds no job state, so it can be shared by the slot engine, the
fast paths, and unit tests alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.feedback import Feedback, Observation
from repro.channel.jamming import Jammer, NoJammer
from repro.channel.messages import Message

__all__ = ["SlotOutcome", "MultipleAccessChannel", "resolve_slot"]


@dataclass(frozen=True, slots=True)
class SlotOutcome:
    """What happened on the channel in one slot.

    Attributes
    ----------
    slot:
        Index of the slot (simulator timeline).
    feedback:
        Trinary channel state perceived by every listener.
    message:
        Delivered message on SUCCESS, else ``None``.
    n_transmitters:
        How many players transmitted (known to the simulator, not to jobs).
    jammed:
        Whether the jammer corrupted the slot.
    """

    slot: int
    feedback: Feedback
    message: Optional[Message]
    n_transmitters: int
    jammed: bool

    @property
    def successful(self) -> bool:
        return self.feedback is Feedback.SUCCESS


def resolve_slot(
    slot: int,
    transmissions: Sequence[Tuple[int, Message]],
    jammer: Jammer,
    rng: np.random.Generator,
) -> SlotOutcome:
    """Resolve one slot of the multiple-access channel.

    Parameters
    ----------
    slot:
        Slot index, passed through to the outcome and the jammer.
    transmissions:
        ``(player_id, message)`` pairs for every player transmitting in
        this slot.  Order is irrelevant.
    jammer:
        Adversary consulted once, after the would-be outcome is known.
    rng:
        Randomness source for the jammer.

    Returns
    -------
    SlotOutcome
        Silence when nobody transmits, success when exactly one player
        transmits un-jammed, noise otherwise.
    """
    n = len(transmissions)
    message: Optional[Message] = transmissions[0][1] if n == 1 else None
    jammed = jammer.attempt(slot, n, message, rng)
    if jammed:
        return SlotOutcome(slot, Feedback.NOISE, None, n, True)
    if n == 0:
        return SlotOutcome(slot, Feedback.SILENCE, None, 0, False)
    if n == 1:
        return SlotOutcome(slot, Feedback.SUCCESS, message, 1, False)
    return SlotOutcome(slot, Feedback.NOISE, None, n, False)


class MultipleAccessChannel:
    """Stateful wrapper around :func:`resolve_slot`.

    Tracks the slot counter, accumulates a success log, and converts a
    :class:`SlotOutcome` into per-player :class:`Observation` objects.

    Parameters
    ----------
    jammer:
        Adversary; defaults to the benign :class:`NoJammer`.
    rng:
        Randomness source used only for jamming decisions.  Protocol
        randomness lives with the protocols so that jamming does not
        perturb their random streams.
    """

    def __init__(
        self,
        jammer: Optional[Jammer] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.jammer: Jammer = jammer if jammer is not None else NoJammer()
        self.rng: np.random.Generator = (
            rng if rng is not None else np.random.default_rng()
        )
        self.now: int = 0
        self.successes: List[SlotOutcome] = []
        self._history: List[SlotOutcome] = []

    @property
    def history(self) -> List[SlotOutcome]:
        """All resolved slots, in order (one entry per slot)."""
        return self._history

    def step(self, transmissions: Sequence[Tuple[int, Message]]) -> SlotOutcome:
        """Resolve the current slot and advance the clock.

        Raises
        ------
        ValueError
            If the same player id appears twice in ``transmissions``.
        """
        seen: Dict[int, bool] = {}
        for pid, _ in transmissions:
            if pid in seen:
                raise ValueError(f"player {pid} transmitted twice in slot {self.now}")
            seen[pid] = True
        outcome = resolve_slot(self.now, transmissions, self.jammer, self.rng)
        self._history.append(outcome)
        if outcome.successful:
            self.successes.append(outcome)
        self.now += 1
        return outcome

    @staticmethod
    def observation_for(
        outcome: SlotOutcome, player: int, transmitted: bool
    ) -> Observation:
        """Build the :class:`Observation` player ``player`` perceives.

        All players (transmitters included) perceive the trinary feedback;
        a transmitter additionally learns whether its own transmission was
        the successful one.
        """
        own = (
            transmitted
            and outcome.successful
            and outcome.message is not None
            and outcome.message.sender == player
        )
        if outcome.feedback is Feedback.SUCCESS:
            assert outcome.message is not None
            return Observation.success(outcome.message, transmitted, own)
        if outcome.feedback is Feedback.SILENCE:
            return Observation.silence(transmitted)
        return Observation.noise(transmitted)

    def reset(self) -> None:
        """Clear the clock and logs (the jammer and rng are kept)."""
        self.now = 0
        self.successes.clear()
        self._history.clear()
