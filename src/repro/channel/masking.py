"""Feedback masking: running protocols on weaker channel models.

The paper's model grants **collision detection**: listeners distinguish
silence from noise (Section 1.1, "the channel provides trinary
feedback"), citing consistency with prior work; a parallel line of work
([16] in the paper) studies contention resolution *without* collision
detection, where a listener only learns "I received a message" or "I
did not".

:class:`FeedbackMaskingProtocol` wraps any protocol and degrades its
observations before delivery, letting the A6 ablation measure exactly
what each feedback bit is worth to each algorithm:

* ``NO_COLLISION_DETECTION`` — noise is reported as silence (the binary
  "message or nothing" channel).  The transmitter's own success bit is
  kept (acknowledgement-style feedback, standard in the no-CD model).
* ``NO_FEEDBACK`` — listeners learn nothing at all (silence always);
  transmitters still learn their own outcome.  The harshest model in
  which backoff is still meaningful.

Masking happens strictly on the observation path: the wrapped protocol's
actions pass through untouched, and the engine's ground truth is
unaffected — only the information available to the algorithm shrinks.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.channel.feedback import Feedback, Observation
from repro.channel.messages import Message
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext

__all__ = ["FeedbackMode", "FeedbackMaskingProtocol", "masked_factory"]


class FeedbackMode(enum.Enum):
    """How much channel feedback the wrapped protocol receives."""

    FULL = "full"  # trinary feedback (the paper's model); no masking
    NO_COLLISION_DETECTION = "no_cd"  # noise reads as silence
    NO_FEEDBACK = "none"  # listeners hear nothing


def mask_observation(obs: Observation, mode: FeedbackMode) -> Observation:
    """Degrade one observation according to the feedback mode.

    The transmitter's own-success bit survives every mode (a sender
    always learns whether its own transmission got through — without at
    least that, no termination is possible).
    """
    if mode is FeedbackMode.FULL:
        return obs
    if mode is FeedbackMode.NO_COLLISION_DETECTION:
        if obs.feedback is Feedback.NOISE:
            return Observation.silence(transmitted=obs.transmitted)
        return obs
    # NO_FEEDBACK: keep only the sender's own outcome
    if obs.own_success:
        return obs
    return Observation.silence(transmitted=obs.transmitted)


class FeedbackMaskingProtocol(Protocol):
    """Wrap a protocol, degrading every observation it receives."""

    def __init__(self, inner: Protocol, mode: FeedbackMode) -> None:
        super().__init__(inner.ctx)
        self.inner = inner
        self.mode = mode

    def on_begin(self, slot: int) -> None:
        self.inner.begin(slot)

    def on_act(self, slot: int) -> Optional[Message]:
        msg = self.inner.act(slot)
        self.last_p = getattr(self.inner, "last_p", 0.0)
        return msg

    def on_observe(self, slot: int, obs: Observation) -> None:
        self.inner.observe(slot, mask_observation(obs, self.mode))
        # mirror the inner protocol's resolution
        if self.inner.succeeded:
            self.succeeded = True
        if self.inner.gave_up:
            self.gave_up = True

    @property
    def transmissions(self) -> int:  # type: ignore[override]
        return self.inner.transmissions

    @transmissions.setter
    def transmissions(self, value: int) -> None:
        # the base class initializes this attribute; writes are ignored
        # because the inner protocol is the single source of truth.
        pass


def masked_factory(inner_factory, mode: FeedbackMode):
    """Wrap a protocol factory so every job sees masked feedback."""

    def make(job: Job, rng: np.random.Generator) -> FeedbackMaskingProtocol:
        return FeedbackMaskingProtocol(inner_factory(job, rng), mode)

    return make
