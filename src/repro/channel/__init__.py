"""Multiple-access channel substrate: feedback, messages, jamming, resolution.

This package implements the communication model of Section 1.1 of
*Contention Resolution with Message Deadlines* (SPAA 2020): synchronized
slots, collisions, trinary feedback with collision detection, and the
stochastic jamming adversary of Section 3.
"""

from repro.channel.channel import MultipleAccessChannel, SlotOutcome, resolve_slot
from repro.channel.feedback import Feedback, Observation
from repro.channel.jamming import (
    BudgetJammer,
    BurstJammer,
    Jammer,
    NoJammer,
    PaperGuaranteeWarning,
    PeriodicJammer,
    ReactiveJammer,
    StochasticJammer,
    WindowedRateJammer,
)
from repro.channel.masking import (
    FeedbackMaskingProtocol,
    FeedbackMode,
    mask_observation,
    masked_factory,
)
from repro.channel.messages import (
    ControlMessage,
    DataMessage,
    EstimateReport,
    LeaderClaim,
    Message,
    StartMessage,
    TimekeeperBeacon,
)

__all__ = [
    "FeedbackMaskingProtocol",
    "FeedbackMode",
    "mask_observation",
    "masked_factory",
    "MultipleAccessChannel",
    "SlotOutcome",
    "resolve_slot",
    "Feedback",
    "Observation",
    "Jammer",
    "NoJammer",
    "PaperGuaranteeWarning",
    "StochasticJammer",
    "ReactiveJammer",
    "PeriodicJammer",
    "BudgetJammer",
    "BurstJammer",
    "WindowedRateJammer",
    "Message",
    "DataMessage",
    "ControlMessage",
    "StartMessage",
    "LeaderClaim",
    "TimekeeperBeacon",
    "EstimateReport",
]
