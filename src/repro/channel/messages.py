"""Message types exchanged on the multiple-access channel.

The paper distinguishes the *data message* each job must deliver from
*control messages* that protocols may transmit to coordinate (Section 1.1).
PUNCTUAL additionally uses three specific control messages: ``start``
messages for round synchronization, leader-claim messages in the
leader-election slot, and timekeeper beacons broadcast by the current leader
(Figure 2).  Each gets its own dataclass so that protocol logic can
pattern-match on type rather than inspect string payloads.

All message classes are frozen: a message on the channel is immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

__all__ = [
    "Message",
    "DataMessage",
    "ControlMessage",
    "StartMessage",
    "LeaderClaim",
    "TimekeeperBeacon",
    "EstimateReport",
    "KIND_DATA",
    "KIND_CONTROL",
    "KIND_BEACON",
]

#: Message-kind tags, exposed as the class attribute :attr:`Message.kind`.
#: The engine's delivery bookkeeping dispatches on the tag instead of
#: ``isinstance`` chains; only these three kinds matter to delivery
#: (beacons may piggyback a data payload, every other control message
#: delivers nothing).
KIND_DATA = 0
KIND_CONTROL = 1
KIND_BEACON = 2


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for anything transmitted in one slot.

    Attributes
    ----------
    sender:
        The simulator-level identity of the transmitting job.  Jobs in the
        model have no IDs; this field exists purely for bookkeeping and
        assertions in the simulator and is never read by protocol logic
        except to recognise *its own* successful transmission, which the
        model does allow (a transmitter knows whether it succeeded).
    """

    kind: ClassVar[int] = KIND_CONTROL

    sender: int


@dataclass(frozen=True, slots=True)
class DataMessage(Message):
    """The unit-length payload a job must deliver within its window."""

    kind: ClassVar[int] = KIND_DATA


@dataclass(frozen=True, slots=True)
class ControlMessage(Message):
    """A generic coordination message (e.g. estimation-protocol pings)."""


@dataclass(frozen=True, slots=True)
class StartMessage(ControlMessage):
    """PUNCTUAL ``start`` message opening a round (first two slots)."""


@dataclass(frozen=True, slots=True)
class LeaderClaim(ControlMessage):
    """"I am the leader with deadline ``deadline``" (SLINGSHOT pullback).

    ``deadline`` is the claimant's *remaining* window length expressed in
    the shared round timeline, which is all jobs need to compare deadlines;
    the absolute slot index is not known to jobs (no global clock).
    """

    deadline: int


@dataclass(frozen=True, slots=True)
class TimekeeperBeacon(ControlMessage):
    """A leader's timekeeper-slot broadcast (BECOME-LEADER).

    Attributes
    ----------
    global_time:
        The leader's announced clock: the slot index in the leader's own
        timeline.  Followers trim their windows against this clock.
    deadline:
        The leader's deadline on the same timeline, so arriving jobs can
        decide whether this leader outlives them.
    abdicating:
        True in the last timekeeper slot of the leader's window, where it
        also delivers its data payload.
    payload:
        The leader's own data message, piggybacked when abdicating or when
        a deposed leader hands over.
    """

    kind: ClassVar[int] = KIND_BEACON

    global_time: int
    deadline: int
    abdicating: bool = False
    payload: Optional[DataMessage] = None


@dataclass(frozen=True, slots=True)
class EstimateReport(ControlMessage):
    """A ping transmitted during the size-estimation protocol.

    ``phase`` records which estimation phase the ping belongs to; listeners
    use their own phase counters, so this field is diagnostic only.
    """

    phase: int
