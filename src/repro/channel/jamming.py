"""Jamming adversaries for the multiple-access channel.

Section 3 of the paper ("Jamming") defines a stochastic adversary that may
inspect each slot — including the content of any message about to be
broadcast — and decide whether to jam it; a jamming attempt succeeds with a
constant probability ``p_jam``.  The analysis tolerates ``p_jam <= 1/2``.

:class:`Jammer` is the abstract interface the channel consults once per
slot.  :class:`StochasticJammer` is the paper's adversary (jam every slot
that contains a would-be success).  :class:`ReactiveJammer` and
:class:`PeriodicJammer` are extensions used by the robustness benchmarks:
the former jams only slots carrying a message matching a predicate, the
latter jams on a fixed schedule regardless of content.

The *budget-bounded* adversaries model the energy-constrained jammers of
the related work tracked in PAPERS.md (Bender et al.'s resource-bounded
setting): :class:`BudgetJammer` may corrupt at most a fixed total number
of slots, :class:`WindowedRateJammer` is rate-limited per window, and
:class:`BurstJammer` alternates deterministic on/off bursts.  Budgeted
jammers carry per-run counters; the engine calls :meth:`Jammer.reset`
once at the start of every simulation so one jammer object can be reused
across seeds without leaking spent budget between runs.
"""

from __future__ import annotations

import abc
import warnings
from typing import Callable, Optional, Sequence

import numpy as np

from repro.channel.messages import Message
from repro.errors import InvalidParameterError, PaperGuaranteeWarning

__all__ = [
    "Jammer",
    "NoJammer",
    "StochasticJammer",
    "ReactiveJammer",
    "PeriodicJammer",
    "BudgetJammer",
    "BurstJammer",
    "WindowedRateJammer",
    "warn_beyond_guarantee",
]

#: Theorem 14 tolerates an adversary that corrupts at most this fraction
#: of (success-carrying) slots.  Any adversary whose sustained corruption
#: rate exceeds it leaves the paper's analysed regime.
_GUARANTEE_FRACTION = 0.5


def warn_beyond_guarantee(description: str, fraction: float) -> None:
    """Warn when an adversary's sustained jamming rate voids Theorem 14.

    Every adversary constructor in this module (and in
    :mod:`repro.adversary`) funnels through here, so exceeding the
    paper's ``p_jam <= 1/2`` budget warns uniformly regardless of *how*
    the budget is spent — stochastic, rate-limited, duty-cycled, or
    reactive.  ``fraction`` is the adversary's worst-case sustained
    fraction of corrupted slots.
    """
    if fraction > _GUARANTEE_FRACTION:
        warnings.warn(
            PaperGuaranteeWarning(
                f"{description} sustains a jamming rate of {fraction:g} > "
                f"{_GUARANTEE_FRACTION:g}, beyond the p_jam <= 1/2 budget "
                "of Theorem 14; the paper's whp success guarantee no "
                "longer applies (legal, but you are charting the "
                "breakdown regime)"
            ),
            stacklevel=3,
        )


class Jammer(abc.ABC):
    """Decides, slot by slot, whether to corrupt the channel.

    The channel calls :meth:`attempt` exactly once per slot, *after* it
    knows what the slot would contain absent jamming.  The jammer sees the
    slot index, the number of transmitters, and the message that would be
    delivered (``None`` unless exactly one player transmitted).  Returning
    True turns the slot into noise.
    """

    @abc.abstractmethod
    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        """Return True to jam the slot (its feedback becomes NOISE)."""

    def reset(self) -> None:
        """Restore per-run state before a simulation starts.

        Stateless jammers (the default) do nothing.  Budgeted jammers
        restore their counters here so a single jammer object produces
        identical behavior for every seed of a sweep, and so content
        digests of a used jammer match those of a fresh one.
        """


class NoJammer(Jammer):
    """The benign channel: never jams."""

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NoJammer()"


class StochasticJammer(Jammer):
    """The paper's adversary: tries to jam would-be successes.

    The adversary is allowed to jam any slot, but jamming a slot that is
    already silent or already a collision changes nothing, so the
    worst-case strategy the paper analyses — and the one implemented here —
    targets exactly the slots that would otherwise carry a successful
    broadcast.  Each attempt succeeds independently with probability
    ``p_jam``.

    Parameters
    ----------
    p_jam:
        Success probability of each jamming attempt, in ``[0, 1]``.  The
        paper's guarantees require ``p_jam <= 1/2``; larger values are
        legal here so benchmarks can chart the breakdown point.
    jam_silence:
        If True, the adversary also injects noise into silent slots with
        probability ``p_jam``.  This models a cruder noise source and is
        off by default (it cannot hurt the protocols more than jamming
        successes, but it perturbs PUNCTUAL's synchronization heuristic and
        is exercised by robustness tests).
    """

    def __init__(self, p_jam: float, *, jam_silence: bool = False) -> None:
        if not 0.0 <= p_jam <= 1.0:
            raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
        warn_beyond_guarantee(f"StochasticJammer(p_jam={p_jam})", p_jam)
        self.p_jam = float(p_jam)
        self.jam_silence = bool(jam_silence)

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if n_transmitters == 1:
            return bool(rng.random() < self.p_jam)
        if n_transmitters == 0 and self.jam_silence:
            return bool(rng.random() < self.p_jam)
        return False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"StochasticJammer(p_jam={self.p_jam}, jam_silence={self.jam_silence})"


class ReactiveJammer(Jammer):
    """Jams only slots whose would-be message matches a predicate.

    The paper notes the adversary "can even look at the contents of the
    message itself"; this jammer makes that capability concrete.  For
    example, ``ReactiveJammer(lambda m: isinstance(m, LeaderClaim), 0.5)``
    attacks only leader election.
    """

    def __init__(
        self, predicate: Callable[[Message], bool], p_jam: float
    ) -> None:
        if not 0.0 <= p_jam <= 1.0:
            raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
        self.predicate = predicate
        self.p_jam = float(p_jam)

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if message is None or not self.predicate(message):
            return False
        return bool(rng.random() < self.p_jam)


class PeriodicJammer(Jammer):
    """Deterministically jams a fixed pattern of slots.

    Every slot whose index falls in ``offsets`` modulo ``period`` is
    corrupted (turned to noise), regardless of content.  Useful for tests
    that need fully reproducible interference.
    """

    def __init__(self, period: int, offsets: Sequence[int]) -> None:
        if period <= 0:
            raise InvalidParameterError(f"period must be positive, got {period}")
        offs = sorted(set(int(o) % period for o in offsets))
        self.period = int(period)
        self.offsets = frozenset(offs)

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        return (slot % self.period) in self.offsets


class BudgetJammer(Jammer):
    """An adaptive adversary with a total jamming budget.

    Spends its budget greedily on would-be successes (the worst-case
    strategy for the protocols: jamming silence or collisions changes
    nothing), each attempt succeeding with probability ``p_jam``, until
    ``budget`` slots have been corrupted.  A failed attempt costs
    nothing — the budget counts *corrupted slots*, matching the
    energy-bounded adversaries of the related work.

    Parameters
    ----------
    budget:
        Maximum number of slots this jammer may corrupt per run.
    p_jam:
        Per-attempt success probability (1.0 = every attempt lands).
    """

    def __init__(self, budget: int, p_jam: float = 1.0) -> None:
        if budget < 0:
            raise InvalidParameterError(f"budget must be >= 0, got {budget}")
        if not 0.0 <= p_jam <= 1.0:
            raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
        self.budget = int(budget)
        self.p_jam = float(p_jam)
        self.remaining = int(budget)

    def reset(self) -> None:
        self.remaining = self.budget

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if self.remaining <= 0 or n_transmitters != 1:
            return False
        if self.p_jam < 1.0 and not rng.random() < self.p_jam:
            return False
        self.remaining -= 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BudgetJammer(budget={self.budget}, p_jam={self.p_jam})"


class BurstJammer(Jammer):
    """Deterministic on/off interference: jam ``burst`` slots, rest ``gap``.

    Every slot ``t`` with ``(t - start) % (burst + gap) < burst`` (and
    ``t >= start``) is corrupted regardless of content — a model of
    duty-cycled interference (radar sweeps, periodic co-channel bursts)
    that stresses protocols whose schedules can resonate with the burst
    period.
    """

    def __init__(self, burst: int, gap: int, *, start: int = 0) -> None:
        if burst <= 0:
            raise InvalidParameterError(f"burst must be positive, got {burst}")
        if gap < 0:
            raise InvalidParameterError(f"gap must be >= 0, got {gap}")
        if start < 0:
            raise InvalidParameterError(f"start must be >= 0, got {start}")
        warn_beyond_guarantee(
            f"BurstJammer(burst={burst}, gap={gap})", burst / (burst + gap)
        )
        self.burst = int(burst)
        self.gap = int(gap)
        self.start = int(start)

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if slot < self.start:
            return False
        return (slot - self.start) % (self.burst + self.gap) < self.burst

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BurstJammer(burst={self.burst}, gap={self.gap}, "
            f"start={self.start})"
        )


class WindowedRateJammer(Jammer):
    """An adaptive adversary rate-limited per window of slots.

    May corrupt at most ``max_jams`` slots in every aligned window of
    ``window`` slots (slots ``[k*window, (k+1)*window)``), and — like
    :class:`BudgetJammer` — spends them greedily on would-be successes.
    With ``max_jams/window = 1/2`` this is a budgeted analogue of the
    ``p_jam = 1/2`` threshold adversary.
    """

    def __init__(self, window: int, max_jams: int) -> None:
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        if max_jams < 0:
            raise InvalidParameterError(
                f"max_jams must be >= 0, got {max_jams}"
            )
        warn_beyond_guarantee(
            f"WindowedRateJammer(window={window}, max_jams={max_jams})",
            max_jams / window,
        )
        self.window = int(window)
        self.max_jams = int(max_jams)
        self.used = 0
        self.window_index = -1

    def reset(self) -> None:
        self.used = 0
        self.window_index = -1

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if n_transmitters != 1 or self.max_jams == 0:
            return False
        k = slot // self.window
        if k != self.window_index:
            self.window_index = k
            self.used = 0
        if self.used >= self.max_jams:
            return False
        self.used += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"WindowedRateJammer(window={self.window}, "
            f"max_jams={self.max_jams})"
        )
