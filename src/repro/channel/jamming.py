"""Jamming adversaries for the multiple-access channel.

Section 3 of the paper ("Jamming") defines a stochastic adversary that may
inspect each slot — including the content of any message about to be
broadcast — and decide whether to jam it; a jamming attempt succeeds with a
constant probability ``p_jam``.  The analysis tolerates ``p_jam <= 1/2``.

:class:`Jammer` is the abstract interface the channel consults once per
slot.  :class:`StochasticJammer` is the paper's adversary (jam every slot
that contains a would-be success).  :class:`ReactiveJammer` and
:class:`PeriodicJammer` are extensions used by the robustness benchmarks:
the former jams only slots carrying a message matching a predicate, the
latter jams on a fixed schedule regardless of content.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

import numpy as np

from repro.channel.messages import Message
from repro.errors import InvalidParameterError

__all__ = [
    "Jammer",
    "NoJammer",
    "StochasticJammer",
    "ReactiveJammer",
    "PeriodicJammer",
]


class Jammer(abc.ABC):
    """Decides, slot by slot, whether to corrupt the channel.

    The channel calls :meth:`attempt` exactly once per slot, *after* it
    knows what the slot would contain absent jamming.  The jammer sees the
    slot index, the number of transmitters, and the message that would be
    delivered (``None`` unless exactly one player transmitted).  Returning
    True turns the slot into noise.
    """

    @abc.abstractmethod
    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        """Return True to jam the slot (its feedback becomes NOISE)."""


class NoJammer(Jammer):
    """The benign channel: never jams."""

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NoJammer()"


class StochasticJammer(Jammer):
    """The paper's adversary: tries to jam would-be successes.

    The adversary is allowed to jam any slot, but jamming a slot that is
    already silent or already a collision changes nothing, so the
    worst-case strategy the paper analyses — and the one implemented here —
    targets exactly the slots that would otherwise carry a successful
    broadcast.  Each attempt succeeds independently with probability
    ``p_jam``.

    Parameters
    ----------
    p_jam:
        Success probability of each jamming attempt, in ``[0, 1]``.  The
        paper's guarantees require ``p_jam <= 1/2``; larger values are
        legal here so benchmarks can chart the breakdown point.
    jam_silence:
        If True, the adversary also injects noise into silent slots with
        probability ``p_jam``.  This models a cruder noise source and is
        off by default (it cannot hurt the protocols more than jamming
        successes, but it perturbs PUNCTUAL's synchronization heuristic and
        is exercised by robustness tests).
    """

    def __init__(self, p_jam: float, *, jam_silence: bool = False) -> None:
        if not 0.0 <= p_jam <= 1.0:
            raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
        self.p_jam = float(p_jam)
        self.jam_silence = bool(jam_silence)

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if n_transmitters == 1:
            return bool(rng.random() < self.p_jam)
        if n_transmitters == 0 and self.jam_silence:
            return bool(rng.random() < self.p_jam)
        return False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"StochasticJammer(p_jam={self.p_jam}, jam_silence={self.jam_silence})"


class ReactiveJammer(Jammer):
    """Jams only slots whose would-be message matches a predicate.

    The paper notes the adversary "can even look at the contents of the
    message itself"; this jammer makes that capability concrete.  For
    example, ``ReactiveJammer(lambda m: isinstance(m, LeaderClaim), 0.5)``
    attacks only leader election.
    """

    def __init__(
        self, predicate: Callable[[Message], bool], p_jam: float
    ) -> None:
        if not 0.0 <= p_jam <= 1.0:
            raise InvalidParameterError(f"p_jam must be in [0, 1], got {p_jam}")
        self.predicate = predicate
        self.p_jam = float(p_jam)

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if message is None or not self.predicate(message):
            return False
        return bool(rng.random() < self.p_jam)


class PeriodicJammer(Jammer):
    """Deterministically jams a fixed pattern of slots.

    Every slot whose index falls in ``offsets`` modulo ``period`` is
    corrupted (turned to noise), regardless of content.  Useful for tests
    that need fully reproducible interference.
    """

    def __init__(self, period: int, offsets: Sequence[int]) -> None:
        if period <= 0:
            raise InvalidParameterError(f"period must be positive, got {period}")
        offs = sorted(set(int(o) % period for o in offsets))
        self.period = int(period)
        self.offsets = frozenset(offs)

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        return (slot % self.period) in self.offsets
