"""Trinary channel feedback, as defined in Section 1.1 of the paper.

Players listening on the multiple-access channel can distinguish between
*silence*, a *successful* broadcast (in which case they receive the message
content), and *noise* (a collision of two or more transmissions, or jamming).

The :class:`Feedback` enum encodes the three channel states, and
:class:`Observation` bundles one slot's feedback with the delivered message
(if any) plus transmitter-local information (whether *this* job transmitted
and whether its own transmission succeeded).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.channel.messages import Message

__all__ = ["Feedback", "Observation"]


class Feedback(enum.Enum):
    """The trinary state of the channel in a single slot.

    ``SILENCE``
        No player transmitted (and the jammer did not inject noise).
    ``SUCCESS``
        Exactly one player transmitted and was not jammed; every listener
        receives the message content.
    ``NOISE``
        Two or more players transmitted (a collision), or the slot was
        jammed.  Listeners cannot tell these causes apart, exactly as in
        the paper's jamming model.
    """

    SILENCE = "silence"
    SUCCESS = "success"
    NOISE = "noise"

    @property
    def is_busy(self) -> bool:
        """True if the slot carried energy (a message or noise).

        PUNCTUAL's synchronization rule keys off "two consecutive slots
        with messages or collisions"; this predicate is that test for a
        single slot.
        """
        return self is not Feedback.SILENCE


@dataclass(frozen=True, slots=True)
class Observation:
    """Everything one job learns from one slot.

    Attributes
    ----------
    feedback:
        The trinary channel state every listener perceives.
    message:
        The delivered message if ``feedback`` is ``SUCCESS``, else ``None``.
    transmitted:
        Whether *this* job transmitted during the slot.
    own_success:
        Whether this job's own transmission was the successful one.  Only
        meaningful when ``transmitted`` is True; a transmitter always learns
        the fate of its transmission (collision detection).
    """

    feedback: Feedback
    message: Optional[Message] = None
    transmitted: bool = False
    own_success: bool = False

    def __post_init__(self) -> None:
        if self.feedback is Feedback.SUCCESS and self.message is None:
            raise ValueError("SUCCESS observation must carry a message")
        if self.feedback is not Feedback.SUCCESS and self.message is not None:
            raise ValueError("non-SUCCESS observation cannot carry a message")
        if self.own_success and not self.transmitted:
            raise ValueError("own_success requires transmitted")
        if self.own_success and self.feedback is not Feedback.SUCCESS:
            raise ValueError("own_success requires SUCCESS feedback")

    @staticmethod
    def silence(transmitted: bool = False) -> "Observation":
        """An observation of an empty slot."""
        return Observation(Feedback.SILENCE, None, transmitted, False)

    @staticmethod
    def noise(transmitted: bool = False) -> "Observation":
        """An observation of a collided or jammed slot."""
        return Observation(Feedback.NOISE, None, transmitted, False)

    @staticmethod
    def success(
        message: Message, transmitted: bool = False, own: bool = False
    ) -> "Observation":
        """An observation of a successful broadcast carrying ``message``."""
        return Observation(Feedback.SUCCESS, message, transmitted, own)
