"""Reactive, feedback-aware jamming adversaries.

The paper's Theorem 14 is proved against an *oblivious* stochastic
adversary: each would-be success is corrupted independently with a
constant ``p_jam <= 1/2``.  The adversaries here are the natural stress
beyond that model — attackers in the spirit of the adaptive-jamming MAC
line (Richa et al.) and the resource-bounded jammers of robust-backoff
work (Bender et al.) that *listen* to the channel and aim their budget:

* :class:`FeedbackReactiveJammer` — jams only after hearing activity,
  so it spends nothing while the protocols are quiet and everything
  once they wake up;
* :class:`StructureTargetedJammer` — learns PUNCTUAL's round phase from
  the busy/busy/silent round-start signature and concentrates an
  energy-equivalent budget on the timekeeper and leader-election slots;
* :class:`LeaderAssassinJammer` — waits for a leader to be decoded on
  the wire (a successful leader claim or timekeeper beacon) and then
  silences exactly that job, plus any would-be successor's claim;
* :class:`AdaptiveBudgetJammer` — a rate-limited jammer that banks the
  budget of quiet windows and unloads the arrears when traffic appears.

All of them observe the channel exclusively through the sanctioned
:class:`~repro.adversary.view.ChannelView` — trinary feedback, decoded
successes, and their own jam history; never protocol internals.  They
are ordinary :class:`~repro.channel.jamming.Jammer` subclasses, so they
compose with :class:`~repro.faults.FaultPlan` (``FaultPlan(jammer=...)``),
fold into result-cache keys like any jammer, and cost nothing when
absent — the engine's clean path does not change.

Severity convention
-------------------
Every constructor takes a single ``severity`` in ``[0, 1]``: the
adversary's *sustained channel budget*, i.e. the expected fraction of
slots it may corrupt, matching the oblivious families of
:data:`repro.experiments.robustness.FAULT_FAMILIES`.  A reactive
attacker is "smarter, not stronger": at equal severity it never spends
more energy than the oblivious stochastic jammer, only places it
better.  Severity above 1/2 triggers the same
:class:`~repro.errors.PaperGuaranteeWarning` as every other adversary.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.adversary.view import ChannelView
from repro.channel.feedback import Feedback
from repro.channel.messages import Message
from repro.channel.jamming import Jammer, warn_beyond_guarantee
from repro.errors import InvalidParameterError

__all__ = [
    "AdaptiveBudgetJammer",
    "FeedbackReactiveJammer",
    "LeaderAssassinJammer",
    "ReactiveAdversary",
    "StructureTargetedJammer",
]

#: PUNCTUAL's published frame layout, as an attacker would assume it:
#: ten-slot rounds with the timekeeper in slot 3 and leader election in
#: slot 7 (see repro.core.rounds).  The attacker *guesses* this grid and
#: verifies the phase from channel activity; it never reads the
#: protocol's state.
PUNCTUAL_ROUND_PERIOD = 10
PUNCTUAL_STRUCTURAL_SLOTS: Tuple[int, ...] = (3, 7)


def _check_severity(name: str, severity: float) -> float:
    if not 0.0 <= severity <= 1.0:
        raise InvalidParameterError(
            f"{name} severity must be in [0, 1], got {severity}"
        )
    return float(severity)


class ReactiveAdversary(Jammer):
    """Base class: a jammer that listens before it decides.

    Maintains a :class:`~repro.adversary.view.ChannelView` from the
    per-slot information the channel already hands every jammer, and
    funnels the decision through :meth:`decide`.  Subclasses see only
    the view, the current slot's pre-jam content, and the channel RNG.

    The engine calls :meth:`attempt` exactly once per simulated slot
    (reactive adversaries rely on this to keep their view gap-free;
    the engine's idle-gap jump only skips slots with no live jobs, which
    carry no information anyway).
    """

    __slots__ = ("view",)

    def __init__(self) -> None:
        self.view = ChannelView()

    def reset(self) -> None:
        """Forget the previous run entirely (engine calls this per run)."""
        self.view.reset()

    @abc.abstractmethod
    def decide(
        self,
        slot: int,
        feedback: Feedback,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        """Return True to corrupt the slot.

        ``feedback``/``message`` describe the slot *absent* jamming:
        SILENCE (nobody transmitted), SUCCESS with the decodable
        ``message``, or NOISE (collision, ``message is None``).
        """

    def attempt(
        self,
        slot: int,
        n_transmitters: int,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if n_transmitters == 0:
            feedback = Feedback.SILENCE
        elif n_transmitters == 1:
            feedback = Feedback.SUCCESS
        else:
            feedback = Feedback.NOISE
        jam = self.decide(slot, feedback, message, rng)
        self.view.record(slot, feedback, message, jam)
        return jam


class FeedbackReactiveJammer(ReactiveAdversary):
    """Jams would-be successes, but only after hearing recent activity.

    A sleeper: while the channel has been silent for more than
    ``memory`` slots it does nothing (and spends nothing), so protocols
    whose traffic is bursty wake it exactly when they need the channel
    most.  Once awake it behaves like the paper's stochastic adversary
    at probability ``severity``.

    Against steady traffic this is indistinguishable from
    :class:`~repro.channel.jamming.StochasticJammer`; the difference —
    and the reason it stresses deadline protocols harder per unit of
    *spent* energy — is that none of its budget leaks into the idle
    stretches an oblivious jammer wastes attempts on.
    """

    __slots__ = ("severity", "memory")

    def __init__(self, severity: float, *, memory: int = 8) -> None:
        super().__init__()
        self.severity = _check_severity("FeedbackReactiveJammer", severity)
        if memory < 1:
            raise InvalidParameterError(
                f"memory must be >= 1, got {memory}"
            )
        self.memory = int(memory)
        warn_beyond_guarantee(
            f"FeedbackReactiveJammer(severity={severity})", self.severity
        )

    def decide(
        self,
        slot: int,
        feedback: Feedback,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if feedback is not Feedback.SUCCESS:
            return False
        if not self.view.heard_activity_within(slot, self.memory):
            return False
        return bool(rng.random() < self.severity)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FeedbackReactiveJammer(severity={self.severity}, "
            f"memory={self.memory})"
        )


class StructureTargetedJammer(ReactiveAdversary):
    """Learns the round grid and burns its budget on structural slots.

    Dormant until the :class:`~repro.adversary.view.ChannelView` infers
    a round origin from the busy/busy/silent start signature; from then
    on it jams only slots whose phase is in ``targets`` (by default
    PUNCTUAL's timekeeper and leader-election slots).

    The per-target-slot jam probability is
    ``min(1, severity * period / len(targets))`` — the *same* expected
    channel budget as an oblivious jammer of probability ``severity``,
    compressed onto the ``len(targets)/period`` of slots that carry
    leader election and timekeeping.  At severity 0.2 against PUNCTUAL
    that is a guaranteed kill of every timekeeper and election slot:
    exactly the concentration attack Theorem 14's oblivious model
    cannot express.
    """

    __slots__ = ("severity", "period", "targets", "p_slot")

    def __init__(
        self,
        severity: float,
        *,
        period: int = PUNCTUAL_ROUND_PERIOD,
        targets: Sequence[int] = PUNCTUAL_STRUCTURAL_SLOTS,
    ) -> None:
        super().__init__()
        self.severity = _check_severity("StructureTargetedJammer", severity)
        if period <= 0:
            raise InvalidParameterError(f"period must be positive, got {period}")
        targs = sorted(set(int(x) % period for x in targets))
        if not targs:
            raise InvalidParameterError("targets must be non-empty")
        self.period = int(period)
        self.targets = tuple(targs)
        self.p_slot = min(
            1.0, self.severity * self.period / len(self.targets)
        )
        warn_beyond_guarantee(
            f"StructureTargetedJammer(severity={severity})", self.severity
        )

    def decide(
        self,
        slot: int,
        feedback: Feedback,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        phase = self.view.phase_of(slot, self.period)
        if phase is None or phase not in self.targets:
            return False
        # Structural slots are jammed regardless of content: an empty
        # timekeeper slot reads as "no leader" to followers, which is
        # precisely the confusion this attacker wants to sow.
        if self.p_slot >= 1.0:
            return True
        return bool(rng.random() < self.p_slot)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StructureTargetedJammer(severity={self.severity}, "
            f"period={self.period}, targets={self.targets})"
        )


class LeaderAssassinJammer(ReactiveAdversary):
    """Decodes the current leader off the wire and silences exactly it.

    Waits (spending nothing) until the view decodes a leader — a
    successful leader claim or timekeeper beacon names its sender.  From
    then on it jams, with probability ``severity`` each:

    * every would-be success transmitted by the known leader (beacons,
      handover payloads, its data), and
    * every would-be success that *names a new leader* (a claim or a
      beacon from a different sender), so successors die in the cradle.

    All other traffic passes untouched — the assassin's budget goes
    entirely into decapitating PUNCTUAL's timekeeping.
    """

    __slots__ = ("severity",)

    def __init__(self, severity: float) -> None:
        super().__init__()
        self.severity = _check_severity("LeaderAssassinJammer", severity)
        warn_beyond_guarantee(
            f"LeaderAssassinJammer(severity={severity})", self.severity
        )

    def decide(
        self,
        slot: int,
        feedback: Feedback,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        if feedback is not Feedback.SUCCESS or message is None:
            return False
        leader = self.view.leader_id
        if leader is None:
            # Nobody has led yet; let the first claim through so there
            # is a throat to cut (jamming it would merely be stochastic).
            return False
        is_leaderly = type(message).__name__ in (
            "LeaderClaim",
            "TimekeeperBeacon",
        )
        if message.sender != leader and not is_leaderly:
            return False
        return bool(rng.random() < self.severity)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LeaderAssassinJammer(severity={self.severity})"


class AdaptiveBudgetJammer(ReactiveAdversary):
    """A rate-limited jammer that reallocates unspent budget.

    Earns ``severity * window`` jam credits per aligned window of
    ``window`` slots — the same sustained rate as
    :class:`~repro.channel.jamming.WindowedRateJammer` at equal
    severity — but credits *carry over*: windows where the protocols
    were quiet (nothing worth jamming) bank their budget, up to
    ``max_bank`` windows of saved credit.  Each would-be success is
    then jammed with probability ``credits / window`` (capped at 1), so
    a fully banked attacker behaves like a stochastic jammer at
    ``max_bank * severity`` while its *sustained* spend can never
    exceed ``severity`` — each landed jam burns a credit and the bank
    self-regulates back toward the earn rate under dense traffic.

    This models the energy-constrained attacker of the related work at
    its most patient: total energy is identical to the oblivious
    rate-limited jammer, placement is concentrated on the stretches
    where the protocols actually deliver.
    """

    __slots__ = ("severity", "window", "max_bank", "_credits", "_window_index")

    def __init__(
        self, severity: float, *, window: int = 64, max_bank: int = 4
    ) -> None:
        super().__init__()
        self.severity = _check_severity("AdaptiveBudgetJammer", severity)
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        if max_bank < 1:
            raise InvalidParameterError(f"max_bank must be >= 1, got {max_bank}")
        self.window = int(window)
        self.max_bank = int(max_bank)
        self._credits = 0.0
        self._window_index = -1
        warn_beyond_guarantee(
            f"AdaptiveBudgetJammer(severity={severity})", self.severity
        )

    def reset(self) -> None:
        super().reset()
        self._credits = 0.0
        self._window_index = -1

    def decide(
        self,
        slot: int,
        feedback: Feedback,
        message: Optional[Message],
        rng: np.random.Generator,
    ) -> bool:
        k = slot // self.window
        if k != self._window_index:
            # Earn this window's credit; missed windows (idle-gap jumps)
            # earn too, capped at the bank limit.
            behind = 1 if self._window_index < 0 else k - self._window_index
            self._window_index = k
            cap = self.max_bank * self.severity * self.window
            self._credits = min(
                cap, self._credits + behind * self.severity * self.window
            )
        if feedback is not Feedback.SUCCESS or self._credits < 1.0:
            return False
        p = min(1.0, self._credits / self.window)
        if p < 1.0 and not rng.random() < p:
            return False
        self._credits -= 1.0
        return True

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AdaptiveBudgetJammer(severity={self.severity}, "
            f"window={self.window}, max_bank={self.max_bank})"
        )
