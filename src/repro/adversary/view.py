"""The sanctioned read-only channel view reactive adversaries observe.

The paper's stochastic adversary (Section 3) may inspect the slot about
to be broadcast — "even the contents of the message itself" — and the
robustness literature it cites (adaptive-jamming MAC protocols,
resource-bounded jammers) goes further: the attacker *listens* and
reacts to what the protocols do.  :class:`ChannelView` is the complete
and only information surface we grant such attackers:

* the trinary feedback of every past slot (SILENCE / SUCCESS / NOISE),
  exactly what any listener on the channel hears;
* the decoded message of a *successful* slot (an eavesdropper decodes
  what any receiver decodes) — collisions yield noise, not a roster of
  transmitters;
* the adversary's own jamming decisions (it knows what it corrupted).

Nothing else.  No protocol internals, no job identities beyond message
``sender`` fields, no transmitter counts in collided slots, no access
to engine bookkeeping or RNG streams.  Strategies in
:mod:`repro.adversary.reactive` receive this view plus the current
slot's pre-jam content and decide; the view also pre-digests two
signals every implemented attacker wants:

* **round-phase inference** — the same busy/busy/silent round-start
  detection PUNCTUAL's own :class:`~repro.core.rounds.RoundSynchronizer`
  uses, so a structure-aware attacker can lock onto the 10-slot round
  grid from channel activity alone (the period is a *guess* supplied by
  the attacker, not read out of the protocol);
* **leader tracking** — the sender of the last successfully decoded
  leader claim or timekeeper beacon, so an assassin knows whom to
  silence.

The view is deliberately cheap: O(1) state, no per-slot allocation, and
fully restored by :meth:`reset` so a used adversary content-digests
identically to a fresh one (see :func:`repro.cache.run_key`).
"""

from __future__ import annotations

from typing import Optional

from repro.channel.feedback import Feedback
from repro.channel.messages import KIND_BEACON, Message

__all__ = ["ChannelView"]

#: Message classes that identify a leader on the wire.  Matched by class
#: name rather than imported type so this package depends only on the
#: channel layer (an eavesdropper recognises the frame format, it does
#: not link against the protocol).
_LEADER_MESSAGE_NAMES = ("LeaderClaim", "TimekeeperBeacon")


class ChannelView:
    """What a listening adversary knows after each slot.

    Fed by :class:`~repro.adversary.reactive.ReactiveAdversary` once per
    slot via :meth:`record`; strategies read the public attributes and
    never mutate them.

    Attributes
    ----------
    slots_heard:
        Number of slots observed so far.
    last_slot:
        Index of the most recently observed slot (-1 before any).
    last_busy_slot:
        Most recent slot with any activity (success or noise), -1 if
        none yet.  "Busy" is judged *pre-jam*: the adversary reacts to
        what the protocols did, not to its own interference.
    last_success_slot:
        Most recent slot that would have carried a successful broadcast
        absent jamming, -1 if none.
    jams:
        Total slots this adversary has corrupted.
    round_origin:
        Inferred slot index of a round start (see
        :meth:`observe_phase`), or ``None`` while unknown.
    leader_id:
        Sender id of the last successfully decoded leader claim or
        timekeeper beacon, or ``None`` while no leader has been heard.
    leader_slot:
        Slot at which :attr:`leader_id` was last heard (-1 if never).
    """

    __slots__ = (
        "slots_heard",
        "last_slot",
        "last_busy_slot",
        "last_success_slot",
        "jams",
        "round_origin",
        "leader_id",
        "leader_slot",
        "_busy_pattern",  # (slot, busy) of the last three observed slots
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Forget everything (new run); restores construction state."""
        self.slots_heard = 0
        self.last_slot = -1
        self.last_busy_slot = -1
        self.last_success_slot = -1
        self.jams = 0
        self.round_origin: Optional[int] = None
        self.leader_id: Optional[int] = None
        self.leader_slot = -1
        self._busy_pattern: tuple = ()

    # -- feeding (called by ReactiveAdversary.attempt only) ------------------

    def record(
        self,
        slot: int,
        feedback: Feedback,
        message: Optional[Message],
        jammed: bool,
    ) -> None:
        """Fold one resolved slot into the view.

        ``feedback`` and ``message`` describe the slot *before* jamming
        (the adversary inspected it to decide); ``jammed`` is its own
        decision for the slot.
        """
        self.slots_heard += 1
        self.last_slot = slot
        busy = feedback is not Feedback.SILENCE
        if busy:
            self.last_busy_slot = slot
        if feedback is Feedback.SUCCESS:
            self.last_success_slot = slot
            if message is not None and (
                type(message).__name__ in _LEADER_MESSAGE_NAMES
                or message.kind == KIND_BEACON
            ):
                self.leader_id = message.sender
                self.leader_slot = slot
        if jammed:
            self.jams += 1
        # Round-start inference: a start is two busy slots followed by a
        # silent guard (PUNCTUAL's own strengthened detection rule).
        # Keep the last three (slot, busy) observations; contiguity is
        # checked so idle-gap jumps never fake a pattern.
        pattern = self._busy_pattern
        if pattern and pattern[-1][0] == slot - 1:
            pattern = pattern[-2:] + ((slot, busy),)
        else:
            pattern = ((slot, busy),)
        self._busy_pattern = pattern
        if (
            len(pattern) == 3
            and pattern[0][1]
            and pattern[1][1]
            and not pattern[2][1]
        ):
            self.round_origin = pattern[0][0]

    # -- queries -------------------------------------------------------------

    def heard_activity_within(self, slot: int, memory: int) -> bool:
        """True when some pre-jam activity occurred in the last ``memory``
        slots strictly before ``slot``."""
        return (
            self.last_busy_slot >= 0
            and slot - self.last_busy_slot <= memory
        )

    def phase_of(self, slot: int, period: int) -> Optional[int]:
        """``slot``'s index within the attacker's guessed round grid.

        ``None`` until a round origin has been inferred from channel
        activity.
        """
        if self.round_origin is None:
            return None
        return (slot - self.round_origin) % period

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ChannelView(slots_heard={self.slots_heard}, "
            f"origin={self.round_origin}, leader={self.leader_id}, "
            f"jams={self.jams})"
        )
