"""Reactive, feedback-aware adversaries beyond the paper's oblivious model.

The attackers here listen to the channel through the sanctioned
:class:`~repro.adversary.view.ChannelView` (trinary feedback, decoded
successes, own jam history — nothing else) and aim their budget where it
hurts: at recent activity, at PUNCTUAL's structural slots, at the
decoded leader, or in banked bursts.  They are ordinary
:class:`~repro.channel.jamming.Jammer` subclasses, composable with
:class:`~repro.faults.FaultPlan` and the result cache, and exercised by
:mod:`repro.experiments.certify` to chart each protocol's degradation
frontier against smarter-than-analysed interference.
"""

from repro.adversary.reactive import (
    AdaptiveBudgetJammer,
    FeedbackReactiveJammer,
    LeaderAssassinJammer,
    ReactiveAdversary,
    StructureTargetedJammer,
)
from repro.adversary.view import ChannelView

__all__ = [
    "AdaptiveBudgetJammer",
    "ChannelView",
    "FeedbackReactiveJammer",
    "LeaderAssassinJammer",
    "ReactiveAdversary",
    "StructureTargetedJammer",
]
