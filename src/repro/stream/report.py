"""The sustained-load report: what a channel delivers under open traffic.

The closed-instance benchmarks approximate sustained load by replaying
ever-larger finite instances; the streaming engine measures it directly.
A :class:`SustainedLoadReport` collects one
:class:`~repro.stream.engine.StreamResult` per offered load ρ and
renders the operating curve:

* **throughput** — delivered jobs per channel slot at each ρ;
* **throughput ceiling** — the largest delivered throughput observed
  across the sweep (where the curve saturates: pushing ρ past it only
  grows the loss columns);
* **deadline-miss / shed / loss rates** — how the protocol degrades
  past the ceiling (graceful degradation is the point of admission
  control: under ``shed-*`` policies the misses should convert to
  explicit sheds, not latency collapse);
* **latency percentiles** (p50/p99/p999) from the per-run quantile
  sketches.

Reports serialize to JSON (the CI ``stream-smoke`` artifact) and render
as the repo's standard plain-text tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.stream.engine import StreamResult

__all__ = ["SustainedLoadReport"]


@dataclass
class SustainedLoadReport:
    """Rows of ``(offered load ρ, merged StreamResult)``, plus metadata."""

    protocol: str = ""
    title: str = "sustained load"
    rows: List[Tuple[float, StreamResult]] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def add(self, rho: float, result: StreamResult) -> None:
        self.rows.append((float(rho), result))

    @property
    def throughput_ceiling(self) -> float:
        """Highest delivered throughput across the sweep (jobs/slot)."""
        return max((r.throughput for _, r in self.rows), default=0.0)

    def ceiling_load(self) -> Optional[float]:
        """The offered load at which the ceiling was reached."""
        best = None
        best_thr = -1.0
        for rho, r in self.rows:
            if r.throughput > best_thr:
                best_thr = r.throughput
                best = rho
        return best

    def table(self) -> str:
        rows = []
        for rho, r in sorted(self.rows, key=lambda x: x[0]):
            rows.append(
                [
                    rho,
                    r.jobs_released,
                    r.throughput,
                    r.miss_rate,
                    r.jobs_shed / r.jobs_released if r.jobs_released else 0.0,
                    r.loss_rate,
                    r.latency_quantile(0.50),
                    r.latency_quantile(0.99),
                    r.latency_quantile(0.999),
                    r.peak_live,
                ]
            )
        title = self.title
        if self.protocol:
            title = f"{title} — {self.protocol}"
        body = format_table(
            [
                "rho",
                "jobs",
                "throughput",
                "miss rate",
                "shed rate",
                "loss rate",
                "p50",
                "p99",
                "p999",
                "peak live",
            ],
            rows,
            title=title,
        )
        ceiling = self.throughput_ceiling
        at = self.ceiling_load()
        tail = f"throughput ceiling: {ceiling:.4f} jobs/slot"
        if at is not None:
            tail += f" (at rho={at:g})"
        return body + "\n" + tail

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "protocol": self.protocol,
            "meta": dict(self.meta),
            "throughput_ceiling": self.throughput_ceiling,
            "ceiling_load": self.ceiling_load(),
            "rows": [
                {"rho": rho, **r.to_dict()}
                for rho, r in sorted(self.rows, key=lambda x: x[0])
            ],
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
