"""Sharded streaming runs: partition the seed population, merge statistics.

A sustained-load measurement wants many independent channel realizations
(one per seed); they share nothing, so they parallelize perfectly.  A
:class:`StreamShardSpec` pins down one shard's full configuration —
everything :func:`repro.stream.engine.stream_simulate` takes, minus
run-local machinery like checkpoints — and :func:`run_stream_shards`
fans the specs out over a process pool and merges the per-shard
:class:`~repro.stream.engine.StreamResult` objects (counters add,
quantile sketches merge exactly, reservoirs merge probabilistically).

Specs cross process boundaries by pickle, so ``factory`` must be a
module-level callable or a :func:`functools.partial` of one (the same
discipline :mod:`repro.cli` uses for its sweep workers); a lambda or
local closure will fail to pickle with a clear error before any work
starts.

Worker crashes are survivable: a shard whose worker dies (an exception,
an OOM kill, a :class:`~concurrent.futures.process.BrokenProcessPool`)
is re-run under the shared :class:`repro.retrypolicy.RetryPolicy` —
completed shards are kept, only the unaccounted ones are resubmitted —
so one flaky worker costs one backoff, not the whole sharded run.
Deterministic failures still fail after exhausting retries, raising
:class:`ShardExecutionError` naming the failing shard's seed.
"""

from __future__ import annotations

import concurrent.futures
import os
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.channel.jamming import Jammer
from repro.errors import InvalidParameterError, ReproError
from repro.faults.plan import FaultPlan
from repro.retrypolicy import RetryPolicy
from repro.sim.engine import ProtocolFactory
from repro.sim.watchdog import Watchdog
from repro.stream.arrivals import ArrivalProcess
from repro.stream.engine import StreamBudget, StreamResult, stream_simulate

__all__ = ["ShardExecutionError", "StreamShardSpec", "run_stream_shards"]


class ShardExecutionError(ReproError):
    """A worker failed while running one stream shard.

    Carries the failing shard's seed plus the worker-side traceback, so
    a crash in a many-shard run points at the one reproducible shard.
    """

    def __init__(self, seed: int, worker_traceback: str) -> None:
        super().__init__(
            f"stream shard seed {seed} failed in a worker:\n"
            f"{worker_traceback}"
        )
        self.seed = seed
        self.worker_traceback = worker_traceback


@dataclass(frozen=True)
class _ShardFailure:
    """A captured worker exception (picklable, seed attached)."""

    seed: int
    formatted: str


@dataclass(frozen=True)
class StreamShardSpec:
    """One shard of a sharded streaming run (a seed's full config)."""

    seed: int
    process: ArrivalProcess
    factory: ProtocolFactory
    max_jobs: Optional[int] = None
    max_slots: Optional[int] = None
    budget: Optional[StreamBudget] = None
    jammer: Optional[Jammer] = None
    faults: Optional[FaultPlan] = None
    watchdog: Optional[Watchdog] = None
    reservoir_capacity: int = 4096
    sketch_alpha: float = 0.01


def _run_shard(
    spec: StreamShardSpec,
    progress: Optional[Callable[[int, int], None]] = None,
) -> StreamResult:
    return stream_simulate(
        spec.process,
        spec.factory,
        seed=spec.seed,
        max_jobs=spec.max_jobs,
        max_slots=spec.max_slots,
        budget=spec.budget,
        jammer=spec.jammer,
        faults=spec.faults,
        watchdog=spec.watchdog,
        reservoir_capacity=spec.reservoir_capacity,
        sketch_alpha=spec.sketch_alpha,
        progress=progress,
    )


def _run_shard_safe(
    spec: StreamShardSpec,
) -> Union[StreamResult, _ShardFailure]:
    """Worker entry point: never raises, reports the failing shard."""
    try:
        return _run_shard(spec)
    except Exception:
        return _ShardFailure(seed=spec.seed, formatted=traceback.format_exc())


def run_stream_shards(
    specs: Sequence[StreamShardSpec],
    *,
    processes: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    retries: int = 2,
    retry_backoff: float = 0.25,
) -> Tuple[StreamResult, List[StreamResult]]:
    """Run every shard and merge the channel statistics.

    Parameters
    ----------
    specs:
        One spec per shard; seeds should be distinct (the merge does not
        check, but identical seeds measure the same realization twice).
    processes:
        Worker processes.  ``None`` picks ``min(len(specs), cpu_count)``;
        ``0`` or ``1`` runs serially in-process (deterministic, no pool
        overhead — what the tests and CI smoke use).
    progress:
        Optional ``progress(done, total)`` aggregated across all shards
        (each shard's expected work is its ``max_jobs``/``max_slots``).
        Only honored on the serial path — worker processes cannot call
        back into this one — and purely observational either way.
    retries:
        How many times crashed shards may be re-run (with the shared
        jittered exponential backoff of :class:`repro.retrypolicy.
        RetryPolicy` between rounds).  Completed shards are kept; only
        shards whose result never arrived — a worker exception, or a
        pool broken by a dying worker — are resubmitted.  Shards are
        deterministic in their spec, so a re-run merges identically.
        After exhausting retries, :class:`ShardExecutionError` names
        the failing shard.  Only meaningful on the pool path; the
        serial path raises immediately (an in-process failure is never
        a lost worker).
    retry_backoff:
        First-retry delay in seconds (see
        :class:`repro.retrypolicy.RetryPolicy`).

    Returns
    -------
    (merged, per_shard):
        The merged :class:`StreamResult` plus each shard's own result in
        spec order.  Merging is order-independent for every statistic
        except the reservoir sample, which is merged in spec order so
        repeated calls agree draw-for-draw.
    """
    if not specs:
        raise InvalidParameterError("run_stream_shards needs at least one spec")
    policy = RetryPolicy(retries=retries, base_backoff=retry_backoff)
    if processes is None:
        processes = min(len(specs), os.cpu_count() or 1)
    if processes <= 1 or len(specs) == 1:
        if progress is None:
            per_shard = [_run_shard(s) for s in specs]
        else:
            expected = [
                (s.max_jobs if s.max_jobs is not None else s.max_slots) or 0
                for s in specs
            ]
            grand_total = sum(expected)
            per_shard = []
            done_before = 0
            for s, exp in zip(specs, expected):
                def shard_cb(
                    done: int, _total: int, _base: int = done_before
                ) -> None:
                    progress(_base + done, grand_total)

                per_shard.append(_run_shard(s, progress=shard_cb))
                done_before += exp
    else:
        # Submit one future per shard (not pool.map) so that when a
        # worker dies hard we know exactly which shards are unaccounted
        # for, and retry only those — completed results are kept.
        slots: List[Optional[StreamResult]] = [None] * len(specs)
        pending = list(range(len(specs)))
        attempt = 0
        while pending:
            failures: List[Tuple[int, _ShardFailure]] = []
            try:
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(processes, len(pending))
                ) as pool:
                    futures = {
                        pool.submit(_run_shard_safe, specs[i]): i
                        for i in pending
                    }
                    for fut in concurrent.futures.as_completed(futures):
                        i = futures[fut]
                        result = fut.result()
                        if isinstance(result, _ShardFailure):
                            failures.append((i, result))
                        else:
                            slots[i] = result
            except BrokenProcessPool:
                # A worker died hard (signal/OOM): every shard whose
                # result did not come back is unaccounted for — a shard
                # that finished but was not yet consumed simply re-runs
                # (deterministic, so the merge is unchanged).
                taken = {i for i, _ in failures}
                failures.extend(
                    (
                        i,
                        _ShardFailure(
                            seed=specs[i].seed,
                            formatted=(
                                "process pool broke before this shard's "
                                "result was received (worker died)"
                            ),
                        ),
                    )
                    for i in pending
                    if slots[i] is None and i not in taken
                )
            if not failures:
                break
            if attempt >= policy.retries:
                _, failure = failures[0]
                raise ShardExecutionError(failure.seed, failure.formatted)
            attempt += 1
            policy.sleep(attempt)
            pending = [i for i, _ in failures]
        per_shard = [r for r in slots if r is not None]
    merged = per_shard[0]
    for r in per_shard[1:]:
        merged = merged.merge(r)
    return merged, per_shard
