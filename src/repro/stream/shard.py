"""Sharded streaming runs: partition the seed population, merge statistics.

A sustained-load measurement wants many independent channel realizations
(one per seed); they share nothing, so they parallelize perfectly.  A
:class:`StreamShardSpec` pins down one shard's full configuration —
everything :func:`repro.stream.engine.stream_simulate` takes, minus
run-local machinery like checkpoints — and :func:`run_stream_shards`
fans the specs out over a process pool and merges the per-shard
:class:`~repro.stream.engine.StreamResult` objects (counters add,
quantile sketches merge exactly, reservoirs merge probabilistically).

Specs cross process boundaries by pickle, so ``factory`` must be a
module-level callable or a :func:`functools.partial` of one (the same
discipline :mod:`repro.cli` uses for its sweep workers); a lambda or
local closure will fail to pickle with a clear error before any work
starts.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.channel.jamming import Jammer
from repro.errors import InvalidParameterError
from repro.faults.plan import FaultPlan
from repro.sim.engine import ProtocolFactory
from repro.sim.watchdog import Watchdog
from repro.stream.arrivals import ArrivalProcess
from repro.stream.engine import StreamBudget, StreamResult, stream_simulate

__all__ = ["StreamShardSpec", "run_stream_shards"]


@dataclass(frozen=True)
class StreamShardSpec:
    """One shard of a sharded streaming run (a seed's full config)."""

    seed: int
    process: ArrivalProcess
    factory: ProtocolFactory
    max_jobs: Optional[int] = None
    max_slots: Optional[int] = None
    budget: Optional[StreamBudget] = None
    jammer: Optional[Jammer] = None
    faults: Optional[FaultPlan] = None
    watchdog: Optional[Watchdog] = None
    reservoir_capacity: int = 4096
    sketch_alpha: float = 0.01


def _run_shard(
    spec: StreamShardSpec,
    progress: Optional[Callable[[int, int], None]] = None,
) -> StreamResult:
    return stream_simulate(
        spec.process,
        spec.factory,
        seed=spec.seed,
        max_jobs=spec.max_jobs,
        max_slots=spec.max_slots,
        budget=spec.budget,
        jammer=spec.jammer,
        faults=spec.faults,
        watchdog=spec.watchdog,
        reservoir_capacity=spec.reservoir_capacity,
        sketch_alpha=spec.sketch_alpha,
        progress=progress,
    )


def run_stream_shards(
    specs: Sequence[StreamShardSpec],
    *,
    processes: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Tuple[StreamResult, List[StreamResult]]:
    """Run every shard and merge the channel statistics.

    Parameters
    ----------
    specs:
        One spec per shard; seeds should be distinct (the merge does not
        check, but identical seeds measure the same realization twice).
    processes:
        Worker processes.  ``None`` picks ``min(len(specs), cpu_count)``;
        ``0`` or ``1`` runs serially in-process (deterministic, no pool
        overhead — what the tests and CI smoke use).
    progress:
        Optional ``progress(done, total)`` aggregated across all shards
        (each shard's expected work is its ``max_jobs``/``max_slots``).
        Only honored on the serial path — worker processes cannot call
        back into this one — and purely observational either way.

    Returns
    -------
    (merged, per_shard):
        The merged :class:`StreamResult` plus each shard's own result in
        spec order.  Merging is order-independent for every statistic
        except the reservoir sample, which is merged in spec order so
        repeated calls agree draw-for-draw.
    """
    if not specs:
        raise InvalidParameterError("run_stream_shards needs at least one spec")
    if processes is None:
        processes = min(len(specs), os.cpu_count() or 1)
    if processes <= 1 or len(specs) == 1:
        if progress is None:
            per_shard = [_run_shard(s) for s in specs]
        else:
            expected = [
                (s.max_jobs if s.max_jobs is not None else s.max_slots) or 0
                for s in specs
            ]
            grand_total = sum(expected)
            per_shard = []
            done_before = 0
            for s, exp in zip(specs, expected):
                def shard_cb(
                    done: int, _total: int, _base: int = done_before
                ) -> None:
                    progress(_base + done, grand_total)

                per_shard.append(_run_shard(s, progress=shard_cb))
                done_before += exp
    else:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=processes
        ) as pool:
            per_shard = list(pool.map(_run_shard, specs))
    merged = per_shard[0]
    for r in per_shard[1:]:
        merged = merged.merge(r)
    return merged, per_shard
