"""Atomic streaming checkpoints with truncated-tail healing.

A multi-hour open-loop run must survive a SIGKILL: the streaming engine
periodically snapshots its *entire* resumable state (engine live set,
arrival-process buffer, every RNG stream, sketches, counters) and this
module makes the snapshot crash-safe:

* **Atomicity** — the snapshot is written to a temp file in the target
  directory, flushed and fsynced, then moved into place with
  ``os.replace``.  A kill mid-write can never leave a half-written file
  at the checkpoint path.
* **Self-validation** — the file carries a magic tag, a format version,
  the payload length, and a CRC-32 of the payload.  A truncated tail
  (the classic torn-write failure on the *previous* generation of a
  file that something less careful wrote) or any bit rot is detected at
  load, not deserialized into garbage.
* **Healing** — before each rotation the previous checkpoint is kept at
  ``<path>.prev``.  :func:`load_checkpoint` falls back to it when the
  primary fails validation, so one bad generation costs one checkpoint
  interval of progress, not the run.

The payload is a pickle of the engine's state dict — pickling preserves
object identity, so a protocol and the RNG stream it shares with the
factory stay the *same* object after resume, which is what makes
resumed runs bit-identical (see tests/stream/test_kill_resume.py).
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Tuple

from repro.errors import InvalidParameterError, ReproError

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointConfig",
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
]

_MAGIC = b"RSTRCKPT"
#: Bump on any incompatible change to the checkpoint state dict.
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct("<8sIQI")  # magic, version, payload length, crc32


class CheckpointError(ReproError):
    """A checkpoint file is missing, truncated, corrupt, or incompatible."""


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often the streaming engine checkpoints.

    Parameters
    ----------
    path:
        Checkpoint file path.  The previous generation is rotated to
        ``<path>.prev`` before each write.
    every_slots:
        Snapshot cadence in simulated slots.  Snapshots land on
        absolute slot multiples, so an interrupted run and its resumed
        continuation checkpoint at the same slots.
    """

    path: str
    every_slots: int = 50_000

    def __post_init__(self) -> None:
        if not self.path:
            raise InvalidParameterError("checkpoint path must be non-empty")
        if self.every_slots <= 0:
            raise InvalidParameterError(
                f"every_slots must be positive, got {self.every_slots}"
            )

    @property
    def prev_path(self) -> str:
        return self.path + ".prev"


def save_checkpoint(path: str, state: Any) -> None:
    """Atomically write ``state`` to ``path``, rotating the previous file.

    Write order is crash-safe at every step: temp write + fsync, rotate
    ``path`` → ``path.prev``, move temp into place.  A kill between the
    two renames leaves a valid ``.prev``, which
    :func:`load_checkpoint` heals from.
    """
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(
        _MAGIC, CHECKPOINT_VERSION, len(payload), zlib.crc32(payload)
    )
    directory = os.path.dirname(os.path.abspath(path)) or "."
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    if os.path.exists(path):
        os.replace(path, path + ".prev")
    os.replace(tmp, path)
    # Persist the renames themselves where the platform allows it.
    try:  # pragma: no cover - depends on the filesystem
        dirfd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dirfd)
    finally:
        os.close(dirfd)


def _read_validated(path: str) -> Any:
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise CheckpointError(f"checkpoint {path} is truncated (no header)")
    magic, version, length, crc = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        raise CheckpointError(f"{path} is not a repro stream checkpoint")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format v{version}, "
            f"this build reads v{CHECKPOINT_VERSION}"
        )
    payload = raw[_HEADER.size :]
    if len(payload) != length:
        raise CheckpointError(
            f"checkpoint {path} is truncated "
            f"({len(payload)} of {length} payload bytes)"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointError(f"checkpoint {path} failed its CRC check")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path} failed to deserialize: {exc}"
        ) from exc


def load_checkpoint(path: str, *, heal: bool = True) -> Tuple[Any, bool]:
    """Load and validate a checkpoint, healing from ``.prev`` if needed.

    Returns ``(state, healed)`` where ``healed`` is True when the
    primary file was unusable and the previous generation was loaded
    instead.  Raises :class:`CheckpointError` when no valid generation
    exists.
    """
    try:
        return _read_validated(path), False
    except CheckpointError as primary_error:
        if not heal:
            raise
        prev = path + ".prev"
        if not os.path.exists(prev):
            raise
        try:
            return _read_validated(prev), True
        except CheckpointError:
            raise primary_error from None
