"""The open-arrival streaming engine: bounded memory at any offered load.

:func:`stream_simulate` is the open-loop counterpart of
:func:`repro.sim.engine.simulate`.  Jobs are not materialized up front —
they are drawn lazily from an :class:`~repro.stream.arrivals.ArrivalProcess`
— and the engine keeps only a sliding window of live state:

* completed/expired jobs are evicted the slot they retire; their
  outcome collapses into counters, a :class:`~repro.obs.sketches.QuantileSketch`
  (p50/p99/p999 latency) and a :class:`~repro.obs.sketches.ReservoirSampler`;
* the arrival buffer holds at most two RNG blocks;
* a hard live-set budget (:class:`StreamBudget`) sheds or queues work
  under overload, with shedding as first-class telemetry.

**Bit-identical to the closed engine.**  For any finite prefix the
streaming run must agree with the closed engine run on the instance
frozen by :func:`repro.stream.arrivals.materialize` — same delivery
slots, same miss set, same number of simulated slots (the
``streaming-equivalence`` verification corpus enforces this).  The slot
loop therefore mirrors :func:`repro.sim.engine.simulate` statement for
statement wherever randomness is consumed:

* activation order is a heap keyed ``(activation, release, deadline,
  job_id)`` — exactly the closed engine's ``by_release`` order (and its
  fault-shifted stable re-sort) expressed incrementally;
* per-job streams come from :meth:`RngFactory.fresh`, which yields the
  same initial state as the closed engine's cached :meth:`stream`
  without growing the factory cache per job;
* gap jumps skip idle slots without touching the channel stream, and
  the jammer draws once per *simulated* slot in the same patterns;
* feedback corruption draws from the shared ``fault-feedback`` stream
  in live-list fan-out order, and per-job fault records come from
  :func:`repro.faults.plan.job_fault_record` on the job's own
  ``fault-job`` stream — identical decisions whether drawn up front
  (closed) or at arrival (here).

**Crash recovery.**  With a :class:`~repro.stream.checkpoint.CheckpointConfig`
attached, the engine snapshots its complete resumable state every
``every_slots`` simulated slots, *before* the slot is processed; a run
killed at any point resumes from the last checkpoint and produces
bit-identical final statistics (pickle memoization preserves the object
identity between protocols, their RNG streams, and the factory).
"""

from __future__ import annotations

import copy
import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.channel.feedback import Feedback, Observation
from repro.channel.jamming import Jammer, NoJammer
from repro.channel.messages import KIND_BEACON, KIND_DATA, Message
from repro.errors import InvalidParameterError, SimulationError
from repro.faults.plan import (
    FaultPlan,
    _JobRecord,
    fault_wrappers,
    job_fault_record,
)
from repro.obs.sketches import QuantileSketch, ReservoirSampler
from repro.sim.engine import ENGINE_VERSION, ProtocolFactory
from repro.sim.job import Job, JobStatus
from repro.sim.protocolbase import Protocol
from repro.sim.rng import RngFactory
from repro.sim.watchdog import (
    REASON_SLOTS,
    REASON_STALL,
    REASON_WALL,
    WALL_CHECK_PERIOD,
    Watchdog,
    WatchdogTrip,
)
from repro.stream.arrivals import ArrivalProcess
from repro.stream.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "POLICIES",
    "STREAM_VERSION",
    "StreamBudget",
    "StreamResult",
    "stream_simulate",
]

#: Version of the streaming engine's observable semantics *and* its
#: checkpoint state layout.  Bump on any change that can alter a
#: :class:`StreamResult` or that breaks resuming an older checkpoint.
STREAM_VERSION = 1

#: Admission-control policies for :class:`StreamBudget`.
POLICIES = ("shed-newest", "shed-loosest-deadline", "block")

# Shared immutable observations, as in the closed engine.
_OBS_SILENCE = Observation.silence(False)
_OBS_NOISE = Observation.noise(False)
_OBS_NOISE_TX = Observation.noise(True)
_SUCCESS = Feedback.SUCCESS

#: Chunk size for unbounded next-arrival scans (max_jobs mode).
_SCAN_CHUNK = 1 << 16


@dataclass(frozen=True)
class StreamBudget:
    """A hard live-set budget with an admission-control policy.

    Attributes
    ----------
    max_live:
        Maximum number of concurrently live jobs.  Admissions beyond it
        are handled by ``policy``.
    policy:
        ``"shed-newest"`` rejects the arriving job; ``"shed-loosest-deadline"``
        evicts the undelivered live job with the loosest deadline if it
        is looser than the arrival's (otherwise the arrival is shed);
        ``"block"`` parks arrivals in a bounded FIFO and admits them as
        slots free up (jobs whose deadline passes while blocked are
        shed; late admission starts the protocol's local clock at the
        admission slot, like a late-release fault).
    queue_capacity:
        FIFO capacity for ``"block"`` (defaults to ``max_live``);
        overflow is shed as ``queue-full``.
    """

    max_live: int
    policy: str = "shed-newest"
    queue_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_live < 1:
            raise InvalidParameterError(
                f"max_live must be >= 1, got {self.max_live}"
            )
        if self.policy not in POLICIES:
            raise InvalidParameterError(
                f"unknown policy {self.policy!r}; pick one of {list(POLICIES)}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise InvalidParameterError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )

    @property
    def capacity(self) -> int:
        """Effective FIFO capacity for the ``block`` policy."""
        return self.queue_capacity if self.queue_capacity is not None else self.max_live

    def describe(self) -> str:
        if self.policy == "block":
            return f"{self.policy}(max_live={self.max_live}, queue={self.capacity})"
        return f"{self.policy}(max_live={self.max_live})"


@dataclass
class StreamResult:
    """Aggregated outcome of one streaming run (or a merge of shards).

    Per-job records are *not* kept (that is the point of streaming);
    latency lives in a mergeable :class:`QuantileSketch` plus a
    :class:`ReservoirSampler` of raw samples, everything else in
    counters.  ``outcomes`` is populated only under
    ``record_outcomes=True`` — the debug/verification mode the
    ``streaming-equivalence`` corpus uses.
    """

    seed: int = 0
    process: str = ""
    offered_load: float = 0.0
    budget: str = "none"

    jobs_released: int = 0
    jobs_admitted: int = 0
    jobs_succeeded: int = 0
    jobs_missed: int = 0
    jobs_gave_up: int = 0
    #: Shedding breakdown by reason: ``arrival``, ``evicted``,
    #: ``queue-full``, ``expired-blocked``, ``crashed-blocked``.
    shed: Dict[str, int] = field(default_factory=dict)

    transmissions: int = 0
    slots_simulated: int = 0
    final_slot: int = 0
    silence_slots: int = 0
    success_slots: int = 0
    collision_slots: int = 0
    jammed_slots: int = 0
    peak_live: int = 0

    checkpoints_written: int = 0
    resumed_at_slot: int = -1
    healed_checkpoint: bool = False

    latency_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    latency_sample: ReservoirSampler = field(
        default_factory=lambda: ReservoirSampler(4096, 0)
    )
    watchdog: Optional[WatchdogTrip] = None
    outcomes: Optional[Dict[int, Tuple[JobStatus, int, int]]] = None

    # -- derived -----------------------------------------------------------

    @property
    def jobs_shed(self) -> int:
        return sum(self.shed.values())

    @property
    def success_rate(self) -> float:
        return self.jobs_succeeded / self.jobs_released if self.jobs_released else 0.0

    @property
    def miss_rate(self) -> float:
        """Deadline misses among released jobs (sheds counted separately)."""
        return self.jobs_missed / self.jobs_released if self.jobs_released else 0.0

    @property
    def loss_rate(self) -> float:
        """All released jobs that did not deliver (miss + gave up + shed)."""
        if not self.jobs_released:
            return 0.0
        return 1.0 - self.jobs_succeeded / self.jobs_released

    @property
    def throughput(self) -> float:
        """Delivered jobs per elapsed channel slot."""
        return self.jobs_succeeded / self.final_slot if self.final_slot else 0.0

    def latency_quantile(self, q: float) -> float:
        return self.latency_sketch.quantile(q)

    def merge(self, other: "StreamResult") -> "StreamResult":
        """Combine two shards (counters add, sketches merge).

        Slot counters add, so :attr:`throughput` of a merge is delivered
        jobs per *channel*-slot summed over the shard channels.
        """
        shed: Dict[str, int] = dict(self.shed)
        for k, v in other.shed.items():
            shed[k] = shed.get(k, 0) + v
        sketch = copy.deepcopy(self.latency_sketch)
        sketch.merge(other.latency_sketch)
        sample = copy.deepcopy(self.latency_sample)
        sample.merge(other.latency_sample)
        return StreamResult(
            seed=-1,
            process=self.process or other.process,
            offered_load=self.offered_load or other.offered_load,
            budget=self.budget,
            jobs_released=self.jobs_released + other.jobs_released,
            jobs_admitted=self.jobs_admitted + other.jobs_admitted,
            jobs_succeeded=self.jobs_succeeded + other.jobs_succeeded,
            jobs_missed=self.jobs_missed + other.jobs_missed,
            jobs_gave_up=self.jobs_gave_up + other.jobs_gave_up,
            shed=shed,
            transmissions=self.transmissions + other.transmissions,
            slots_simulated=self.slots_simulated + other.slots_simulated,
            final_slot=self.final_slot + other.final_slot,
            silence_slots=self.silence_slots + other.silence_slots,
            success_slots=self.success_slots + other.success_slots,
            collision_slots=self.collision_slots + other.collision_slots,
            jammed_slots=self.jammed_slots + other.jammed_slots,
            peak_live=max(self.peak_live, other.peak_live),
            checkpoints_written=self.checkpoints_written
            + other.checkpoints_written,
            latency_sketch=sketch,
            latency_sample=sample,
            watchdog=self.watchdog or other.watchdog,
        )

    def to_dict(self) -> dict:
        """A JSON-serializable summary (the report row format)."""
        return {
            "seed": self.seed,
            "process": self.process,
            "offered_load": self.offered_load,
            "budget": self.budget,
            "jobs_released": self.jobs_released,
            "jobs_admitted": self.jobs_admitted,
            "jobs_succeeded": self.jobs_succeeded,
            "jobs_missed": self.jobs_missed,
            "jobs_gave_up": self.jobs_gave_up,
            "jobs_shed": self.jobs_shed,
            "shed": dict(sorted(self.shed.items())),
            "transmissions": self.transmissions,
            "slots_simulated": self.slots_simulated,
            "final_slot": self.final_slot,
            "silence_slots": self.silence_slots,
            "success_slots": self.success_slots,
            "collision_slots": self.collision_slots,
            "jammed_slots": self.jammed_slots,
            "peak_live": self.peak_live,
            "checkpoints_written": self.checkpoints_written,
            "resumed_at_slot": self.resumed_at_slot,
            "success_rate": self.success_rate,
            "miss_rate": self.miss_rate,
            "loss_rate": self.loss_rate,
            "throughput": self.throughput,
            "latency_p50": self.latency_quantile(0.50),
            "latency_p99": self.latency_quantile(0.99),
            "latency_p999": self.latency_quantile(0.999),
            "watchdog": None if self.watchdog is None else self.watchdog.reason,
        }


def _config_key(
    seed: int,
    process: ArrivalProcess,
    budget: Optional[StreamBudget],
    max_jobs: Optional[int],
    max_slots: Optional[int],
    faults: Optional[FaultPlan],
    jammer: Optional[Jammer],
) -> tuple:
    """What a checkpoint must agree on to be resumable under this call."""
    return (
        STREAM_VERSION,
        ENGINE_VERSION,
        int(seed),
        process,
        budget,
        max_jobs,
        max_slots,
        None if faults is None else faults.describe(),
        None if jammer is None else repr(jammer),
    )


def stream_simulate(
    process: ArrivalProcess,
    factory: ProtocolFactory,
    *,
    seed: int = 0,
    max_jobs: Optional[int] = None,
    max_slots: Optional[int] = None,
    budget: Optional[StreamBudget] = None,
    jammer: Optional[Jammer] = None,
    faults: Optional[FaultPlan] = None,
    watchdog: Optional[Watchdog] = None,
    checkpoint: Optional[CheckpointConfig] = None,
    resume: bool = False,
    record_outcomes: bool = False,
    reservoir_capacity: int = 4096,
    sketch_alpha: float = 0.01,
    progress: Optional[Callable[[int, int], None]] = None,
) -> StreamResult:
    """Run one open-arrival streaming simulation.

    Parameters
    ----------
    process:
        The arrival process; jobs are drawn lazily from the dedicated
        ``"arrivals"`` stream of the run's :class:`RngFactory`.
    factory:
        Builds each job's protocol, as in the closed engine.
    seed:
        Root seed; fixes every stream (arrivals, channel, jobs, faults).
    max_jobs / max_slots:
        Stop *releasing* after this many jobs / at this arrival-horizon
        slot (at least one must be set; both may be).  Already-released
        jobs always drain to their deadlines, so a ``max_slots`` run is
        bit-identical to the closed engine on
        ``materialize(process, rng, max_slots)``.
    budget:
        Optional :class:`StreamBudget`; without one the live set is
        unbounded (pure equivalence mode).
    jammer / faults / watchdog:
        As in :func:`repro.sim.engine.simulate`; a fault plan's jammer
        is mutually exclusive with ``jammer=``.
    checkpoint:
        Optional :class:`CheckpointConfig` — snapshot the full resumable
        state every ``every_slots`` simulated slots.
    resume:
        Load ``checkpoint.path`` (healing from ``.prev`` if needed) and
        continue instead of starting fresh.  The call's configuration
        must match the checkpointed one.
    record_outcomes:
        Keep a per-job ``{job_id: (status, delivery_slot, transmissions)}``
        dict — unbounded memory, for equivalence verification only.
    reservoir_capacity / sketch_alpha:
        Telemetry memory/accuracy knobs (see :mod:`repro.obs.sketches`).
    progress:
        Optional ``progress(done, total)`` callback invoked on the
        engine's existing 256-slot housekeeping cadence (and once at
        the end): finalized jobs against ``max_jobs`` when set,
        simulated slots against ``max_slots`` otherwise.  Purely
        observational — it sees counters, never simulation state — so
        attaching it cannot change results.

    Returns
    -------
    StreamResult
    """
    if max_jobs is None and max_slots is None:
        raise InvalidParameterError("set max_jobs and/or max_slots")
    if max_jobs is not None and max_jobs < 1:
        raise InvalidParameterError(f"max_jobs must be >= 1, got {max_jobs}")
    if max_slots is not None and max_slots < 1:
        raise InvalidParameterError(f"max_slots must be >= 1, got {max_slots}")
    if max_slots is None and process.mean_rate <= 0.0:
        raise InvalidParameterError(
            "max_jobs without max_slots requires a positive arrival rate"
        )
    if resume and checkpoint is None:
        raise InvalidParameterError("resume=True requires a checkpoint config")

    plan = faults if faults is not None and not faults.is_noop else None
    if plan is not None and plan.jammer is not None:
        if jammer is not None:
            raise InvalidParameterError(
                "got a jammer= argument and a FaultPlan with its own "
                "jammer; pick one adversary"
            )
        jammer = plan.jammer
    cfg_key = _config_key(
        seed, process, budget, max_jobs, max_slots, faults, jammer
    )

    pol = budget.policy if budget is not None else None
    max_live = budget.max_live if budget is not None else None

    if resume:
        state, healed = load_checkpoint(checkpoint.path)
        if state["config"] != cfg_key:
            raise CheckpointError(
                f"checkpoint {checkpoint.path} was written by a different "
                "run configuration; refusing to resume"
            )
        rngs: RngFactory = state["rngs"]
        ch_rng = state["ch_rng"]
        f_rng = state["f_rng"]
        corrupt = state["corrupt"]
        jf = state["jf"]
        cf = state["cf"]
        jam: Jammer = state["jam"]
        bound = state["bound"]
        t: int = state["t"]
        slots_simulated: int = state["slots_simulated"]
        next_id: int = state["next_id"]
        releasing: bool = state["releasing"]
        pending: list = state["pending"]
        blocked: deque = deque(state["blocked"])
        (live_ids, live_jobs, live_protos, live_act, live_observe, live_deadline) = state["live"]
        delivered: Dict[int, int] = state["delivered"]
        res: StreamResult = state["result"]
        wd_progress_mark: int = state["wd_progress_mark"]
        res.resumed_at_slot = t
        res.healed_checkpoint = res.healed_checkpoint or healed
    else:
        rngs = RngFactory(seed)
        ch_rng = rngs.channel_rng()
        corrupt = None
        jf = cf = None
        if plan is not None:
            ff = plan.feedback
            corrupt = ff if ff is not None and not ff.is_noop else None
            jf = plan.jobs if plan.jobs is not None and not plan.jobs.is_noop else None
            cf = plan.clock if plan.clock is not None and not plan.clock.is_noop else None
        f_rng = rngs.stream("fault-feedback") if corrupt is not None else None
        jam = jammer if jammer is not None else NoJammer()
        if type(jam) is not NoJammer:
            jam.reset()
        bound = process.bind(rngs.stream("arrivals"))
        t = 0
        slots_simulated = 0
        next_id = 0
        releasing = True
        pending = []  # heap of (activation, release, deadline, job_id, job, rec)
        blocked = deque()
        live_ids = []
        live_jobs = []
        live_protos = []
        live_act = []
        live_observe = []
        live_deadline = []
        delivered = {}
        res = StreamResult(
            seed=seed,
            process=process.describe(),
            offered_load=process.mean_rate,
            budget=budget.describe() if budget is not None else "none",
            latency_sketch=QuantileSketch(alpha=sketch_alpha),
            latency_sample=ReservoirSampler(reservoir_capacity, seed ^ 0x5EED),
            outcomes={} if record_outcomes else None,
        )
        wd_progress_mark = 0

    no_jam = type(jam) is NoJammer
    have_job_faults = jf is not None or cf is not None
    outcomes = res.outcomes

    wd = watchdog if watchdog is not None and watchdog.enabled else None
    wd_trip: Optional[WatchdogTrip] = None
    if wd is not None:
        wd_slot_limit = wd.max_slots
        wd_deadline = (
            time.perf_counter() + wd.max_seconds
            if wd.max_seconds is not None
            else None
        )
        wd_stall_limit = wd.stall_slots(process.max_window)

    ckpt = checkpoint
    if ckpt is not None:
        every = ckpt.every_slots
        next_mark = (slots_simulated // every + 1) * every

    sketch = res.latency_sketch
    sample = res.latency_sample

    def finalize(job: Job, proto: Protocol) -> None:
        comp = delivered.pop(job.job_id, -1)
        if comp >= 0:
            status = JobStatus.SUCCEEDED
            res.jobs_succeeded += 1
            latency = comp - job.release + 1
            sketch.offer(latency)
            sample.offer(latency)
        elif proto.gave_up:
            status = JobStatus.GAVE_UP
            res.jobs_gave_up += 1
        else:
            status = JobStatus.FAILED
            res.jobs_missed += 1
        if proto.succeeded and status is not JobStatus.SUCCEEDED:
            raise SimulationError(
                f"job {job.job_id} claims success but no delivery was observed"
            )
        res.transmissions += proto.transmissions
        if outcomes is not None:
            outcomes[job.job_id] = (status, comp, proto.transmissions)

    def shed(reason: str) -> None:
        res.shed[reason] = res.shed.get(reason, 0) + 1

    def admit(job: Job, rec: Optional[_JobRecord], at: int) -> None:
        planned = rec.activation if rec is not None else job.release
        if at > planned:
            # Blocked admission: the protocol's local clock starts at
            # the admission slot (the deadline does not move) — the same
            # semantics as a late-release JobFault, including the
            # begin() guard for protocols that reject mid-window starts.
            rec = _JobRecord(
                activation=at,
                begin=at,
                skew_ff=rec.skew_ff if rec is not None else 0,
                drift=rec.drift if rec is not None else 0.0,
                crash_slot=rec.crash_slot if rec is not None else -1,
            )
        proto = factory(job, rngs.fresh("job", job.job_id))
        act_fn, observe_fn = fault_wrappers(job, proto, at, rec)
        live_ids.append(job.job_id)
        live_jobs.append(job)
        live_protos.append(proto)
        live_act.append(act_fn)
        live_observe.append(observe_fn)
        live_deadline.append(job.deadline)
        res.jobs_admitted += 1
        if len(live_ids) > res.peak_live:
            res.peak_live = len(live_ids)

    while True:
        # 0. checkpoint — before anything of slot t is processed, so a
        # resumed run re-enters the loop at exactly this point.
        if ckpt is not None and slots_simulated >= next_mark:
            res.final_slot = t
            save_checkpoint(
                ckpt.path,
                {
                    "config": cfg_key,
                    "rngs": rngs,
                    "ch_rng": ch_rng,
                    "f_rng": f_rng,
                    "corrupt": corrupt,
                    "jf": jf,
                    "cf": cf,
                    "jam": jam,
                    "bound": bound,
                    "t": t,
                    "slots_simulated": slots_simulated,
                    "next_id": next_id,
                    "releasing": releasing,
                    "pending": pending,
                    "blocked": list(blocked),
                    "live": (
                        live_ids,
                        live_jobs,
                        live_protos,
                        live_act,
                        live_observe,
                        live_deadline,
                    ),
                    "delivered": delivered,
                    "result": res,
                    "wd_progress_mark": wd_progress_mark,
                },
            )
            res.checkpoints_written += 1
            next_mark = (slots_simulated // every + 1) * every

        # 1a. drain the blocked FIFO into freed live slots.
        if blocked:
            while blocked and len(live_protos) < max_live:
                job, rec = blocked.popleft()
                if rec is not None and 0 <= rec.crash_slot <= t:
                    shed("crashed-blocked")
                    continue
                if t >= job.deadline:
                    shed("expired-blocked")
                    continue
                admit(job, rec, t)

        # 1b. discover arrivals released at slot t.
        if releasing:
            if max_slots is not None and t >= max_slots:
                releasing = False
            else:
                for w in bound.arrivals_at(t):
                    if max_jobs is not None and res.jobs_released >= max_jobs:
                        releasing = False
                        break
                    job = Job(next_id, t, t + w)
                    rec = (
                        job_fault_record(
                            jf, cf, job, rngs.fresh("fault-job", next_id)
                        )
                        if have_job_faults
                        else None
                    )
                    heapq.heappush(
                        pending,
                        (
                            rec.activation if rec is not None else t,
                            t,
                            job.deadline,
                            next_id,
                            job,
                            rec,
                        ),
                    )
                    next_id += 1
                    res.jobs_released += 1

        # 1c. activate pending jobs whose slot arrived, in the closed
        # engine's order: (activation, release, deadline, job_id).
        activated = False
        while pending and pending[0][0] == t:
            _, _, _, _, job, rec = heapq.heappop(pending)
            activated = True
            if max_live is None or len(live_protos) < max_live:
                admit(job, rec, t)
            elif pol == "shed-newest":
                shed("arrival")
            elif pol == "shed-loosest-deadline":
                best = -1
                bk = None
                for i in range(len(live_protos)):
                    if live_ids[i] in delivered:
                        continue
                    k = (live_deadline[i], live_ids[i])
                    if bk is None or k > bk:
                        bk = k
                        best = i
                if bk is not None and bk > (job.deadline, job.job_id):
                    res.transmissions += live_protos[best].transmissions
                    shed("evicted")
                    del live_ids[best]
                    del live_jobs[best]
                    del live_protos[best]
                    del live_act[best]
                    del live_observe[best]
                    del live_deadline[best]
                    admit(job, rec, t)
                else:
                    shed("arrival")
            else:  # block
                if len(blocked) < budget.capacity:
                    blocked.append((job, rec))
                else:
                    shed("queue-full")
        if wd is not None and activated:
            wd_progress_mark = slots_simulated

        # 1d. jump over idle gaps — no slot simulated, no jam draw,
        # exactly like the closed engine's gap jump.
        if not live_protos:
            nxt = pending[0][0] if pending else None
            if releasing:
                start = t + 1
                if max_slots is not None:
                    arr = (
                        bound.next_arrival_at(start, max_slots)
                        if start < max_slots
                        else None
                    )
                    if arr is None:
                        releasing = False
                else:
                    arr = None
                    while arr is None:
                        arr = bound.next_arrival_at(start, start + _SCAN_CHUNK)
                        if arr is None:
                            start += _SCAN_CHUNK
                if arr is not None and (nxt is None or arr < nxt):
                    nxt = arr
            if nxt is None:
                break
            t = nxt
            bound.release_before(t)
            continue

        n_live = len(live_protos)

        # 2. collect actions.
        transmissions: List[Tuple[int, Message]] = []
        tx_idx: List[int] = []
        for i in range(n_live):
            msg = live_act[i](t)
            if msg is not None:
                transmissions.append((live_ids[i], msg))
                tx_idx.append(i)

        # 3 + 4. resolve the slot and fan the observation out — the
        # closed engine's inlined resolve_slot(), randomness included.
        slots_simulated += 1
        delivered_now = -1
        n_tx = len(transmissions)
        if n_tx == 0:
            jammed = (not no_jam) and jam.attempt(t, 0, None, ch_rng)
            obs = _OBS_NOISE if jammed else _OBS_SILENCE
            if jammed:
                res.jammed_slots += 1
            else:
                res.silence_slots += 1
            if corrupt is None:
                for observe in live_observe:
                    observe(t, obs)
            else:
                for observe in live_observe:
                    observe(t, corrupt.corrupt(obs, f_rng))
        elif n_tx == 1:
            jid0, msg0 = transmissions[0]
            i0 = tx_idx[0]
            jammed = (not no_jam) and jam.attempt(t, 1, msg0, ch_rng)
            if jammed:
                res.jammed_slots += 1
                if corrupt is None:
                    for i in range(n_live):
                        live_observe[i](
                            t, _OBS_NOISE_TX if i == i0 else _OBS_NOISE
                        )
                else:
                    for i in range(n_live):
                        live_observe[i](
                            t,
                            corrupt.corrupt(
                                _OBS_NOISE_TX if i == i0 else _OBS_NOISE,
                                f_rng,
                            ),
                        )
            else:
                res.success_slots += 1
                kind = msg0.kind
                if kind == KIND_DATA:
                    delivered.setdefault(msg0.sender, t)
                    delivered_now = msg0.sender
                elif kind == KIND_BEACON and msg0.payload is not None:
                    delivered.setdefault(msg0.payload.sender, t)
                    delivered_now = msg0.payload.sender
                obs_listen = Observation(_SUCCESS, msg0, False, False)
                obs_tx = Observation(_SUCCESS, msg0, True, msg0.sender == jid0)
                if corrupt is None:
                    for i in range(n_live):
                        live_observe[i](t, obs_tx if i == i0 else obs_listen)
                else:
                    for i in range(n_live):
                        live_observe[i](
                            t,
                            corrupt.corrupt(
                                obs_tx if i == i0 else obs_listen, f_rng
                            ),
                        )
        else:
            jammed = (not no_jam) and jam.attempt(t, n_tx, None, ch_rng)
            res.collision_slots += 1
            if jammed:
                res.jammed_slots += 1
            k = 0
            if corrupt is None:
                for i in range(n_live):
                    if k < n_tx and tx_idx[k] == i:
                        live_observe[i](t, _OBS_NOISE_TX)
                        k += 1
                    else:
                        live_observe[i](t, _OBS_NOISE)
            else:
                for i in range(n_live):
                    if k < n_tx and tx_idx[k] == i:
                        live_observe[i](t, corrupt.corrupt(_OBS_NOISE_TX, f_rng))
                        k += 1
                    else:
                        live_observe[i](t, corrupt.corrupt(_OBS_NOISE, f_rng))

        # 5. retire — compaction preserves order, as in the closed engine.
        t += 1
        any_dead = False
        for i in range(n_live):
            p = live_protos[i]
            if p.succeeded or p.gave_up or t >= live_deadline[i]:
                any_dead = True
                break
        if any_dead:
            keep_ids: List[int] = []
            keep_jobs: List[Job] = []
            keep_protos: List[Protocol] = []
            keep_act: List[Callable[[int], Optional[Message]]] = []
            keep_observe: List[Callable[[int, Observation], None]] = []
            keep_deadline: List[int] = []
            for i in range(n_live):
                p = live_protos[i]
                if p.succeeded or p.gave_up or t >= live_deadline[i]:
                    finalize(live_jobs[i], p)
                else:
                    keep_ids.append(live_ids[i])
                    keep_jobs.append(live_jobs[i])
                    keep_protos.append(p)
                    keep_act.append(live_act[i])
                    keep_observe.append(live_observe[i])
                    keep_deadline.append(live_deadline[i])
            live_ids = keep_ids
            live_jobs = keep_jobs
            live_protos = keep_protos
            live_act = keep_act
            live_observe = keep_observe
            live_deadline = keep_deadline

        if not (t & 0xFF):
            bound.release_before(t)
            if progress is not None:
                if max_jobs is not None:
                    progress(
                        res.jobs_succeeded + res.jobs_missed + res.jobs_shed,
                        max_jobs,
                    )
                else:
                    progress(slots_simulated, max_slots)

        if wd is not None:
            if delivered_now >= 0:
                wd_progress_mark = slots_simulated
            if wd_slot_limit is not None and slots_simulated >= wd_slot_limit:
                wd_trip = WatchdogTrip(
                    REASON_SLOTS,
                    t - 1,
                    slots_simulated,
                    f"max_slots={wd_slot_limit}",
                )
            elif (
                wd_stall_limit is not None
                and live_protos
                and slots_simulated - wd_progress_mark >= wd_stall_limit
            ):
                wd_trip = WatchdogTrip(
                    REASON_STALL,
                    t - 1,
                    slots_simulated,
                    f"no delivery for {wd_stall_limit} slots "
                    f"(stall_factor={wd.stall_factor:g})",
                )
            elif (
                wd_deadline is not None
                and slots_simulated % WALL_CHECK_PERIOD == 0
                and time.perf_counter() > wd_deadline
            ):
                wd_trip = WatchdogTrip(
                    REASON_WALL,
                    t - 1,
                    slots_simulated,
                    f"max_seconds={wd.max_seconds:g}",
                )
            if wd_trip is not None:
                break

        if not releasing and not pending and not blocked and not live_protos:
            break

    if wd_trip is not None:
        # Graceful cancellation: live jobs finalize like a horizon cut;
        # jobs still pending/blocked count as misses with zero attempts.
        res.watchdog = wd_trip
        for i in range(len(live_protos)):
            finalize(live_jobs[i], live_protos[i])
        for entry in pending:
            res.jobs_missed += 1
            if outcomes is not None:
                outcomes[entry[3]] = (JobStatus.FAILED, -1, 0)
        for job, _rec in blocked:
            res.jobs_missed += 1
            if outcomes is not None:
                outcomes[job.job_id] = (JobStatus.FAILED, -1, 0)

    res.slots_simulated = slots_simulated
    res.final_slot = t
    if progress is not None:
        if max_jobs is not None:
            progress(
                res.jobs_succeeded + res.jobs_missed + res.jobs_shed,
                max_jobs,
            )
        else:
            progress(slots_simulated, max_slots)
    return res
