"""repro.stream — open-arrival streaming simulation with bounded memory.

The closed-instance stack materializes every job up front and keeps a
record per job and per slot; this package is the open-loop counterpart
for the "millions of users, heavy traffic" regime:

* :mod:`repro.stream.arrivals` — lazy arrival processes (Poisson,
  bursty/MMPP, diurnal) that generate jobs slot by slot from a
  checkpointable RNG state, plus :func:`materialize` which freezes a
  finite prefix into a closed :class:`~repro.sim.instance.Instance`
  drawing *exactly* the same randomness — the bridge the
  ``streaming-equivalence`` verification corpus rides on;
* :mod:`repro.stream.engine` — :func:`stream_simulate`, a sliding-window
  engine: completed/expired jobs are evicted, telemetry is held in
  reservoir samples and quantile sketches, and a hard live-set budget
  with admission-control policies (``shed-newest``,
  ``shed-loosest-deadline``, ``block``) keeps memory flat at any
  offered load;
* :mod:`repro.stream.checkpoint` — atomic, self-validating streaming
  checkpoints with truncated-tail healing, so a SIGKILL'd run resumes
  mid-stream bit-identically;
* :mod:`repro.stream.shard` — the sharded runner: partition the seed
  population across processes and merge channel statistics;
* :mod:`repro.stream.report` — the sustained-load report (throughput
  ceiling, deadline-miss rate, latency percentiles vs offered load ρ).

See docs/STREAMING.md for the memory model and the checkpoint format.
"""

from repro.stream.arrivals import (
    ArrivalProcess,
    BoundArrivals,
    BurstyProcess,
    DiurnalProcess,
    PoissonProcess,
    materialize,
)
from repro.stream.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.engine import (
    POLICIES,
    StreamBudget,
    StreamResult,
    stream_simulate,
)
from repro.stream.report import SustainedLoadReport
from repro.stream.shard import StreamShardSpec, run_stream_shards

__all__ = [
    "POLICIES",
    "ArrivalProcess",
    "BoundArrivals",
    "BurstyProcess",
    "CheckpointConfig",
    "CheckpointError",
    "DiurnalProcess",
    "PoissonProcess",
    "StreamBudget",
    "StreamResult",
    "StreamShardSpec",
    "SustainedLoadReport",
    "load_checkpoint",
    "materialize",
    "run_stream_shards",
    "save_checkpoint",
]
