"""Lazy arrival processes: open-loop job streams from checkpointable RNG state.

The streaming engine never holds a workload in memory — jobs are drawn
slot by slot from an :class:`ArrivalProcess` bound to a generator.  Two
properties are load-bearing for the rest of the stack:

**Prefix consistency.**  Randomness is consumed in fixed-size *blocks*
of :data:`BLOCK` slots, always in slot order, regardless of how far the
caller looks ahead and regardless of any horizon cut.  The arrivals in
``[0, h1)`` are therefore bit-identical whether the stream is generated
to ``h1``, to ``h2 > h1``, or unboundedly — which is what lets a finite
stream prefix be frozen into a closed instance (:func:`materialize`)
that agrees with the streaming run at the boundary.  (The pre-PR-7
``poisson_instance`` drew its slot counts in one horizon-sized vector,
so instances with different horizons disagreed on their common prefix;
:func:`repro.workloads.poisson_instance` now routes through this module
and inherits the fix.)

**Checkpointability.**  A :class:`BoundArrivals` pickles completely —
the generator state, the buffered block, and (for the bursty process)
the modulation mode — so a resumed run continues the arrival stream
exactly where the checkpoint left it.

Processes
---------
:class:`PoissonProcess`
    Homogeneous Poisson arrivals at ``rate`` jobs/slot, windows drawn
    from a finite menu (optionally weighted).
:class:`BurstyProcess`
    A two-state Markov-modulated Poisson process (MMPP): a calm rate
    and a burst rate with per-slot switching probabilities — the
    classic model for flash crowds and alarm floods.
:class:`DiurnalProcess`
    A sinusoidally modulated Poisson rate with a configurable period —
    the day/night cycle of production traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.instance import Instance
from repro.sim.job import Job

__all__ = [
    "BLOCK",
    "ArrivalProcess",
    "BoundArrivals",
    "BurstyProcess",
    "DiurnalProcess",
    "PoissonProcess",
    "materialize",
]

#: Slots of arrivals drawn per RNG block.  Fixed so draw order depends
#: only on the block index — the prefix-consistency contract above.
BLOCK = 2048

#: Shared empty tuple served for slots with no arrivals.
_NO_ARRIVALS: Tuple[int, ...] = ()


def _check_windows(
    window_sizes: Tuple[int, ...], weights: Optional[Tuple[float, ...]]
) -> None:
    if not window_sizes or any(int(w) <= 0 for w in window_sizes):
        raise InvalidParameterError(
            f"window_sizes must be positive, got {list(window_sizes)}"
        )
    if weights is not None:
        w = np.asarray(weights, dtype=float)
        if w.shape != (len(window_sizes),) or np.any(w < 0) or w.sum() == 0:
            raise InvalidParameterError(
                "weights must be nonnegative, sum positive, and match "
                "window_sizes in length"
            )


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class: a picklable arrival-process *configuration*.

    Subclasses define the per-slot Poisson rate; window sizes are drawn
    per arrival from the shared menu.  Bind to a generator with
    :meth:`bind` to start drawing.
    """

    window_sizes: Tuple[int, ...] = (64,)
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "window_sizes", tuple(int(w) for w in self.window_sizes)
        )
        if self.weights is not None:
            object.__setattr__(
                self, "weights", tuple(float(w) for w in self.weights)
            )
        _check_windows(self.window_sizes, self.weights)

    @property
    def max_window(self) -> int:
        """The largest window in the menu (the feasibility bound)."""
        return max(self.window_sizes)

    @property
    def mean_rate(self) -> float:
        """Long-run expected arrivals per slot (the offered load ρ)."""
        raise NotImplementedError

    def _rates(self, t0: int, n: int, rng: np.random.Generator) -> np.ndarray:
        """Per-slot Poisson rates for slots ``t0 .. t0+n-1``.

        May draw from ``rng`` (the MMPP mode path does); any draws are
        part of the block's canonical draw order.
        """
        raise NotImplementedError

    def bind(self, rng: np.random.Generator) -> "BoundArrivals":
        """Start the stream on ``rng`` (which the stream then owns)."""
        return BoundArrivals(self, rng)

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` jobs per slot."""

    rate: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rate < 0:
            raise InvalidParameterError(f"rate must be >= 0, got {self.rate}")

    @property
    def mean_rate(self) -> float:
        return self.rate

    def _rates(self, t0: int, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.rate)

    def describe(self) -> str:
        return f"poisson(ρ={self.rate:g}, windows={list(self.window_sizes)})"


@dataclass(frozen=True)
class BurstyProcess(ArrivalProcess):
    """A two-state MMPP: calm traffic punctuated by bursts.

    Per slot, a calm stream switches to the burst state with
    probability ``p_enter`` and a bursting stream returns to calm with
    probability ``p_exit``; arrivals are Poisson at the state's rate.
    The stationary burst fraction is ``p_enter / (p_enter + p_exit)``.
    """

    calm_rate: float = 0.05
    burst_rate: float = 1.0
    p_enter: float = 0.005
    p_exit: float = 0.05

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.calm_rate < 0 or self.burst_rate < 0:
            raise InvalidParameterError("rates must be >= 0")
        for name in ("p_enter", "p_exit"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be in (0, 1], got {v}"
                )

    @property
    def burst_fraction(self) -> float:
        return self.p_enter / (self.p_enter + self.p_exit)

    @property
    def mean_rate(self) -> float:
        f = self.burst_fraction
        return (1.0 - f) * self.calm_rate + f * self.burst_rate

    def _rates(self, t0: int, n: int, rng: np.random.Generator) -> np.ndarray:
        # The MMPP rate path is stateful (the mode must survive across
        # blocks and checkpoints), so BoundArrivals._draw_block owns it.
        raise NotImplementedError(
            "BurstyProcess rates are drawn by BoundArrivals"
        )

    def describe(self) -> str:
        return (
            f"bursty(calm={self.calm_rate:g}, burst={self.burst_rate:g}, "
            f"enter={self.p_enter:g}, exit={self.p_exit:g}, "
            f"windows={list(self.window_sizes)})"
        )


@dataclass(frozen=True)
class DiurnalProcess(ArrivalProcess):
    """A sinusoidally modulated Poisson rate — the day/night cycle.

    ``rate_t = base_rate * (1 + amplitude * sin(2π t / period))``.
    """

    base_rate: float = 0.1
    amplitude: float = 0.5
    period: int = 4096

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base_rate < 0:
            raise InvalidParameterError("base_rate must be >= 0")
        if not 0.0 <= self.amplitude <= 1.0:
            raise InvalidParameterError(
                f"amplitude must be in [0, 1], got {self.amplitude}"
            )
        if self.period <= 0:
            raise InvalidParameterError("period must be positive")

    @property
    def mean_rate(self) -> float:
        return self.base_rate

    def _rates(self, t0: int, n: int, rng: np.random.Generator) -> np.ndarray:
        t = np.arange(t0, t0 + n, dtype=np.float64)
        return self.base_rate * (
            1.0 + self.amplitude * np.sin(2.0 * math.pi * t / self.period)
        )

    def describe(self) -> str:
        return (
            f"diurnal(base={self.base_rate:g}, amp={self.amplitude:g}, "
            f"period={self.period}, windows={list(self.window_sizes)})"
        )


class BoundArrivals:
    """An :class:`ArrivalProcess` bound to a generator: the live stream.

    Draws randomness in :data:`BLOCK`-slot blocks, always in slot
    order.  Pickles completely (generator state, buffered block, MMPP
    mode), which is how checkpoints freeze the stream mid-flight.
    """

    __slots__ = ("process", "rng", "_next_block", "_blocks", "_mode")

    def __init__(self, process: ArrivalProcess, rng: np.random.Generator) -> None:
        self.process = process
        self.rng = rng
        self._next_block = 0  # index of the first block not yet drawn
        self._blocks: List[List[Tuple[int, ...]]] = []  # buffered, oldest first
        self._mode = 0  # MMPP state: 0 = calm, 1 = burst

    def __getstate__(self):
        return (
            self.process,
            self.rng,
            self._next_block,
            self._blocks,
            self._mode,
        )

    def __setstate__(self, state) -> None:
        (
            self.process,
            self.rng,
            self._next_block,
            self._blocks,
            self._mode,
        ) = state

    # -- block drawing ---------------------------------------------------

    def _draw_block(self) -> List[Tuple[int, ...]]:
        """Draw the next block's arrivals in the canonical order.

        Order per block: (1) the per-slot rate path — for the MMPP this
        consumes one switching uniform per slot; (2) the per-slot
        Poisson counts as one vector; (3) one window draw per arrival,
        in slot order.
        """
        proc = self.process
        rng = self.rng
        t0 = self._next_block * BLOCK
        if isinstance(proc, BurstyProcess):
            u = rng.random(BLOCK)
            rates = np.empty(BLOCK)
            mode = self._mode
            enter, exit_ = proc.p_enter, proc.p_exit
            calm, burst = proc.calm_rate, proc.burst_rate
            for i in range(BLOCK):
                if mode == 0:
                    if u[i] < enter:
                        mode = 1
                else:
                    if u[i] < exit_:
                        mode = 0
                rates[i] = burst if mode else calm
            self._mode = mode
        else:
            rates = proc._rates(t0, BLOCK, rng)
        counts = rng.poisson(rates)
        total = int(counts.sum())
        sizes = proc.window_sizes
        if total:
            if len(sizes) == 1:
                picks = np.zeros(total, dtype=np.int64)
            else:
                p = None
                if proc.weights is not None:
                    w = np.asarray(proc.weights, dtype=float)
                    p = w / w.sum()
                picks = rng.choice(len(sizes), size=total, p=p)
        block: List[Tuple[int, ...]] = []
        k = 0
        for c in counts:
            c = int(c)
            if c == 0:
                block.append(_NO_ARRIVALS)
            else:
                block.append(tuple(sizes[int(j)] for j in picks[k : k + c]))
                k += c
        self._next_block += 1
        return block

    def _ensure_block(self, block_idx: int) -> List[Tuple[int, ...]]:
        """Buffer blocks up to ``block_idx`` and return it.

        Consumed blocks are dropped by :meth:`release_before`; lookups
        may only move forward past released slots.
        """
        first_kept = self._next_block - len(self._blocks)
        if block_idx < first_kept:
            raise InvalidParameterError(
                f"arrival block {block_idx} was already released "
                f"(oldest kept: {first_kept})"
            )
        while block_idx >= self._next_block:
            self._blocks.append(self._draw_block())
        return self._blocks[block_idx - first_kept]

    # -- queries ---------------------------------------------------------

    def arrivals_at(self, t: int) -> Tuple[int, ...]:
        """Window sizes of the jobs released at slot ``t``."""
        return self._ensure_block(t // BLOCK)[t % BLOCK]

    def next_arrival_at(self, t: int, limit: int) -> Optional[int]:
        """The first slot in ``[t, limit)`` with at least one arrival."""
        while t < limit:
            block = self._ensure_block(t // BLOCK)
            end = min(limit, (t // BLOCK + 1) * BLOCK)
            i = t % BLOCK
            while t < end:
                if block[i]:
                    return t
                i += 1
                t += 1
        return None

    def release_before(self, t: int) -> None:
        """Drop buffered blocks that end at or before slot ``t``.

        The engine calls this as time advances so the buffer holds at
        most two blocks — the memory contract of the streaming mode.
        """
        first_kept = self._next_block - len(self._blocks)
        while self._blocks and (first_kept + 1) * BLOCK <= t:
            self._blocks.pop(0)
            first_kept += 1


def materialize(
    process: ArrivalProcess, rng: np.random.Generator, horizon: int
) -> Instance:
    """Freeze the first ``horizon`` slots of a stream into an Instance.

    Draws exactly the randomness the streaming engine would draw for the
    same prefix (same generator, same block order), and assigns job ids
    in draw order — so job ``k`` here *is* job ``k`` of the streaming
    run.  This is the bridge the ``streaming-equivalence`` verification
    corpus crosses: the returned closed instance and the live stream
    must agree bit-for-bit on every delivery.
    """
    if horizon <= 0:
        raise InvalidParameterError(f"horizon must be positive, got {horizon}")
    bound = process.bind(rng)
    jobs: List[Job] = []
    for t in range(horizon):
        for window in bound.arrivals_at(t):
            jobs.append(Job(len(jobs), t, t + window))
        bound.release_before(t)
    return Instance(jobs)
