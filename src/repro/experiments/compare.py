"""Paired protocol comparison with significance testing.

E12-style "who wins" tables answer the headline question; this module
adds the statistical footing: all protocols run on the *same* instance
with the *same* seeds (paired by design — the RNG factory isolates
protocol randomness per job, so two protocols on one seed share the
workload exactly), and differences against a chosen baseline come with
bootstrap confidence intervals over the per-seed success rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.stats import bootstrap_mean_diff
from repro.analysis.tables import format_table
from repro.cache import ResultCache
from repro.channel.jamming import Jammer
from repro.experiments.parallel import (
    ConstantFactory,
    ConstantInstance,
    run_seeds,
)
from repro.sim.engine import ProtocolFactory
from repro.sim.instance import Instance

__all__ = ["ProtocolComparison", "compare_protocols"]


@dataclass(frozen=True)
class ProtocolComparison:
    """Per-protocol per-seed success rates plus baseline contrasts."""

    instance_summary: str
    seeds: Tuple[int, ...]
    rates: Mapping[str, Tuple[float, ...]]  # name -> per-seed success rates
    baseline: str

    def mean_rate(self, name: str) -> float:
        return float(np.mean(self.rates[name]))

    def contrast(
        self, name: str, rng: Optional[np.random.Generator] = None
    ) -> Tuple[float, float, float]:
        """``mean(name) − mean(baseline)`` with a bootstrap CI."""
        rng = rng if rng is not None else np.random.default_rng(0)
        return bootstrap_mean_diff(
            self.rates[name], self.rates[self.baseline], rng
        )

    def significant_winners(self) -> List[str]:
        """Protocols whose CI over the baseline lies strictly above 0."""
        out = []
        for name in self.rates:
            if name == self.baseline:
                continue
            _, lo, _ = self.contrast(name)
            if lo > 0:
                out.append(name)
        return out

    def significant_losers(self) -> List[str]:
        """Protocols whose CI against the baseline lies strictly below 0."""
        out = []
        for name in self.rates:
            if name == self.baseline:
                continue
            _, _, hi = self.contrast(name)
            if hi < 0:
                out.append(name)
        return out

    def table(self, title: str = "") -> str:
        rows = []
        for name in self.rates:
            mean = self.mean_rate(name)
            if name == self.baseline:
                rows.append([name, mean, "—", "—", "baseline"])
                continue
            point, lo, hi = self.contrast(name)
            verdict = (
                "better" if lo > 0 else "worse" if hi < 0 else "tied"
            )
            rows.append([name, mean, point, f"[{lo:.3f}, {hi:.3f}]", verdict])
        return format_table(
            ["protocol", "mean success", "Δ vs baseline", "95% CI", "verdict"],
            rows,
            title=title or f"comparison on {self.instance_summary} "
            f"({len(self.seeds)} seeds, baseline {self.baseline})",
        )


def compare_protocols(
    instance: Instance,
    factories: Mapping[str, ProtocolFactory],
    *,
    seeds: Sequence[int] = range(8),
    baseline: Optional[str] = None,
    jammer: Optional[Jammer] = None,
    processes: int = 1,
    cache: Union[None, bool, str, ResultCache] = None,
) -> ProtocolComparison:
    """Run every factory over every seed on one instance.

    Parameters
    ----------
    factories:
        Name → protocol factory.  Factories that must precompute from the
        instance (EDF) should already be bound to it.
    baseline:
        Contrast target; defaults to the first name.
    processes:
        Worker processes per protocol (>1 requires picklable factories).
    cache:
        Result-cache knob (see :func:`repro.cache.as_cache`); cached
        (instance, factory, jammer, seed) runs skip simulation.
    """
    if not factories:
        raise ValueError("need at least one protocol")
    names = list(factories)
    base = baseline if baseline is not None else names[0]
    if base not in factories:
        raise ValueError(f"baseline {base!r} not among protocols {names}")
    build = ConstantInstance(instance)
    rates: Dict[str, Tuple[float, ...]] = {}
    for name, factory in factories.items():
        digests = run_seeds(
            build,
            ConstantFactory(factory),
            seeds=list(seeds),
            jammer=jammer,
            processes=processes,
            cache=cache,
        )
        rates[name] = tuple(d.success_rate for d in digests)
    return ProtocolComparison(
        instance_summary=instance.summary(),
        seeds=tuple(seeds),
        rates=rates,
        baseline=base,
    )
