"""Closed-form capacity planning for the paper's protocols.

The guarantees are stated as "for all λ there exists a sufficiently
small γ"; a user pointing this library at a real workload needs the
*actual* numbers.  This module turns the schedule arithmetic that is
otherwise spread across Lemmas 6, 11, and 12 into calculators:

* :func:`aligned_window_demand` — worst-case active steps demanded
  inside one window of class ℓ, as a function of the per-class job
  counts (every nested window's λℓ'² estimation plus the τ-inflated
  broadcast stages);
* :func:`max_feasible_gamma` — the largest slack γ for which that
  demand fits, found by bisection — the concrete "sufficiently small γ"
  of Lemma 12 at the configured constants;
* :func:`punctual_overheads` — PUNCTUAL's fixed costs for a window size
  (synchronization, pullback duration, round dilution, trimming loss)
  and the residual virtual-slot budget handed to the embedded ALIGNED.

These are *planning* bounds: deterministic costs are exact, stochastic
quantities (the estimate) are taken at their τ-inflated typical value,
so the results calibrate experiments rather than prove theorems.  The
experiment suite cross-checks them against simulation (A4, E6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.broadcast import total_active_steps
from repro.core.estimation import estimation_length
from repro.core.rounds import ROUND_LENGTH
from repro.errors import InvalidParameterError
from repro.params import AlignedParams, PunctualParams

__all__ = [
    "aligned_window_demand",
    "max_feasible_gamma",
    "PunctualBudget",
    "punctual_overheads",
]


def _typical_estimate(n_jobs: int, params: AlignedParams, level: int) -> int:
    """The τ-inflated power-of-two estimate a class of n̂ jobs produces.

    The winning estimation phase is typically ``j ≈ ⌈log₂ n̂⌉``, giving
    ``τ·2^j``; capped at the window like the protocol's rule.
    """
    if n_jobs <= 0:
        return 0
    j = max(1, math.ceil(math.log2(n_jobs)))
    return min(params.tau * (1 << j), 1 << level)


def aligned_window_demand(
    level: int,
    params: AlignedParams,
    jobs_per_class: Mapping[int, int],
) -> int:
    """Worst-case active steps demanded inside one class-``level`` window.

    Counts, for every class ℓ' from ``params.min_level`` to ``level``,
    the ``2^{level-ℓ'}`` nested windows each paying estimation (always)
    plus a broadcast stage sized by the typical estimate for
    ``jobs_per_class.get(ℓ', 0)`` jobs.

    Parameters
    ----------
    jobs_per_class:
        Expected jobs *per window* of each class (not totals).
    """
    if level < params.min_level:
        raise InvalidParameterError(
            f"level {level} below min_level {params.min_level}"
        )
    demand = 0
    for lv in range(params.min_level, level + 1):
        n_windows = 1 << (level - lv)
        n_jobs = int(jobs_per_class.get(lv, 0))
        est = _typical_estimate(n_jobs, params, lv)
        per_window = (
            total_active_steps(lv, est, params.lam)
            if est
            else estimation_length(lv, params.lam)
        )
        demand += n_windows * per_window
    return demand


def max_feasible_gamma(
    level: int,
    params: AlignedParams,
    *,
    safety: float = 1.0,
    tol: float = 1e-4,
) -> float:
    """The largest γ whose worst-case demand fits a class-``level`` window.

    Assumes every class window holds its full budget ``γ·2^ℓ`` of jobs
    (the densest feasible occupancy) and bisects γ until the
    :func:`aligned_window_demand` equals ``safety · 2^level``.

    Returns 0.0 when even the empty schedule (pure estimation overhead)
    does not fit — the regime the A4 ablation charts.
    """
    window = 1 << level
    budget = safety * window

    def demand(gamma: float) -> int:
        per_class = {
            lv: max(0, int(gamma * (1 << lv)))
            for lv in range(params.min_level, level + 1)
        }
        return aligned_window_demand(level, params, per_class)

    if demand(0.0) > budget:
        return 0.0
    lo, hi = 0.0, 1.0
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if demand(mid) <= budget:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True, slots=True)
class PunctualBudget:
    """PUNCTUAL's fixed costs and residual capacity for one window size.

    Attributes
    ----------
    window:
        The (power-of-two rounded) real window size.
    sync_slots:
        Worst-case synchronization cost (listen budget + announce).
    pullback_slots:
        The slingshot pullback duration.
    rounds_available:
        Complete rounds left after the fixed costs.
    virtual_window:
        The trimmed aligned virtual window (≥ a quarter of the rounds).
    virtual_level:
        Its class, or None when it falls below the embedded min_level —
        the job would be demoted to the anarchist path.
    anarchist_attempts:
        Expected anarchist transmissions over the remaining window.
    """

    window: int
    sync_slots: int
    pullback_slots: int
    rounds_available: int
    virtual_window: int
    virtual_level: Optional[int]
    anarchist_attempts: float


def punctual_overheads(window: int, params: PunctualParams) -> PunctualBudget:
    """Fixed costs and residual budget for a job with this window size."""
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    w_eff = 1 << (window.bit_length() - 1)
    sync = 13 + 2  # listen budget + two start slots (worst case)
    pullback = params.pullback_duration(w_eff)
    remaining = max(0, w_eff - sync - pullback - 2 * ROUND_LENGTH)
    rounds = remaining // ROUND_LENGTH
    if rounds >= 2:
        virtual = 1 << max(0, (rounds.bit_length() - 2))
        # largest power of two that always fits in `rounds` consecutive
        # virtual slots regardless of phase: rounds // 2 rounded down
        virtual = 1 << ((rounds // 2).bit_length() - 1) if rounds >= 2 else 0
    else:
        virtual = 0
    level = virtual.bit_length() - 1 if virtual else None
    if level is not None and level < params.aligned.min_level:
        level = None
    anarchist = (
        params.anarchist_probability(w_eff) * (w_eff // ROUND_LENGTH)
    )
    return PunctualBudget(
        window=w_eff,
        sync_slots=sync,
        pullback_slots=pullback,
        rounds_available=rounds,
        virtual_window=virtual,
        virtual_level=level,
        anarchist_attempts=anarchist,
    )
