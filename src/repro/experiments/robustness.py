"""Degradation profiles: protocol success under escalating fault severity.

The paper's claims are robustness claims — ALIGNED keeps its whp
guarantee against a stochastic adversary up to ``p_jam = 1/2``
(Theorem 14), PUNCTUAL assumes no global clock at all — so the natural
experiment is a *degradation profile*: fix a workload, escalate one
fault family through a severity ladder, and chart each protocol's
success rate and latency as the channel gets nastier.  This module
packages that experiment: :data:`FAULT_FAMILIES` maps a family name to a
``severity -> FaultPlan`` builder, :func:`run_robustness` runs the full
``family x protocol x severity`` grid through
:func:`repro.experiments.parallel.run_seeds` (inheriting caching,
multi-process execution, retries, and the runtime invariant checker),
and :class:`RobustnessReport` renders one table per family with the
``p_jam = 1/2`` threshold row flagged.

Severity is a single float in ``[0, 1]`` for every family, so profiles
are comparable across families:

* ``jam``: the paper's adversary, ``p_jam = severity``;
* ``rate``: a rate-limited adaptive adversary corrupting at most
  ``severity`` of every 64-slot window (the budgeted analogue of
  ``p_jam = severity``);
* ``burst``: duty-cycled deterministic interference jamming a
  ``severity`` fraction of each 64-slot period in one burst;
* ``feedback``: per-listener feedback corruption (SILENCE<->NOISE flips
  at ``severity/2``, success erasure at ``severity/4``);
* ``clock``: per-job skew up to ``64 * severity`` slots and drift up to
  ``0.2 * severity``;
* ``jobs``: late releases (probability ``severity``, delay up to 256
  slots) and crash-before-deadline (probability ``severity/2``).

Severity 0 is always the empty plan, so every profile starts from the
clean baseline measured through exactly the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.stats import ProportionEstimate, estimate_proportion
from repro.analysis.tables import format_table
from repro.cache import ResultCache
from repro.channel.jamming import (
    BurstJammer,
    StochasticJammer,
    WindowedRateJammer,
)
from repro.errors import InvalidParameterError
from repro.experiments.parallel import (
    FactoryBuilder,
    InstanceBuilder,
    run_seeds,
)
from repro.faults import ClockFault, FaultPlan, FeedbackFault, JobFault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry

__all__ = [
    "FAULT_FAMILIES",
    "JAM_THRESHOLD",
    "ProfilePoint",
    "RobustnessReport",
    "fault_plan",
    "run_robustness",
]

#: Theorem 14's jamming threshold: guarantees hold for p_jam <= 1/2.
JAM_THRESHOLD = 0.5

#: Reference window for the rate/burst adversaries' duty cycles.
_ADVERSARY_WINDOW = 64


def _jam(severity: float) -> FaultPlan:
    return FaultPlan(jammer=StochasticJammer(severity))


def _rate(severity: float) -> FaultPlan:
    return FaultPlan(
        jammer=WindowedRateJammer(
            _ADVERSARY_WINDOW, round(severity * _ADVERSARY_WINDOW)
        )
    )


def _burst(severity: float) -> FaultPlan:
    burst = max(1, round(severity * _ADVERSARY_WINDOW))
    return FaultPlan(
        jammer=BurstJammer(burst, max(_ADVERSARY_WINDOW - burst, 0))
    )


def _feedback(severity: float) -> FaultPlan:
    return FaultPlan(
        feedback=FeedbackFault(
            p_silence_to_noise=severity / 2,
            p_noise_to_silence=severity / 2,
            p_success_erasure=severity / 4,
        )
    )


def _clock(severity: float) -> FaultPlan:
    return FaultPlan(
        clock=ClockFault(
            max_skew=round(64 * severity), drift=0.2 * severity
        )
    )


def _jobs(severity: float) -> FaultPlan:
    return FaultPlan(
        jobs=JobFault(
            p_late=min(severity, 1.0), max_delay=256, p_crash=severity / 2
        )
    )


#: name -> ``severity -> FaultPlan`` (severity in [0, 1]; 0 = clean).
FAULT_FAMILIES: Dict[str, Callable[[float], FaultPlan]] = {
    "jam": _jam,
    "rate": _rate,
    "burst": _burst,
    "feedback": _feedback,
    "clock": _clock,
    "jobs": _jobs,
}


def fault_plan(family: str, severity: float) -> FaultPlan:
    """The :class:`FaultPlan` for one family at one severity.

    ``severity <= 0`` always yields the empty plan, so profiles share a
    common clean baseline.
    """
    if family not in FAULT_FAMILIES:
        raise InvalidParameterError(
            f"unknown fault family {family!r} "
            f"(choices: {sorted(FAULT_FAMILIES)})"
        )
    if not 0.0 <= severity <= 1.0:
        raise InvalidParameterError(
            f"severity must be in [0, 1], got {severity}"
        )
    if severity <= 0.0:
        return FaultPlan()
    return FAULT_FAMILIES[family](severity)


@dataclass(frozen=True)
class ProfilePoint:
    """One cell of a degradation profile."""

    family: str
    protocol: str
    severity: float
    success: ProportionEstimate
    mean_latency: float
    n_runs: int

    @property
    def at_threshold(self) -> bool:
        """True on the Theorem-14 boundary row of the ``jam`` family."""
        return self.family == "jam" and self.severity == JAM_THRESHOLD


@dataclass
class RobustnessReport:
    """A full ``family x protocol x severity`` degradation profile."""

    points: List[ProfilePoint]

    def families(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.family)
        return list(seen)

    def protocols(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.protocol)
        return list(seen)

    def point(
        self, family: str, protocol: str, severity: float
    ) -> ProfilePoint:
        for p in self.points:
            if (
                p.family == family
                and p.protocol == protocol
                and p.severity == severity
            ):
                return p
        raise KeyError((family, protocol, severity))

    def table(self, family: str) -> str:
        """One table per family: severity rows, one column per protocol.

        The ``jam`` family's ``p_jam = 1/2`` row — the exact boundary of
        Theorem 14's guarantee — is flagged, so the eye lands on where
        the paper stops promising anything.
        """
        protos = self.protocols()
        severities: Dict[float, Dict[str, ProfilePoint]] = {}
        for p in self.points:
            if p.family == family:
                severities.setdefault(p.severity, {})[p.protocol] = p
        rows = []
        for sev in sorted(severities):
            row: List[Any] = [sev]
            for name in protos:
                cell = severities[sev].get(name)
                row.append("-" if cell is None else round(cell.success.point, 4))
            note = ""
            if family == "jam" and sev == JAM_THRESHOLD:
                note = "<- p_jam = 1/2 (Thm 14 boundary)"
            elif family == "jam" and sev > JAM_THRESHOLD:
                note = "beyond paper guarantee"
            row.append(note)
            rows.append(row)
        return format_table(
            ["severity"] + protos + [""],
            rows,
            title=f"fault family: {family}",
        )

    def render(self) -> str:
        """Every family's table, separated by blank lines."""
        return "\n\n".join(self.table(f) for f in self.families())


def run_robustness(
    build: InstanceBuilder,
    protocols: Mapping[str, FactoryBuilder],
    *,
    families: Optional[Sequence[str]] = None,
    severities: Sequence[float] = (0.0, 0.1, 0.25, 0.5, 0.75),
    seeds: int = 5,
    seed_base: int = 0,
    check_invariants: bool = True,
    processes: int = 1,
    cache: Union[None, bool, str, ResultCache] = None,
    retries: int = 0,
    progress: Optional[Callable[[str, str, float], None]] = None,
    telemetry: Optional["Telemetry"] = None,
) -> RobustnessReport:
    """Chart every protocol's degradation across fault families.

    Parameters
    ----------
    build:
        Zero-argument workload builder (picklable for ``processes > 1``).
    protocols:
        ``name -> protocol builder`` (each builder maps an instance to a
        protocol factory, exactly as in :func:`run_seeds`).
    families:
        Fault family names (default: all of :data:`FAULT_FAMILIES`).
    severities:
        The severity ladder, each in ``[0, 1]``.  Include 0 for a clean
        baseline and 0.5 to land exactly on the Theorem-14 boundary of
        the ``jam`` family.
    check_invariants:
        Audit every run with the runtime invariant checker (on by
        default: a fault that corrupts engine bookkeeping should fail
        loudly here, not skew a curve silently).
    progress:
        Called as ``progress(family, protocol, severity)`` before each
        cell runs.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` collector
        passed to every cell's :func:`run_seeds` call (fault-plan
        bindings show up as ``fault.plan_bound`` events on the inline
        path).

    Remaining knobs (``processes``, ``cache``, ``retries``) pass through
    to :func:`run_seeds` per cell.
    """
    chosen = list(families) if families is not None else list(FAULT_FAMILIES)
    for f in chosen:
        if f not in FAULT_FAMILIES:
            raise InvalidParameterError(
                f"unknown fault family {f!r} "
                f"(choices: {sorted(FAULT_FAMILIES)})"
            )
    seed_list = [seed_base + s for s in range(seeds)]
    points: List[ProfilePoint] = []
    for family in chosen:
        for name, protocol in protocols.items():
            for severity in severities:
                if progress is not None:
                    progress(family, name, severity)
                plan = fault_plan(family, severity)
                digests = run_seeds(
                    build,
                    protocol,
                    seeds=seed_list,
                    faults=None if plan.is_noop else plan,
                    check_invariants=check_invariants,
                    processes=processes,
                    cache=cache,
                    retries=retries,
                    telemetry=telemetry,
                )
                ok = sum(d.n_succeeded for d in digests)
                total = sum(d.n_jobs for d in digests)
                latency_sum = sum(d.latency_sum for d in digests)
                points.append(
                    ProfilePoint(
                        family=family,
                        protocol=name,
                        severity=float(severity),
                        success=estimate_proportion(ok, max(total, 1)),
                        mean_latency=(
                            latency_sum / ok if ok else float("nan")
                        ),
                        n_runs=len(digests),
                    )
                )
    return RobustnessReport(points)
