"""Breaking-point certification: bisecting each protocol's failure cliff.

Theorem 14 promises per-job success whp against oblivious stochastic
jamming up to ``p_jam = 1/2`` — a claim with a *location*: somewhere
past 1/2 the success curve must fall off a cliff, and nothing in the
paper says where the cliff sits for smarter adversaries.  This module
finds cliffs empirically:

* :func:`bisect_breaking_point` is the pure bisector — given any
  monotone-ish ``severity -> success rate`` measure, it brackets the
  severity at which success crosses a target rate;
* :data:`ADVERSARY_FAMILIES` names the severity-parameterized
  adversaries under certification: the paper's oblivious families
  (``jam``, ``rate``, ``burst``) and the reactive attackers of
  :mod:`repro.adversary`;
* :func:`run_certification` bisects every ``protocol x family`` cell
  (through :func:`repro.experiments.parallel.run_seeds`, inheriting
  caching, multiprocessing, and run watchdogs) and returns a
  :class:`CertificationReport`: the degradation frontier with
  run-clustered bootstrap CIs (:func:`repro.analysis.stats.bootstrap_proportion`),
  a JSONL artifact, and the Theorem-14 boundary check — PUNCTUAL's
  ``jam`` threshold must land at ``p_jam ~ 1/2``.

Severity means the same thing everywhere: the adversary's sustained
channel budget, the fraction of slots it may corrupt (see
:mod:`repro.adversary.reactive`).  A *breaking point* is the severity at
which the pooled success rate crosses ``target`` (default 0.9); the
frontier orders families by it, so "which attacker hurts this protocol
most per unit of energy" is the first line of the report.

This is *empirical* certification — distinct from the feasibility
certification of :func:`repro.sim.validate.certify`, which checks a
workload against closed-form capacity bounds before any simulation.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.adversary import (
    AdaptiveBudgetJammer,
    FeedbackReactiveJammer,
    LeaderAssassinJammer,
    StructureTargetedJammer,
)
from repro.analysis.stats import ProportionEstimate, bootstrap_proportion
from repro.analysis.tables import format_table
from repro.cache import ResultCache
from repro.channel.jamming import (
    BurstJammer,
    Jammer,
    StochasticJammer,
    WindowedRateJammer,
)
from repro.errors import InvalidParameterError, PaperGuaranteeWarning
from repro.experiments.parallel import (
    FactoryBuilder,
    InstanceBuilder,
    run_seeds,
)
from repro.experiments.robustness import JAM_THRESHOLD, _ADVERSARY_WINDOW
from repro.sim.watchdog import Watchdog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.ledger import RunLedger
    from repro.obs.telemetry import Telemetry

__all__ = [
    "ADVERSARY_FAMILIES",
    "OBLIVIOUS_FAMILIES",
    "REACTIVE_FAMILIES",
    "BisectResult",
    "BreakingPoint",
    "CertificationReport",
    "bisect_breaking_point",
    "run_certification",
]


# -- adversary families ------------------------------------------------------
#
# Module-level builders (not lambdas) so jammers ship picklably to
# worker processes.  Every family maps severity in [0, 1] to a Jammer
# with that sustained channel budget.


def _fam_jam(severity: float) -> Jammer:
    return StochasticJammer(severity)


def _fam_rate(severity: float) -> Jammer:
    return WindowedRateJammer(
        _ADVERSARY_WINDOW, round(severity * _ADVERSARY_WINDOW)
    )


def _fam_burst(severity: float) -> Jammer:
    burst = max(1, round(severity * _ADVERSARY_WINDOW))
    return BurstJammer(burst, max(_ADVERSARY_WINDOW - burst, 0))


def _fam_reactive(severity: float) -> Jammer:
    return FeedbackReactiveJammer(severity)


def _fam_struct_control(severity: float) -> Jammer:
    # The ISSUE's structure attacker: timekeeper + election phases.
    return StructureTargetedJammer(severity)


def _fam_struct_delivery(severity: float) -> Jammer:
    # Same budget, aimed at PUNCTUAL's delivery phases (ALIGNED slot 5,
    # anarchist slot 9) — empirically the round structure's soft spot.
    return StructureTargetedJammer(severity, targets=(5, 9))


def _fam_assassin(severity: float) -> Jammer:
    return LeaderAssassinJammer(severity)


def _fam_banked(severity: float) -> Jammer:
    return AdaptiveBudgetJammer(severity)


#: The paper's oblivious adversaries (Theorem 14's regime and its
#: budgeted analogues).
OBLIVIOUS_FAMILIES: Dict[str, Callable[[float], Jammer]] = {
    "jam": _fam_jam,
    "rate": _fam_rate,
    "burst": _fam_burst,
}

#: Reactive attackers from :mod:`repro.adversary` — beyond the model.
REACTIVE_FAMILIES: Dict[str, Callable[[float], Jammer]] = {
    "reactive": _fam_reactive,
    "struct-control": _fam_struct_control,
    "struct-delivery": _fam_struct_delivery,
    "assassin": _fam_assassin,
    "banked": _fam_banked,
}

#: name -> ``severity -> Jammer``; all certifiable families.
ADVERSARY_FAMILIES: Dict[str, Callable[[float], Jammer]] = {
    **OBLIVIOUS_FAMILIES,
    **REACTIVE_FAMILIES,
}


# -- the pure bisector -------------------------------------------------------


@dataclass(frozen=True)
class BisectResult:
    """Outcome of one bisection (see :func:`bisect_breaking_point`).

    ``threshold`` is the located breaking severity — the midpoint of the
    final bracket ``[bracket_lo, bracket_hi]``, where the measure was
    still at/above target at ``bracket_lo`` and below it at
    ``bracket_hi``.  ``None`` when the measure never fell below target
    on ``[lo, hi]`` (no breaking point in range).  ``evaluations``
    records every probe as ``(severity, value)`` in probe order.
    """

    threshold: Optional[float]
    bracket_lo: float
    bracket_hi: float
    evaluations: Tuple[Tuple[float, float], ...]

    @property
    def broke_below_lo(self) -> bool:
        """True when the measure was already below target at ``lo``."""
        return (
            self.threshold is not None
            and self.bracket_hi == self.evaluations[0][0]
        )


def bisect_breaking_point(
    measure: Callable[[float], float],
    *,
    lo: float = 0.0,
    hi: float = 1.0,
    target: float = 0.9,
    tol: float = 0.02,
    max_iter: int = 32,
) -> BisectResult:
    """Locate where a degradation curve crosses ``target``.

    ``measure(severity)`` is any callable returning a success rate;
    it is assumed (not required — see below) to be non-increasing in
    severity.  The bisector probes ``lo`` and ``hi`` first:

    * already below target at ``lo`` → the breaking point precedes the
      range; returns ``threshold = lo`` with the degenerate bracket
      ``[lo, lo]``-to-``lo`` marked via :attr:`BisectResult.broke_below_lo`;
    * still at/above target at ``hi`` → no breaking point in range;
      returns ``threshold = None`` with bracket ``[hi, hi]``;
    * otherwise classic bisection until the bracket is narrower than
      ``tol`` (or ``max_iter`` probes), returning the bracket midpoint.

    On a monotone ladder the returned threshold is always inside a
    bracket whose ends straddle the target crossing — the property the
    hypothesis suite pins.  On a noisy (non-monotone) measure the
    result is still a valid *local* crossing of the target, which is
    what an empirical cliff is.
    """
    if not lo < hi:
        raise InvalidParameterError(f"need lo < hi, got [{lo}, {hi}]")
    if tol <= 0:
        raise InvalidParameterError(f"tol must be positive, got {tol}")
    evals: List[Tuple[float, float]] = []

    def probe(x: float) -> float:
        v = float(measure(x))
        evals.append((x, v))
        return v

    if probe(lo) < target:
        return BisectResult(lo, lo, lo, tuple(evals))
    if probe(hi) >= target:
        return BisectResult(None, hi, hi, tuple(evals))
    a, b = lo, hi
    for _ in range(max_iter):
        if b - a <= tol:
            break
        mid = (a + b) / 2.0
        if probe(mid) >= target:
            a = mid
        else:
            b = mid
    return BisectResult((a + b) / 2.0, a, b, tuple(evals))


# -- certification over real runs --------------------------------------------


@dataclass(frozen=True)
class BreakingPoint:
    """One certified ``protocol x adversary family`` cell."""

    protocol: str
    family: str
    target: float
    threshold: Optional[float]
    bracket_lo: float
    bracket_hi: float
    #: severity -> pooled success estimate with run-clustered bootstrap CI.
    estimates: Mapping[float, ProportionEstimate] = field(default_factory=dict)

    @property
    def reactive(self) -> bool:
        return self.family in REACTIVE_FAMILIES

    def as_record(self) -> Dict[str, object]:
        """A JSON-serializable artifact line."""
        return {
            "type": "breaking_point",
            "protocol": self.protocol,
            "family": self.family,
            "reactive": self.reactive,
            "target": self.target,
            "threshold": self.threshold,
            "bracket": [self.bracket_lo, self.bracket_hi],
            "probes": [
                {
                    "severity": sev,
                    "success": est.point,
                    "ci": [est.low, est.high],
                    "trials": est.trials,
                }
                for sev, est in sorted(self.estimates.items())
            ],
        }


@dataclass
class CertificationReport:
    """The degradation frontier of every certified cell."""

    points: List[BreakingPoint]
    target: float

    def cell(self, protocol: str, family: str) -> BreakingPoint:
        for p in self.points:
            if p.protocol == protocol and p.family == family:
                return p
        raise KeyError((protocol, family))

    def protocols(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.protocol)
        return list(seen)

    # -- the headline checks -------------------------------------------------

    def theorem14_deviation(self, protocol: str) -> Optional[float]:
        """``jam`` threshold minus 1/2 — the Theorem 14 boundary error.

        ``None`` when the ``jam`` family was not certified for the
        protocol or no breaking point was found in range.
        """
        try:
            cell = self.cell(protocol, "jam")
        except KeyError:
            return None
        if cell.threshold is None:
            return None
        return cell.threshold - JAM_THRESHOLD

    def sharpest_reactive(
        self, protocol: str
    ) -> Optional[BreakingPoint]:
        """The reactive family with the lowest breaking point, if any."""
        best: Optional[BreakingPoint] = None
        for p in self.points:
            if p.protocol != protocol or not p.reactive:
                continue
            if p.threshold is None:
                continue
            if best is None or p.threshold < (best.threshold or 2.0):
                best = p
        return best

    def reactive_strictly_lower(self, protocol: str) -> Optional[bool]:
        """Does some reactive attacker break earlier than oblivious jam?

        ``None`` when either side is missing; otherwise whether the
        sharpest reactive threshold is strictly below the ``jam`` one.
        """
        try:
            jam = self.cell(protocol, "jam")
        except KeyError:
            return None
        best = self.sharpest_reactive(protocol)
        if best is None or jam.threshold is None:
            return None
        assert best.threshold is not None
        return best.threshold < jam.threshold

    # -- rendering -----------------------------------------------------------

    def frontier_table(self, protocol: str) -> str:
        """Families ordered by breaking point, sharpest attacker first."""
        cells = [p for p in self.points if p.protocol == protocol]
        cells.sort(
            key=lambda p: (
                p.threshold if p.threshold is not None else float("inf")
            )
        )
        rows = []
        for p in cells:
            thr = "none in [0,1]" if p.threshold is None else f"{p.threshold:.3f}"
            bracket = f"[{p.bracket_lo:.3f}, {p.bracket_hi:.3f}]"
            note = ""
            if p.family == "jam":
                dev = self.theorem14_deviation(protocol)
                if dev is not None:
                    note = f"Thm 14 boundary: p_jam=1/2 {dev:+.3f}"
            elif p.reactive:
                note = "reactive"
            rows.append(
                [p.family, thr, bracket, len(p.estimates), note]
            )
        return format_table(
            ["family", "breaking point", "bracket", "probes", ""],
            rows,
            title=(
                f"degradation frontier: {protocol} "
                f"(success target {self.target:g})"
            ),
        )

    def render(self) -> str:
        parts = [self.frontier_table(name) for name in self.protocols()]
        for name in self.protocols():
            lower = self.reactive_strictly_lower(name)
            if lower is not None:
                best = self.sharpest_reactive(name)
                jam = self.cell(name, "jam")
                if lower and best is not None:
                    parts.append(
                        f"{name}: reactive '{best.family}' breaks at "
                        f"{best.threshold:.3f} < oblivious jam at "
                        f"{jam.threshold:.3f} — smarter placement beats "
                        "raw budget"
                    )
        return "\n\n".join(parts)

    def as_records(self) -> List[Dict[str, object]]:
        return [p.as_record() for p in self.points]

    def to_jsonl(self, path) -> int:
        """Write one JSON line per cell; returns the line count."""
        records = self.as_records()
        with open(path, "w", encoding="utf-8") as f:
            for rec in records:
                f.write(json.dumps(rec) + "\n")
        return len(records)


def run_certification(
    build: InstanceBuilder,
    protocols: Mapping[str, FactoryBuilder],
    *,
    families: Optional[Sequence[str]] = None,
    seeds: int = 30,
    seed_base: int = 0,
    target: float = 0.9,
    tol: float = 0.02,
    check_invariants: bool = False,
    watchdog: Optional[Watchdog] = Watchdog(stall_factor=4.0),
    processes: int = 1,
    cache: Union[None, bool, str, ResultCache] = None,
    retries: int = 0,
    progress: Optional[Callable[[str, str, float], None]] = None,
    telemetry: Optional["Telemetry"] = None,
    fastpath: str = "off",
    ledger: Union[None, bool, str, "RunLedger"] = None,
) -> CertificationReport:
    """Bisect the breaking point of every ``protocol x family`` cell.

    Parameters
    ----------
    build, protocols:
        Workload builder and named protocol builders, exactly as in
        :func:`repro.experiments.robustness.run_robustness`.
    families:
        Adversary family names (default: all of
        :data:`ADVERSARY_FAMILIES`).
    seeds, seed_base:
        Monte-Carlo replication per probed severity.
    target, tol:
        Success rate defining "broken", and the bisection bracket width.
    watchdog:
        Applied to every run (default: a stall detector at 4x the
        feasibility bound) so a pathological adversarial cell cancels
        gracefully instead of hanging the sweep; pass ``None`` to
        disable.  Deterministic trips are cache-safe (see
        :func:`repro.experiments.parallel.run_seeds`).
    progress:
        Called as ``progress(protocol, family, severity)`` before each
        probe.
    fastpath:
        Kernel routing knob passed to every probe's :func:`run_seeds`
        call.  With ``"auto"``, probes in the ``jam`` family (a
        :class:`~repro.channel.jamming.StochasticJammer`) run on the
        vectorized kernels when the instance qualifies; the reactive
        families always fall back to the engine (kernels do not model
        feedback-driven adversaries).

    Remaining knobs pass through to :func:`run_seeds` per probe.  Each
    probed severity is one ``run_seeds`` call, so with a warm cache a
    re-certification performs zero simulations.

    ``ledger`` (see :func:`repro.obs.ledger.as_ledger`) appends one
    record for the whole certification — cell and probe counts, the
    configuration digest, wall time; the inner ``run_seeds`` probes do
    not record their own entries.
    """
    if ledger is not None:
        from repro.cache import stable_digest
        from repro.obs.ledger import as_ledger
        from repro.sim.engine import ENGINE_VERSION

        led = as_ledger(ledger)
        if led is not None:
            config = {
                "kind": "certify",
                "protocols": sorted(protocols),
                "families": (
                    sorted(families)
                    if families is not None
                    else sorted(ADVERSARY_FAMILIES)
                ),
                "seeds": seeds,
                "seed_base": seed_base,
                "target": target,
                "tol": tol,
                "fastpath": fastpath,
            }
            with led.track("certify", config=config) as trk:
                trk.engine_version = ENGINE_VERSION
                try:
                    trk.config_digest = stable_digest(
                        (
                            "certify",
                            build,
                            tuple(sorted(protocols)),
                            tuple(config["families"]),
                            seeds,
                            seed_base,
                            target,
                            tol,
                            fastpath,
                        )
                    )
                except Exception:
                    pass
                report = run_certification(
                    build,
                    protocols,
                    families=families,
                    seeds=seeds,
                    seed_base=seed_base,
                    target=target,
                    tol=tol,
                    check_invariants=check_invariants,
                    watchdog=watchdog,
                    processes=processes,
                    cache=cache,
                    retries=retries,
                    progress=progress,
                    telemetry=telemetry,
                    fastpath=fastpath,
                    ledger=None,
                )
                trk.counters = {
                    "cells": len(report.points),
                    "probes": sum(
                        len(p.estimates) for p in report.points
                    ),
                    "broken_cells": sum(
                        1
                        for p in report.points
                        if p.threshold == p.threshold  # non-NaN
                    ),
                }
            return report

    chosen = (
        list(families) if families is not None else list(ADVERSARY_FAMILIES)
    )
    for f in chosen:
        if f not in ADVERSARY_FAMILIES:
            raise InvalidParameterError(
                f"unknown adversary family {f!r} "
                f"(choices: {sorted(ADVERSARY_FAMILIES)})"
            )
    seed_list = [seed_base + s for s in range(seeds)]
    # Bootstrap resampling is analysis-side randomness: seeded from
    # seed_base so reports reproduce, offset so it never collides with
    # simulation streams.
    boot_rng = np.random.default_rng(seed_base + 0xCE47)
    points: List[BreakingPoint] = []
    for name, protocol in protocols.items():
        for family in chosen:
            make = ADVERSARY_FAMILIES[family]
            estimates: Dict[float, ProportionEstimate] = {}

            def measure(severity: float) -> float:
                if progress is not None:
                    progress(name, family, severity)
                if severity <= 0:
                    jam = None
                else:
                    # Probing past p_jam = 1/2 is the harness's whole
                    # point; the per-probe guarantee warning is noise.
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", PaperGuaranteeWarning)
                        jam = make(severity)
                digests = run_seeds(
                    build,
                    protocol,
                    seeds=seed_list,
                    jammer=jam,
                    check_invariants=check_invariants,
                    watchdog=watchdog,
                    processes=processes,
                    cache=cache,
                    retries=retries,
                    telemetry=telemetry,
                    fastpath=fastpath,
                )
                est = bootstrap_proportion(
                    [(d.n_succeeded, d.n_jobs) for d in digests], boot_rng
                )
                estimates[float(severity)] = est
                return est.point

            res = bisect_breaking_point(
                measure, target=target, tol=tol
            )
            points.append(
                BreakingPoint(
                    protocol=name,
                    family=family,
                    target=target,
                    threshold=res.threshold,
                    bracket_lo=res.bracket_lo,
                    bracket_hi=res.bracket_hi,
                    estimates=dict(estimates),
                )
            )
    return CertificationReport(points, target)
