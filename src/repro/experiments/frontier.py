"""The deadline-miss × energy frontier — the paper's headline comparison.

ROADMAP item 3's question: does deadline-aware machinery (UNIFORM /
ALIGNED / PUNCTUAL) actually beat modern backoff when messages expire?
The modern backoff literature (arXiv 2302.07751, 2408.11275) optimizes
*channel-access energy* — send attempts — while this paper optimizes
*deadline misses*; neither metric alone decides the comparison.  This
module runs every protocol under identical oblivious jamming budgets and
reports both, so each protocol lands as a point in the (miss-rate,
energy) plane per budget and the frontier is read off directly.

All protocols at one budget face the *same* jammer, built fresh per run
from the same severity, and run on the same instance and seed list —
differences are protocol differences, not workload luck.  Runs go
through :func:`repro.experiments.parallel.run_seeds`, inheriting
caching, multiprocessing, and retries.  Energy comes from the
:class:`~repro.experiments.parallel.SeedDigest` ``attempts_sum`` field,
which the engine path always tracks (the frontier forces the engine —
``fastpath`` is left off — because the statistical kernels do not model
per-attempt energy).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.tables import format_table
from repro.cache import ResultCache
from repro.channel.jamming import StochasticJammer
from repro.errors import InvalidParameterError
from repro.experiments.parallel import (
    FactoryBuilder,
    InstanceBuilder,
    aggregate,
    run_seeds,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry

__all__ = ["FrontierPoint", "FrontierReport", "run_frontier"]


@dataclass(frozen=True)
class FrontierPoint:
    """One protocol at one jamming budget: both headline metrics."""

    protocol: str
    budget: float  # oblivious stochastic jamming rate p_jam
    n_jobs: int  # jobs pooled across seeds
    n_missed: int  # jobs that failed to deliver by their deadline
    attempts: int  # total send attempts pooled across seeds

    @property
    def miss_rate(self) -> float:
        return self.n_missed / self.n_jobs if self.n_jobs else 0.0

    @property
    def mean_energy(self) -> float:
        """Send attempts per job."""
        return self.attempts / self.n_jobs if self.n_jobs else 0.0

    @property
    def energy_per_success(self) -> float:
        ok = self.n_jobs - self.n_missed
        return self.attempts / ok if ok else float("inf")

    def as_record(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "budget": self.budget,
            "n_jobs": self.n_jobs,
            "n_missed": self.n_missed,
            "attempts": self.attempts,
            "miss_rate": self.miss_rate,
            "mean_energy": self.mean_energy,
        }


@dataclass(frozen=True)
class FrontierReport:
    """All (protocol × budget) points plus rendering and lookups."""

    instance_summary: str
    seeds: int
    budgets: Tuple[float, ...]
    points: Tuple[FrontierPoint, ...]

    def point(self, protocol: str, budget: float) -> FrontierPoint:
        for p in self.points:
            if p.protocol == protocol and p.budget == budget:
                return p
        raise KeyError(f"no frontier point for {protocol!r} at {budget!r}")

    def protocols(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for p in self.points:
            if p.protocol not in seen:
                seen.append(p.protocol)
        return tuple(seen)

    def dominators(self, budget: float) -> Tuple[str, ...]:
        """Protocols on the Pareto frontier at one budget.

        A protocol is dominated when another has both a strictly lower
        miss rate and strictly lower mean energy.
        """
        pts = [p for p in self.points if p.budget == budget]
        out = []
        for a in pts:
            if not any(
                b.miss_rate < a.miss_rate and b.mean_energy < a.mean_energy
                for b in pts
            ):
                out.append(a.protocol)
        return tuple(out)

    def render(self) -> str:
        blocks = []
        for budget in self.budgets:
            rows = []
            pts = sorted(
                (p for p in self.points if p.budget == budget),
                key=lambda p: (p.miss_rate, p.mean_energy),
            )
            front = set(self.dominators(budget))
            for p in pts:
                rows.append(
                    [
                        p.protocol,
                        f"{p.miss_rate:.4f}",
                        f"{p.mean_energy:.2f}",
                        (
                            f"{p.energy_per_success:.2f}"
                            if p.n_missed < p.n_jobs
                            else "inf"
                        ),
                        "*" if p.protocol in front else "",
                    ]
                )
            blocks.append(
                format_table(
                    [
                        "protocol",
                        "miss rate",
                        "energy/job",
                        "energy/success",
                        "pareto",
                    ],
                    rows,
                    title=(
                        f"jam budget p={budget:g} on {self.instance_summary} "
                        f"({self.seeds} seeds)"
                    ),
                )
            )
        return "\n\n".join(blocks)

    def to_jsonl(self, path: str) -> int:
        """Write one JSON record per point; returns the record count."""
        with open(path, "w", encoding="utf-8") as fh:
            for p in self.points:
                fh.write(json.dumps(p.as_record(), sort_keys=True) + "\n")
        return len(self.points)


def run_frontier(
    build: InstanceBuilder,
    protocols: Mapping[str, FactoryBuilder],
    *,
    budgets: Sequence[float] = (0.0, 0.25),
    seeds: int = 16,
    processes: int = 1,
    cache: Union[None, bool, str, ResultCache] = None,
    retries: int = 0,
    telemetry: Optional["Telemetry"] = None,
) -> FrontierReport:
    """Run every protocol under every jamming budget; pool across seeds.

    Parameters
    ----------
    build:
        Zero-argument instance builder (picklable for ``processes>1``).
    protocols:
        Name → factory builder, as in
        :func:`~repro.experiments.certify.run_certification`.
    budgets:
        Oblivious stochastic jamming rates (``0`` means no jammer); every
        protocol faces each budget with identical seeds, so the
        comparison is paired.
    seeds:
        Seeds per (protocol, budget) cell.
    """
    if not protocols:
        raise InvalidParameterError("need at least one protocol")
    budgets = tuple(float(b) for b in budgets)
    for b in budgets:
        if not 0.0 <= b < 1.0:
            raise InvalidParameterError(
                f"jam budget must be in [0, 1), got {b}"
            )
    instance = build()
    points: List[FrontierPoint] = []
    for budget in budgets:
        jammer = StochasticJammer(budget) if budget > 0.0 else None
        for name, factory in protocols.items():
            digests = run_seeds(
                build,
                factory,
                range(seeds),
                jammer=jammer,
                processes=processes,
                cache=cache,
                retries=retries,
                telemetry=telemetry,
            )
            agg = aggregate(digests)
            points.append(
                FrontierPoint(
                    protocol=name,
                    budget=budget,
                    n_jobs=int(agg["jobs"]),
                    n_missed=int(agg["jobs"]) - int(agg["succeeded"]),
                    attempts=int(agg["attempts"]),
                )
            )
    return FrontierReport(
        instance_summary=instance.summary(),
        seeds=seeds,
        budgets=budgets,
        points=tuple(points),
    )
