"""A small grid-sweep framework for simulation experiments.

The benchmark harness and the examples all share the same experimental
shape: build a workload from parameters, run a protocol over several
seeds, aggregate per-job outcomes, report a table row per grid point.
:class:`Sweep` packages that shape once, with Wilson confidence
intervals on every success rate and deterministic seed derivation, so
one-off experiment scripts stay ~ten lines.

Seed replication routes through
:func:`repro.experiments.parallel.run_seeds`, so every sweep picks up
the result cache (``cache=``) and multi-process execution
(``processes=``) for free.  Multi-process sweeps require picklable
``build``/``protocol`` callables (module-level functions, partials of
them, or the adapter dataclasses in :mod:`repro.experiments.parallel`);
the default inline path accepts closures as before.

Example
-------
>>> from repro.experiments import Sweep
>>> from repro.workloads import batch_instance
>>> from repro.core.uniform import uniform_factory
>>> sweep = Sweep(
...     build=lambda n: batch_instance(n, window=64 * n),
...     protocol=lambda inst: uniform_factory(),
...     seeds=5,
... )
>>> points = sweep.run({"n": [4, 16]})
>>> [p.params["n"] for p in points]
[4, 16]
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.analysis.stats import ProportionEstimate, estimate_proportion
from repro.analysis.tables import format_table
from repro.cache import ResultCache
from repro.channel.jamming import Jammer
from repro.experiments.parallel import BoundBuilder, run_seeds
from repro.sim.engine import ProtocolFactory
from repro.sim.instance import Instance

__all__ = ["SweepPoint", "Sweep"]

#: Builds an instance from grid keyword parameters.
InstanceBuilder = Callable[..., Instance]

#: Builds the protocol factory for an instance (lets EDF-style protocols
#: precompute from the workload).
FactoryBuilder = Callable[[Instance], ProtocolFactory]


@dataclass
class SweepPoint:
    """Aggregated outcomes of one grid point across seeds."""

    params: Dict[str, Any]
    n_jobs: int
    n_succeeded: int
    n_runs: int
    success: ProportionEstimate
    by_window: Dict[int, ProportionEstimate]
    mean_latency: float
    wall_seconds: float

    def row(self, keys: Sequence[str]) -> List[Any]:
        """A table row: grid values then the headline numbers."""
        return [self.params[k] for k in keys] + [
            self.success.point,
            self.success.low,
            self.success.high,
            self.mean_latency,
        ]


class Sweep:
    """Run a protocol over a parameter grid with seed replication.

    Parameters
    ----------
    build:
        ``build(**params) -> Instance`` for each grid point.
    protocol:
        ``protocol(instance) -> ProtocolFactory``.
    seeds:
        Number of seeded replications per grid point (seeds ``0..k-1``,
        offset by ``seed_base``).
    jammer:
        Optional channel adversary applied to every run.
    seed_base:
        Offset added to every seed (vary to get fresh randomness).
    processes:
        Worker processes per grid point (1 = inline; >1 requires
        picklable ``build``/``protocol``).
    cache:
        Result-cache knob (see :func:`repro.cache.as_cache`); cached
        seeds skip simulation entirely.
    """

    def __init__(
        self,
        build: InstanceBuilder,
        protocol: FactoryBuilder,
        *,
        seeds: int = 3,
        jammer: Optional[Jammer] = None,
        seed_base: int = 0,
        processes: int = 1,
        cache: Union[None, bool, str, ResultCache] = None,
    ) -> None:
        if seeds < 1:
            raise ValueError("seeds must be >= 1")
        self.build = build
        self.protocol = protocol
        self.seeds = seeds
        self.jammer = jammer
        self.seed_base = seed_base
        self.processes = processes
        self.cache = cache

    def run_point(self, **params: Any) -> SweepPoint:
        """Run one grid point; aggregates across seeds."""
        t0 = time.perf_counter()
        instance = self.build(**params)
        point_build = BoundBuilder(
            self.build, tuple(sorted(params.items(), key=lambda kv: kv[0]))
        )
        digests = run_seeds(
            point_build,
            self.protocol,
            seeds=[self.seed_base + s for s in range(self.seeds)],
            jammer=self.jammer,
            processes=self.processes,
            cache=self.cache,
        )
        ok = sum(d.n_succeeded for d in digests)
        total = sum(d.n_jobs for d in digests)
        window_ok: Dict[int, int] = {}
        window_tot: Dict[int, int] = {}
        latency_sum = 0
        for d in digests:
            for w, sw, tw in d.by_window:
                window_ok[w] = window_ok.get(w, 0) + sw
                window_tot[w] = window_tot.get(w, 0) + tw
            latency_sum += d.latency_sum
        mean_latency = latency_sum / ok if ok else float("nan")
        return SweepPoint(
            params=dict(params),
            n_jobs=len(instance),
            n_succeeded=ok,
            n_runs=self.seeds,
            success=estimate_proportion(ok, max(total, 1)),
            by_window={
                w: estimate_proportion(window_ok[w], window_tot[w])
                for w in sorted(window_tot)
            },
            mean_latency=mean_latency,
            wall_seconds=time.perf_counter() - t0,
        )

    def run(self, grid: Mapping[str, Iterable[Any]]) -> List[SweepPoint]:
        """Run the full cartesian grid, in deterministic order."""
        keys = list(grid)
        points = []
        for combo in itertools.product(*(list(grid[k]) for k in keys)):
            points.append(self.run_point(**dict(zip(keys, combo))))
        return points

    @staticmethod
    def table(points: Sequence[SweepPoint], title: str = "") -> str:
        """A plain-text table over the sweep results."""
        if not points:
            return title
        keys = list(points[0].params)
        headers = keys + ["success", "ci low", "ci high", "mean latency"]
        return format_table(
            headers, [p.row(keys) for p in points], title=title or None
        )
