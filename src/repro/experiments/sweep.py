"""A small grid-sweep framework for simulation experiments.

The benchmark harness and the examples all share the same experimental
shape: build a workload from parameters, run a protocol over several
seeds, aggregate per-job outcomes, report a table row per grid point.
:class:`Sweep` packages that shape once, with Wilson confidence
intervals on every success rate and deterministic seed derivation, so
one-off experiment scripts stay ~ten lines.

Seed replication routes through
:func:`repro.experiments.parallel.run_seeds`, so every sweep picks up
the result cache (``cache=``) and multi-process execution
(``processes=``) for free.  Multi-process sweeps require picklable
``build``/``protocol`` callables (module-level functions, partials of
them, or the adapter dataclasses in :mod:`repro.experiments.parallel`);
the default inline path accepts closures as before.

Example
-------
>>> from repro.experiments import Sweep
>>> from repro.workloads import batch_instance
>>> from repro.core.uniform import uniform_factory
>>> sweep = Sweep(
...     build=lambda n: batch_instance(n, window=64 * n),
...     protocol=lambda inst: uniform_factory(),
...     seeds=5,
... )
>>> points = sweep.run({"n": [4, 16]})
>>> [p.params["n"] for p in points]
[4, 16]
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.analysis.stats import ProportionEstimate, estimate_proportion
from repro.analysis.tables import format_table
from repro.cache import ResultCache, stable_digest
from repro.channel.jamming import Jammer
from repro.experiments.parallel import BoundBuilder, run_seeds
from repro.sim.engine import ProtocolFactory
from repro.sim.instance import Instance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan
    from repro.obs.ledger import RunLedger
    from repro.obs.telemetry import Telemetry

__all__ = ["SweepPoint", "Sweep"]

#: Builds an instance from grid keyword parameters.
InstanceBuilder = Callable[..., Instance]

#: Builds the protocol factory for an instance (lets EDF-style protocols
#: precompute from the workload).
FactoryBuilder = Callable[[Instance], ProtocolFactory]


@dataclass
class SweepPoint:
    """Aggregated outcomes of one grid point across seeds."""

    params: Dict[str, Any]
    n_jobs: int
    n_succeeded: int
    n_runs: int
    success: ProportionEstimate
    by_window: Dict[int, ProportionEstimate]
    mean_latency: float
    wall_seconds: float

    def row(self, keys: Sequence[str]) -> List[Any]:
        """A table row: grid values then the headline numbers."""
        return [self.params[k] for k in keys] + [
            self.success.point,
            self.success.low,
            self.success.high,
            self.mean_latency,
        ]

    # -- checkpoint serialization (JSON round trip) ------------------------

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable dict; inverse of :meth:`from_json`."""
        est = lambda e: [e.successes, e.trials, e.low, e.high]
        return {
            "params": self.params,
            "n_jobs": self.n_jobs,
            "n_succeeded": self.n_succeeded,
            "n_runs": self.n_runs,
            "success": est(self.success),
            "by_window": {str(w): est(e) for w, e in self.by_window.items()},
            "mean_latency": self.mean_latency,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SweepPoint":
        est = lambda v: ProportionEstimate(
            int(v[0]), int(v[1]), float(v[2]), float(v[3])
        )
        return cls(
            params=dict(data["params"]),
            n_jobs=int(data["n_jobs"]),
            n_succeeded=int(data["n_succeeded"]),
            n_runs=int(data["n_runs"]),
            success=est(data["success"]),
            by_window={int(w): est(v) for w, v in data["by_window"].items()},
            mean_latency=float(data["mean_latency"]),
            wall_seconds=float(data["wall_seconds"]),
        )


class Sweep:
    """Run a protocol over a parameter grid with seed replication.

    Parameters
    ----------
    build:
        ``build(**params) -> Instance`` for each grid point.
    protocol:
        ``protocol(instance) -> ProtocolFactory``.
    seeds:
        Number of seeded replications per grid point (seeds ``0..k-1``,
        offset by ``seed_base``).
    jammer:
        Optional channel adversary applied to every run.
    seed_base:
        Offset added to every seed (vary to get fresh randomness).
    processes:
        Worker processes per grid point (1 = inline; >1 requires
        picklable ``build``/``protocol``).
    cache:
        Result-cache knob (see :func:`repro.cache.as_cache`); cached
        seeds skip simulation entirely.
    faults:
        Optional :class:`repro.faults.FaultPlan` applied to every run
        (folded into cache keys and checkpoint keys).
    check_invariants:
        Run every simulation under the runtime invariant checker.
    retries:
        Per-point transient-failure retries (see
        :func:`repro.experiments.parallel.run_seeds`).
    checkpoint:
        Path to a JSONL checkpoint file.  Every completed grid point is
        appended as one line, keyed by a content digest of the sweep
        configuration plus the point's parameters; a re-run of the same
        sweep skips points already on disk (a truncated final line from
        a killed run is ignored and recomputed).  Combine with
        ``cache=`` so even the recomputed point replays its finished
        seeds from cache.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` collector.
        Each grid point is timed as a ``sweep.point`` span, and the
        point's seed replication passes the collector down to
        :func:`~repro.experiments.parallel.run_seeds` (engine-level
        telemetry on the inline path, scheduling-level always).
    fastpath:
        Kernel routing knob passed to every point's
        :func:`~repro.experiments.parallel.run_seeds` call (``"off"``,
        ``"auto"``, or ``"on"``; see there).  A non-``"off"`` value also
        joins the checkpoint point keys, since kernel results are not
        bit-equal to engine results for ALIGNED/PUNCTUAL.
    progress:
        Optional ``progress(done_points, total_points)`` callback,
        invoked after every grid point (checkpoint hits included) —
        drop a :class:`repro.obs.progress.ProgressTracker` in for live
        rate/ETA heartbeats.  Purely observational.
    ledger:
        Optional run-ledger knob (see
        :func:`repro.obs.ledger.as_ledger`).  One record is appended
        per :meth:`run` call summarizing the whole grid; the inner
        ``run_seeds`` calls do *not* record their own entries (one
        invocation, one line).  ``None`` costs one ``is None`` branch.
    """

    def __init__(
        self,
        build: InstanceBuilder,
        protocol: FactoryBuilder,
        *,
        seeds: int = 3,
        jammer: Optional[Jammer] = None,
        seed_base: int = 0,
        processes: int = 1,
        cache: Union[None, bool, str, ResultCache] = None,
        faults: Optional["FaultPlan"] = None,
        check_invariants: bool = False,
        retries: int = 0,
        checkpoint: Union[None, str, Path] = None,
        telemetry: Optional["Telemetry"] = None,
        fastpath: str = "off",
        progress: Optional[Callable[[int, int], None]] = None,
        ledger: Union[None, bool, str, Path, "RunLedger"] = None,
    ) -> None:
        if seeds < 1:
            raise ValueError("seeds must be >= 1")
        self.build = build
        self.protocol = protocol
        self.seeds = seeds
        self.jammer = jammer
        self.seed_base = seed_base
        self.processes = processes
        self.cache = cache
        self.faults = faults
        self.check_invariants = check_invariants
        self.retries = retries
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self.telemetry = telemetry
        self.fastpath = fastpath
        self.progress = progress
        self.ledger = ledger

    def run_point(self, **params: Any) -> SweepPoint:
        """Run one grid point; aggregates across seeds."""
        t0 = time.perf_counter()
        instance = self.build(**params)
        point_build = BoundBuilder(
            self.build, tuple(sorted(params.items(), key=lambda kv: kv[0]))
        )
        digests = run_seeds(
            point_build,
            self.protocol,
            seeds=[self.seed_base + s for s in range(self.seeds)],
            jammer=self.jammer,
            faults=self.faults,
            check_invariants=self.check_invariants,
            processes=self.processes,
            cache=self.cache,
            retries=self.retries,
            telemetry=self.telemetry,
            fastpath=self.fastpath,
        )
        if self.telemetry is not None:
            self.telemetry.add_span(
                "sweep.point", time.perf_counter() - t0
            )
        ok = sum(d.n_succeeded for d in digests)
        total = sum(d.n_jobs for d in digests)
        window_ok: Dict[int, int] = {}
        window_tot: Dict[int, int] = {}
        latency_sum = 0
        for d in digests:
            for w, sw, tw in d.by_window:
                window_ok[w] = window_ok.get(w, 0) + sw
                window_tot[w] = window_tot.get(w, 0) + tw
            latency_sum += d.latency_sum
        mean_latency = latency_sum / ok if ok else float("nan")
        return SweepPoint(
            params=dict(params),
            n_jobs=len(instance),
            n_succeeded=ok,
            n_runs=self.seeds,
            success=estimate_proportion(ok, max(total, 1)),
            by_window={
                w: estimate_proportion(window_ok[w], window_tot[w])
                for w in sorted(window_tot)
            },
            mean_latency=mean_latency,
            wall_seconds=time.perf_counter() - t0,
        )

    def _point_key(self, params: Mapping[str, Any]) -> str:
        """Checkpoint key: sweep configuration + grid point content."""
        for obj in (self.jammer, self.faults):
            reset = getattr(obj, "reset", None)
            if callable(reset):
                reset()  # canonicalize stateful jammers before digesting
        key: tuple = (
            "sweep-point",
            self.build,
            self.protocol,
            self.seeds,
            self.seed_base,
            self.jammer,
            self.faults,
            tuple(sorted(params.items(), key=lambda kv: kv[0])),
        )
        # ALIGNED/PUNCTUAL kernel digests are statistical, not
        # bit-equal, so a fastpath sweep may not resume an engine
        # checkpoint (or vice versa).  Appended only when enabled so
        # every existing engine checkpoint keeps its keys.
        if self.fastpath != "off":
            key = key + ("fastpath", self.fastpath)
        return stable_digest(key)

    def _load_checkpoint(self) -> Dict[str, SweepPoint]:
        """Completed points from the checkpoint file (corrupt tail skipped)."""
        done: Dict[str, SweepPoint] = {}
        if self.checkpoint is None or not self.checkpoint.exists():
            return done
        for line in self.checkpoint.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                done[record["key"]] = SweepPoint.from_json(record["point"])
            except Exception:
                # A killed run can leave a truncated final line; the
                # point is simply recomputed (its cached seeds still hit).
                continue
        return done

    def _append_checkpoint(self, key: str, point: SweepPoint) -> None:
        assert self.checkpoint is not None
        self.checkpoint.parent.mkdir(parents=True, exist_ok=True)
        # A killed run can leave a truncated final line with no newline;
        # appending straight after it would corrupt this record too.
        needs_newline = (
            self.checkpoint.exists()
            and self.checkpoint.stat().st_size > 0
            and not self.checkpoint.read_bytes().endswith(b"\n")
        )
        with open(self.checkpoint, "a") as f:
            if needs_newline:
                f.write("\n")
            f.write(json.dumps({"key": key, "point": point.to_json()}) + "\n")
            f.flush()

    def run(self, grid: Mapping[str, Iterable[Any]]) -> List[SweepPoint]:
        """Run the full cartesian grid, in deterministic order.

        With a ``checkpoint=`` configured, grid points already recorded
        on disk are returned without simulating, and each freshly
        computed point is appended (and flushed) as soon as it
        completes — killing and restarting a sweep loses at most the
        point in flight.
        """
        if self.ledger is None:
            return self._run_grid(grid)[0]
        from repro.obs.ledger import as_ledger
        from repro.sim.engine import ENGINE_VERSION

        led = as_ledger(self.ledger)
        if led is None:
            return self._run_grid(grid)[0]
        grid = {k: list(v) for k, v in grid.items()}
        config = {
            "kind": "sweep",
            "grid": {k: [repr(x) for x in v] for k, v in grid.items()},
            "seeds": self.seeds,
            "seed_base": self.seed_base,
            "processes": self.processes,
            "fastpath": self.fastpath,
            "jammer": repr(self.jammer) if self.jammer is not None else None,
            "faults": repr(self.faults) if self.faults is not None else None,
        }
        with led.track("sweep", config=config) as trk:
            trk.engine_version = ENGINE_VERSION
            try:
                trk.config_digest = stable_digest(
                    (
                        "sweep",
                        self.build,
                        self.protocol,
                        self.seeds,
                        self.seed_base,
                        self.jammer,
                        self.faults,
                        self.fastpath,
                        tuple(sorted((k, tuple(v)) for k, v in grid.items())),
                    )
                )
            except Exception:
                pass  # unhashable grid values: record without a digest
            points, resumed = self._run_grid(grid)
            trk.counters = {
                "points": len(points),
                "resumed_points": resumed,
                "runs": sum(p.n_runs for p in points),
                "jobs": sum(p.n_jobs * p.n_runs for p in points),
                "succeeded": sum(p.n_succeeded for p in points),
            }
            if self.checkpoint is not None:
                trk.artifact(self.checkpoint)
        return points

    def _run_grid(
        self, grid: Mapping[str, Iterable[Any]]
    ) -> tuple:
        """The grid loop; returns ``(points, checkpoint_resumed_count)``."""
        keys = list(grid)
        values = [list(grid[k]) for k in keys]
        total = 1
        for v in values:
            total *= len(v)
        done = self._load_checkpoint() if self.checkpoint is not None else {}
        points: List[SweepPoint] = []
        resumed = 0
        for combo in itertools.product(*values):
            params = dict(zip(keys, combo))
            if self.checkpoint is not None:
                pkey = self._point_key(params)
                hit = done.get(pkey)
                if hit is not None:
                    points.append(hit)
                    resumed += 1
                    if self.progress is not None:
                        self.progress(len(points), total)
                    continue
                point = self.run_point(**params)
                self._append_checkpoint(pkey, point)
            else:
                point = self.run_point(**params)
            points.append(point)
            if self.progress is not None:
                self.progress(len(points), total)
        return points, resumed

    @staticmethod
    def table(points: Sequence[SweepPoint], title: str = "") -> str:
        """A plain-text table over the sweep results."""
        if not points:
            return title
        keys = list(points[0].params)
        headers = keys + ["success", "ci low", "ci high", "mean latency"]
        return format_table(
            headers, [p.row(keys) for p in points], title=title or None
        )
