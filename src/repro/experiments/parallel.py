"""Parallel seed replication across processes.

Monte-Carlo experiments here are embarrassingly parallel across seeds:
every run is deterministic in ``(instance, seed)`` and runs share
nothing.  :func:`run_seeds` fans the seed range out over a process pool
and returns per-seed digests; aggregation stays in the parent.

Design notes (per the scientific-Python guidance of profiling first and
parallelizing the outer loop):

* work is shipped as *parameters*, not closures — the worker rebuilds
  the instance and protocol from a :class:`ParallelJob` spec, keeping
  everything picklable and the per-task payload tiny;
* results come back as small :class:`SeedDigest` records (success
  counts, per-window tallies), not full `SimulationResult` objects, so
  IPC stays negligible compared to simulation time;
* `processes=1` (the default) runs inline with zero multiprocessing
  overhead — identical results, so tests can compare the two paths.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.channel.jamming import Jammer
from repro.sim.engine import ProtocolFactory, simulate
from repro.sim.instance import Instance

__all__ = ["ParallelJob", "SeedDigest", "run_seeds", "aggregate"]

#: Rebuilds the workload; must be a module-level (picklable) callable.
InstanceBuilder = Callable[[], Instance]

#: Builds the protocol factory for an instance; must be picklable.
FactoryBuilder = Callable[[Instance], ProtocolFactory]


@dataclass(frozen=True)
class ParallelJob:
    """Everything a worker needs to run one seed (picklable)."""

    build: InstanceBuilder
    protocol: FactoryBuilder
    seed: int
    jammer: Optional[Jammer] = None


@dataclass(frozen=True)
class SeedDigest:
    """The small result shipped back from a worker."""

    seed: int
    n_jobs: int
    n_succeeded: int
    by_window: Tuple[Tuple[int, int, int], ...]  # (window, ok, total)
    slots_simulated: int

    @property
    def success_rate(self) -> float:
        return self.n_succeeded / self.n_jobs if self.n_jobs else 1.0


def _run_one(job: ParallelJob) -> SeedDigest:
    instance = job.build()
    result = simulate(
        instance, job.protocol(instance), jammer=job.jammer, seed=job.seed
    )
    return SeedDigest(
        seed=job.seed,
        n_jobs=len(result),
        n_succeeded=result.n_succeeded,
        by_window=tuple(
            (w, ok, tot) for w, (ok, tot) in result.success_by_window().items()
        ),
        slots_simulated=result.slots_simulated,
    )


def run_seeds(
    build: InstanceBuilder,
    protocol: FactoryBuilder,
    seeds: Sequence[int],
    *,
    jammer: Optional[Jammer] = None,
    processes: int = 1,
) -> List[SeedDigest]:
    """Run every seed, optionally across a process pool.

    Results are returned in the order of ``seeds`` regardless of worker
    scheduling, and are bit-identical to the inline path (each worker
    derives its randomness from the seed exactly as ``simulate`` does).
    """
    jobs = [ParallelJob(build, protocol, s, jammer) for s in seeds]
    if processes <= 1:
        return [_run_one(j) for j in jobs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(_run_one, jobs))


def aggregate(digests: Sequence[SeedDigest]) -> Dict[str, object]:
    """Combine per-seed digests into one summary dictionary.

    Keys: ``runs``, ``jobs``, ``succeeded``, ``success_rate``,
    ``by_window`` (``{window: (ok, total)}``), ``slots``.
    """
    jobs = sum(d.n_jobs for d in digests)
    ok = sum(d.n_succeeded for d in digests)
    by_window: Dict[int, List[int]] = {}
    for d in digests:
        for w, s, t in d.by_window:
            acc = by_window.setdefault(w, [0, 0])
            acc[0] += s
            acc[1] += t
    return {
        "runs": len(digests),
        "jobs": jobs,
        "succeeded": ok,
        "success_rate": ok / jobs if jobs else 1.0,
        "by_window": {w: (s, t) for w, (s, t) in sorted(by_window.items())},
        "slots": sum(d.slots_simulated for d in digests),
    }
