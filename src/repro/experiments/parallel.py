"""Parallel seed replication across processes, with result caching.

Monte-Carlo experiments here are embarrassingly parallel across seeds:
every run is deterministic in ``(instance, seed)`` and runs share
nothing.  :func:`run_seeds` fans the seed range out over a process pool
and returns per-seed digests; aggregation stays in the parent.

Design notes (per the scientific-Python guidance of profiling first and
parallelizing the outer loop):

* work is shipped as *parameters*, not closures — the worker rebuilds
  the instance and protocol from a :class:`ParallelJob` spec, keeping
  everything picklable and the per-task payload tiny;
* results come back as small :class:`SeedDigest` records (success
  counts, per-window tallies, latency sums), not full
  ``SimulationResult`` objects, so IPC stays negligible compared to
  simulation time;
* tasks are submitted in *chunks* (an explicit ``chunksize`` computed
  from the seed count) so the pool does not pay one IPC round-trip per
  seed, and results stream back in order as chunks complete — an
  optional ``progress`` callback observes every completion;
* worker exceptions are captured with the failing seed attached and
  re-raised in the parent as :class:`SeedExecutionError`, instead of a
  bare traceback that has forgotten which task died;
* with a ``cache=``, each seed's digest is looked up by content address
  first and only uncached seeds are shipped to workers — a warm re-run
  performs zero ``simulate`` calls;
* `processes=1` (the default) runs inline with zero multiprocessing
  overhead — identical results, so tests can compare the two paths.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cache import ResultCache, as_cache, run_key, stable_digest
from repro.channel.jamming import Jammer
from repro.errors import ReproError
from repro.retrypolicy import BACKOFF_CAP_SECONDS, RetryPolicy
from repro.sim.engine import ProtocolFactory, simulate
from repro.sim.instance import Instance
from repro.sim.watchdog import REASON_WALL, Watchdog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan
    from repro.obs.ledger import RunLedger
    from repro.obs.telemetry import Telemetry

__all__ = [
    "BACKOFF_CAP_SECONDS",
    "BoundBuilder",
    "ConstantFactory",
    "ConstantInstance",
    "ParallelJob",
    "SeedDigest",
    "SeedExecutionError",
    "aggregate",
    "compute_chunksize",
    "run_seeds",
]

#: Rebuilds the workload; must be a module-level (picklable) callable.
InstanceBuilder = Callable[[], Instance]

#: Builds the protocol factory for an instance; must be picklable.
FactoryBuilder = Callable[[Instance], ProtocolFactory]

#: Called after each seed completes: ``progress(done, total)``.
ProgressCallback = Callable[[int, int], None]


class SeedExecutionError(ReproError):
    """A worker failed while simulating one seed.

    Carries the failing seed plus the worker-side traceback — and, when
    the caller can supply them, the protocol's name and the content
    digest of the instance that was being simulated — so a crash in a
    thousand-seed sweep points at the one reproducible input instead of
    an anonymous traceback.
    """

    def __init__(
        self,
        seed: int,
        worker_traceback: str,
        *,
        protocol: Optional[str] = None,
        instance_digest: Optional[str] = None,
    ) -> None:
        context = [f"seed {seed}"]
        if protocol is not None:
            context.append(f"protocol {protocol}")
        if instance_digest is not None:
            context.append(f"instance {instance_digest[:12]}")
        super().__init__(
            f"{', '.join(context)} failed in a worker:\n{worker_traceback}"
        )
        self.seed = seed
        self.worker_traceback = worker_traceback
        self.protocol = protocol
        self.instance_digest = instance_digest


def _protocol_label(protocol: FactoryBuilder) -> str:
    """A short human-readable name for a protocol builder."""
    name = getattr(protocol, "__qualname__", None)
    if name:
        module = getattr(protocol, "__module__", "")
        return f"{module}.{name}" if module else name
    return repr(protocol)


@dataclass(frozen=True)
class ParallelJob:
    """Everything a worker needs to run one seed (picklable)."""

    build: InstanceBuilder
    protocol: FactoryBuilder
    seed: int
    jammer: Optional[Jammer] = None
    faults: Optional["FaultPlan"] = None
    check_invariants: bool = False
    watchdog: Optional[Watchdog] = None


@dataclass(frozen=True)
class SeedDigest:
    """The small result shipped back from a worker.

    ``watchdog_reason`` is ``None`` for a run that completed normally;
    otherwise it is the :class:`~repro.sim.watchdog.WatchdogTrip` reason
    and the digest's counts are *partial* (live jobs at the cut counted
    as failures).  Wall-clock trips are nondeterministic, so their
    digests are never written to the result cache.
    """

    seed: int
    n_jobs: int
    n_succeeded: int
    by_window: Tuple[Tuple[int, int, int], ...]  # (window, ok, total)
    slots_simulated: int
    latency_sum: int = 0  # summed latencies of successful jobs
    attempts_sum: int = -1  # total send attempts (energy); -1 = not tracked
    watchdog_reason: Optional[str] = None

    @property
    def cacheable(self) -> bool:
        """Whether this digest reproduces for equal inputs (see above)."""
        return self.watchdog_reason != REASON_WALL

    @property
    def success_rate(self) -> float:
        return self.n_succeeded / self.n_jobs if self.n_jobs else 1.0

    @property
    def mean_latency(self) -> float:
        if not self.n_succeeded:
            return float("nan")
        return self.latency_sum / self.n_succeeded

    @property
    def mean_energy(self) -> float:
        """Mean send attempts per job; nan when the path did not track it."""
        if self.attempts_sum < 0 or not self.n_jobs:
            return float("nan")
        return self.attempts_sum / self.n_jobs


@dataclass(frozen=True)
class _WorkerFailure:
    """A captured worker exception (picklable, seed attached)."""

    seed: int
    formatted: str


# -- picklable builder adapters ---------------------------------------------
#
# run_seeds ships its builders to workers, so they must pickle.  These
# small frozen dataclasses adapt the common shapes — a grid point bound
# to a parametrised builder, a prebuilt instance, a prebuilt protocol
# factory — while staying picklable whenever their contents are.


@dataclass(frozen=True)
class BoundBuilder:
    """``build(**params)`` frozen into a zero-argument builder."""

    build: Callable[..., Instance]
    params: Tuple[Tuple[str, Any], ...]

    def __call__(self) -> Instance:
        return self.build(**dict(self.params))


@dataclass(frozen=True)
class ConstantInstance:
    """A zero-argument builder returning a prebuilt instance."""

    instance: Instance

    def __call__(self) -> Instance:
        return self.instance


@dataclass(frozen=True)
class ConstantFactory:
    """A factory builder returning a prebuilt protocol factory."""

    factory: ProtocolFactory

    def __call__(self, instance: Instance) -> ProtocolFactory:
        return self.factory


def compute_chunksize(n_tasks: int, processes: int) -> int:
    """A chunksize that balances IPC overhead against load balance.

    One task per IPC message is pure overhead for sub-second seeds; one
    giant chunk per worker straggles.  Aim for ~4 chunks per worker,
    capped so no chunk exceeds 64 tasks.

    Always returns at least 1 — ``pool.map(chunksize=0)`` raises deep in
    ``concurrent.futures`` — for every combination of ``n_tasks`` and
    ``processes``, including ``n_tasks == 0`` (nothing to submit, but a
    caller that computes the chunksize before noticing must not blow up)
    and ``processes > n_tasks`` (more workers than work: one task per
    chunk, surplus workers idle).
    """
    if n_tasks <= 0 or processes <= 1 or processes >= n_tasks:
        return 1
    return max(1, min(64, -(-n_tasks // (processes * 4))))


def _run_one(
    job: ParallelJob, telemetry: Optional["Telemetry"] = None
) -> SeedDigest:
    instance = job.build()
    result = simulate(
        instance,
        job.protocol(instance),
        jammer=job.jammer,
        seed=job.seed,
        faults=job.faults,
        invariants=job.check_invariants,
        telemetry=telemetry,
        watchdog=job.watchdog,
    )
    return SeedDigest(
        seed=job.seed,
        n_jobs=len(result),
        n_succeeded=result.n_succeeded,
        by_window=tuple(
            (w, ok, tot) for w, (ok, tot) in result.success_by_window().items()
        ),
        slots_simulated=result.slots_simulated,
        latency_sum=int(result.latencies().sum()),
        attempts_sum=result.total_energy,
        watchdog_reason=(
            result.watchdog.reason if result.watchdog is not None else None
        ),
    )


def _run_one_safe(
    job: ParallelJob, telemetry: Optional["Telemetry"] = None
) -> Union[SeedDigest, _WorkerFailure]:
    """Worker entry point: never raises, reports the failing seed."""
    try:
        # single-arg call when un-instrumented: _run_one is a documented
        # monkeypatch seam for failure-injection tests
        if telemetry is None:
            return _run_one(job)
        return _run_one(job, telemetry)
    except Exception:
        return _WorkerFailure(seed=job.seed, formatted=traceback.format_exc())


def _check(result: Union[SeedDigest, _WorkerFailure]) -> SeedDigest:
    if isinstance(result, _WorkerFailure):
        raise SeedExecutionError(result.seed, result.formatted)
    return result


def _instance_digest_of(job: ParallelJob) -> Optional[str]:
    """Content digest of the failing job's instance (best effort)."""
    try:
        return stable_digest(job.build())
    except Exception:
        return None  # the build itself may be what failed


def run_seeds(
    build: InstanceBuilder,
    protocol: FactoryBuilder,
    seeds: Sequence[int],
    *,
    jammer: Optional[Jammer] = None,
    faults: Optional["FaultPlan"] = None,
    check_invariants: bool = False,
    watchdog: Optional[Watchdog] = None,
    processes: int = 1,
    cache: Union[None, bool, str, ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    chunksize: Optional[int] = None,
    retries: int = 0,
    retry_backoff: float = 0.25,
    telemetry: Optional["Telemetry"] = None,
    fastpath: str = "off",
    ledger: Union[None, bool, str, "RunLedger"] = None,
) -> List[SeedDigest]:
    """Run every seed, optionally across a process pool and a cache.

    Results are returned in the order of ``seeds`` regardless of worker
    scheduling or cache hits, and are bit-identical to the inline path
    (each worker derives its randomness from the seed exactly as
    ``simulate`` does).

    Parameters
    ----------
    jammer, faults:
        Optional channel adversary / :class:`repro.faults.FaultPlan`
        applied to every run.  Both are folded into cache keys.
    check_invariants:
        Run every simulation under
        :class:`repro.sim.invariants.InvariantChecker`.  Does not change
        results (a violation raises instead), so it does not change
        cache keys.
    watchdog:
        Optional :class:`repro.sim.watchdog.Watchdog` applied to every
        run.  Cancelled runs come back as *partial* digests (their
        :attr:`SeedDigest.watchdog_reason` set) instead of hanging a
        worker.  A watchdog can change results, so it is folded into
        cache keys when set — and wall-clock trips, being
        nondeterministic, are never cached.
    processes:
        Worker count; ``1`` runs inline in this process.
    cache:
        Result cache knob (see :func:`repro.cache.as_cache`).  Cached
        seeds are served without simulating; fresh digests are stored.
    progress:
        ``progress(done, total)`` called after every completed seed
        (cache hits report immediately, before workers start).
    chunksize:
        Tasks per IPC message; computed from the seed count when omitted.
    retries:
        How many times to re-run seeds that failed (with jittered
        exponential backoff between rounds: ``retry_backoff *
        2**attempt``, capped at :data:`BACKOFF_CAP_SECONDS` and scaled
        by a uniform 0.5-1.5x factor so parallel callers do not retry
        in lockstep).  Only
        the failed seeds are retried — completed work is kept — so a
        transient fault (a worker OOM-killed, a broken process pool)
        costs one backoff, not the whole batch.  Deterministic failures
        still fail after exhausting retries, raising
        :class:`SeedExecutionError` with the protocol name and instance
        digest attached.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` collector.
        Records a ``run_seeds`` span, cache hit/miss/write deltas,
        retry-round and worker-failure counters — and, on the inline
        path (``processes=1``), full per-run engine telemetry.  Worker
        processes cannot share the collector, so with ``processes>1``
        only the scheduling-level telemetry is recorded.  Never changes
        results.
    fastpath:
        ``"off"`` (default) always runs the reference engine; ``"auto"``
        routes to the vectorized full-protocol kernels
        (:mod:`repro.fastpath.batched`) when the configuration
        qualifies, silently falling back to the engine otherwise;
        ``"on"`` requires a kernel and raises
        :class:`~repro.fastpath.batched.FastpathUnavailableError` when
        none covers the configuration.  Kernel digests are bit-exact
        with the engine for single-attempt UNIFORM and statistically
        equivalent for ALIGNED/PUNCTUAL; their cache keys live in a
        separate ``("fastpath", ...)`` namespace, so the default keeps
        every engine-path cache address unchanged.
    ledger:
        Optional run-ledger knob (see :func:`repro.obs.ledger.as_ledger`).
        When set, one :class:`~repro.obs.ledger.RunRecord` is appended
        per ``run_seeds`` call — config digest, versions, aggregate
        counters, wall time — covering both the engine and fastpath
        execution paths.  ``None`` (the default) costs a single ``is
        None`` branch and never imports the ledger module; attaching a
        ledger never changes results or cache keys.
    """
    if fastpath not in ("off", "auto", "on"):
        raise ValueError(
            f"fastpath must be 'off', 'auto', or 'on', got {fastpath!r}"
        )
    if ledger is not None:
        # Record-and-delegate: the ledger wrap re-enters with
        # ``ledger=None`` so one call appends exactly one record, no
        # matter which execution path (engine, fastpath, cache-served)
        # the inner call takes.
        from repro.obs.ledger import as_ledger
        from repro.sim.engine import ENGINE_VERSION

        led = as_ledger(ledger)
        if led is not None:
            seeds = list(seeds)
            config = {
                "kind": "run_seeds",
                "protocol": _protocol_label(protocol),
                "seeds": len(seeds),
                "processes": processes,
                "fastpath": fastpath,
                "jammer": repr(jammer) if jammer is not None else None,
                "faults": repr(faults) if faults is not None else None,
            }
            with led.track("run_seeds", config=config) as trk:
                trk.engine_version = ENGINE_VERSION
                if fastpath != "off":
                    from repro.fastpath.batched import KERNEL_VERSION

                    trk.kernel_version = KERNEL_VERSION
                try:
                    trk.config_digest = stable_digest(
                        (
                            build(),
                            _protocol_label(protocol),
                            jammer,
                            faults,
                            watchdog,
                            fastpath,
                        )
                    )
                except Exception:
                    pass  # an unbuildable instance fails below, attributed
                digests = run_seeds(
                    build,
                    protocol,
                    seeds,
                    jammer=jammer,
                    faults=faults,
                    check_invariants=check_invariants,
                    watchdog=watchdog,
                    processes=processes,
                    cache=cache,
                    progress=progress,
                    chunksize=chunksize,
                    retries=retries,
                    retry_backoff=retry_backoff,
                    telemetry=telemetry,
                    fastpath=fastpath,
                    ledger=None,
                )
                agg = aggregate(digests)
                trk.counters = {
                    k: agg[k]
                    for k in (
                        "runs",
                        "jobs",
                        "succeeded",
                        "success_rate",
                        "slots",
                    )
                }
                trk.watchdog_trips = int(agg["watchdog_trips"])
            return digests
    if fastpath != "off":
        # Imported lazily: repro.fastpath.fullproto imports SeedDigest
        # from this module.
        from repro.fastpath.batched import (
            FastpathUnavailableError,
            plan_fastpath,
            run_batch,
        )

        fp_instance = build()
        plan, reason = plan_fastpath(
            fp_instance,
            protocol(fp_instance),
            jammer=jammer,
            faults=faults,
            watchdog=watchdog,
            check_invariants=check_invariants,
        )
        if plan is not None:
            return run_batch(
                build,
                protocol,
                seeds,
                jammer=jammer,
                faults=faults,
                check_invariants=check_invariants,
                watchdog=watchdog,
                cache=cache,
                progress=progress,
                telemetry=telemetry,
                plan=plan,
            )
        if fastpath == "on":
            raise FastpathUnavailableError(reason)

    seeds = list(seeds)
    total = len(seeds)
    cache_obj = as_cache(cache)
    # One shared backoff rule (cap + jitter) across every retry layer in
    # the codebase: see repro.retrypolicy.
    policy = RetryPolicy(retries=retries, base_backoff=retry_backoff)
    if chunksize is not None and chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    t_started = time.perf_counter()
    if telemetry is not None and cache_obj is not None:
        c_hits, c_misses, c_puts = (
            cache_obj.hits, cache_obj.misses, cache_obj.puts,
        )

    results: Dict[int, SeedDigest] = {}  # position -> digest
    pending: List[Tuple[int, ParallelJob, Optional[str]]] = []

    wd = watchdog if watchdog is not None and watchdog.enabled else None

    def job_for(seed: int) -> ParallelJob:
        return ParallelJob(
            build, protocol, seed, jammer, faults, check_invariants, wd
        )

    if cache_obj is not None:
        # Content address each seed; only misses become worker tasks.
        # A watchdog changes results (it can truncate runs), so it joins
        # the key when set; clean runs keep their historical addresses.
        instance = build()
        wd_extra = ("watchdog", wd) if wd is not None else None
        for pos, s in enumerate(seeds):
            key = run_key(
                instance=instance,
                protocol=protocol,
                jammer=jammer,
                seed=s,
                faults=faults,
                extra=wd_extra,
            )
            hit = cache_obj.get(key)
            if isinstance(hit, SeedDigest) and hit.seed == s:
                results[pos] = hit
            else:
                pending.append((pos, job_for(s), key))
    else:
        pending = [(pos, job_for(s), None) for pos, s in enumerate(seeds)]

    done = len(results)
    if progress is not None and done:
        progress(done, total)

    def finish(pos: int, key: Optional[str], digest: SeedDigest) -> None:
        nonlocal done
        results[pos] = digest
        if digest.watchdog_reason is not None and telemetry is not None:
            telemetry.metrics.counter("runs.watchdog_trips").inc()
        if cache_obj is not None and key is not None and digest.cacheable:
            cache_obj.put(key, digest)
        done += 1
        if progress is not None:
            progress(done, total)

    attempt = 0
    while pending:
        failures: List[
            Tuple[int, ParallelJob, Optional[str], _WorkerFailure]
        ] = []
        if processes <= 1:
            for pos, job, key in pending:
                result = _run_one_safe(job, telemetry)
                if isinstance(result, _WorkerFailure):
                    failures.append((pos, job, key, result))
                else:
                    finish(pos, key, result)
        else:
            n_chunk = (
                chunksize
                if chunksize is not None
                else compute_chunksize(len(pending), processes)
            )
            jobs = [job for _, job, _ in pending]
            try:
                with ProcessPoolExecutor(max_workers=processes) as pool:
                    # pool.map streams results back in submission order
                    # as chunks complete; pairing by position keeps
                    # bookkeeping exact even with cache hits interleaved.
                    for (pos, job, key), result in zip(
                        pending,
                        pool.map(_run_one_safe, jobs, chunksize=n_chunk),
                    ):
                        if isinstance(result, _WorkerFailure):
                            failures.append((pos, job, key, result))
                        else:
                            finish(pos, key, result)
            except BrokenProcessPool:
                # A worker died hard (signal/OOM): every task whose
                # result did not come back is unaccounted for — retry
                # them all.
                taken = {f[0] for f in failures}
                failures.extend(
                    (
                        pos,
                        job,
                        key,
                        _WorkerFailure(
                            seed=job.seed,
                            formatted=(
                                "process pool broke before this seed's "
                                "result was received (worker died)"
                            ),
                        ),
                    )
                    for pos, job, key in pending
                    if pos not in results and pos not in taken
                )
        if not failures:
            break
        if telemetry is not None:
            telemetry.metrics.counter("runs.worker_failures").inc(
                len(failures)
            )
        if attempt >= retries:
            pos, job, key, failure = failures[0]
            raise SeedExecutionError(
                failure.seed,
                failure.formatted,
                protocol=_protocol_label(protocol),
                instance_digest=_instance_digest_of(job),
            )
        attempt += 1
        if telemetry is not None:
            telemetry.metrics.counter("runs.retries").inc()
        policy.sleep(attempt)
        pending = [(pos, job, key) for pos, job, key, _ in failures]

    if telemetry is not None:
        telemetry.add_span("run_seeds", time.perf_counter() - t_started)
        if cache_obj is not None:
            telemetry.record_cache(
                cache_obj.hits - c_hits,
                cache_obj.misses - c_misses,
                cache_obj.puts - c_puts,
            )
    return [results[pos] for pos in range(total)]


def aggregate(digests: Sequence[SeedDigest]) -> Dict[str, object]:
    """Combine per-seed digests into one summary dictionary.

    Keys: ``runs``, ``jobs``, ``succeeded``, ``success_rate``,
    ``by_window`` (``{window: (ok, total)}``), ``slots``, ``attempts``
    (total send attempts across runs, -1 when any digest did not track
    them), ``watchdog_trips`` (runs cancelled by a watchdog; their
    partial counts are included in the totals).
    """
    jobs = sum(d.n_jobs for d in digests)
    ok = sum(d.n_succeeded for d in digests)
    attempts = (
        sum(d.attempts_sum for d in digests)
        if all(d.attempts_sum >= 0 for d in digests)
        else -1
    )
    by_window: Dict[int, List[int]] = {}
    for d in digests:
        for w, s, t in d.by_window:
            acc = by_window.setdefault(w, [0, 0])
            acc[0] += s
            acc[1] += t
    return {
        "runs": len(digests),
        "jobs": jobs,
        "succeeded": ok,
        "success_rate": ok / jobs if jobs else 1.0,
        "by_window": {w: (s, t) for w, (s, t) in sorted(by_window.items())},
        "slots": sum(d.slots_simulated for d in digests),
        "attempts": attempts,
        "watchdog_trips": sum(
            1 for d in digests if d.watchdog_reason is not None
        ),
    }
