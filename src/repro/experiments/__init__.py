"""Experiment utilities: grid sweeps, CIs, and capacity planning."""

from repro.experiments.capacity import (
    PunctualBudget,
    aligned_window_demand,
    max_feasible_gamma,
    punctual_overheads,
)
from repro.experiments.certify import (
    ADVERSARY_FAMILIES,
    BisectResult,
    BreakingPoint,
    CertificationReport,
    bisect_breaking_point,
    run_certification,
)
from repro.experiments.compare import ProtocolComparison, compare_protocols
from repro.experiments.frontier import (
    FrontierPoint,
    FrontierReport,
    run_frontier,
)
from repro.experiments.parallel import (
    BoundBuilder,
    ConstantFactory,
    ConstantInstance,
    ParallelJob,
    SeedDigest,
    SeedExecutionError,
    aggregate,
    compute_chunksize,
    run_seeds,
)
from repro.experiments.robustness import (
    FAULT_FAMILIES,
    ProfilePoint,
    RobustnessReport,
    fault_plan,
    run_robustness,
)
from repro.experiments.sweep import Sweep, SweepPoint

__all__ = [
    "ADVERSARY_FAMILIES",
    "BisectResult",
    "BreakingPoint",
    "CertificationReport",
    "bisect_breaking_point",
    "run_certification",
    "ProtocolComparison",
    "compare_protocols",
    "FrontierPoint",
    "FrontierReport",
    "run_frontier",
    "FAULT_FAMILIES",
    "ProfilePoint",
    "RobustnessReport",
    "fault_plan",
    "run_robustness",
    "Sweep",
    "SweepPoint",
    "BoundBuilder",
    "ConstantFactory",
    "ConstantInstance",
    "ParallelJob",
    "SeedDigest",
    "SeedExecutionError",
    "aggregate",
    "compute_chunksize",
    "run_seeds",
    "PunctualBudget",
    "aligned_window_demand",
    "max_feasible_gamma",
    "punctual_overheads",
]
