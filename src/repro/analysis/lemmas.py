"""Executable checks for the paper's lemmas against simulation output.

Each ``check_lemmaN`` takes measured data (simulation results, traces,
or estimator samples) and returns a :class:`LemmaCheck` stating whether
the measured behaviour is consistent with the lemma at the configured
constants.  The benchmark suite asserts shapes inline; this module packs
the same logic into reusable, individually-testable verdicts so
integration tests and notebooks can write
``assert check_lemma8(...).holds``.

These are statistical consistency checks, not proofs: each documents
its tolerance and what "holds" means concretely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.bounds import lemma2_lower, lemma2_upper
from repro.analysis.stats import wilson_interval

__all__ = [
    "LemmaCheck",
    "check_lemma2",
    "check_lemma4",
    "check_lemma5",
    "check_lemma8",
    "check_theorem14",
]


@dataclass(frozen=True, slots=True)
class LemmaCheck:
    """The verdict of one lemma check."""

    lemma: str
    holds: bool
    detail: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "✓" if self.holds else "✗"
        return f"{mark} {self.lemma}: {self.detail}"


def check_lemma2(
    contentions: Sequence[float],
    success_rates: Sequence[float],
    *,
    slack: float = 0.02,
) -> LemmaCheck:
    """``C/e^{2C} <= p_suc <= 2C/e^C`` for every (C, rate) pair.

    ``slack`` absorbs Monte-Carlo noise.  Valid only when the underlying
    per-player probabilities were <= 1/2 (the caller's responsibility,
    as in the paper).
    """
    bad = []
    for c, r in zip(contentions, success_rates):
        lo = float(lemma2_lower(c)) - slack
        hi = float(lemma2_upper(c)) + slack
        if not lo <= r <= hi:
            bad.append((c, r))
    return LemmaCheck(
        "Lemma 2",
        not bad,
        "all points inside the envelope"
        if not bad
        else f"{len(bad)} points escape, first at C={bad[0][0]:.3g}",
    )


def check_lemma4(
    n_jobs: int,
    n_succeeded: int,
    *,
    min_fraction: float = 0.5,
) -> LemmaCheck:
    """A constant fraction of all messages succeeded.

    The paper's constant is unspecified; we require ``min_fraction``
    (default 1/2, far above what the proof needs and comfortably met by
    UNIFORM at γ < 1/6 empirically — see E1).
    """
    frac = n_succeeded / n_jobs if n_jobs else 1.0
    return LemmaCheck(
        "Lemma 4",
        frac >= min_fraction,
        f"delivered fraction {frac:.3f} (threshold {min_fraction})",
    )


def check_lemma5(
    ns: Sequence[int],
    head_success_rates: Sequence[float],
    *,
    min_exponent: float = 0.25,
) -> LemmaCheck:
    """The urgent jobs' success decays polynomially in n.

    Fits ``rate ≈ a·n^{-b}`` and requires ``b >= min_exponent`` — the
    "O(1/n^Θ(1))" of the lemma with an explicit measurable exponent.
    """
    if len(ns) < 2:
        return LemmaCheck("Lemma 5", False, "need at least two points")
    x = np.log(np.asarray(ns, dtype=float))
    y = np.log(np.maximum(np.asarray(head_success_rates, dtype=float), 1e-6))
    slope = float(np.polyfit(x, y, 1)[0])
    return LemmaCheck(
        "Lemma 5",
        -slope >= min_exponent,
        f"head success ~ n^{slope:.2f} (need exponent <= -{min_exponent})",
    )


def check_lemma8(
    estimates: Sequence[int],
    n_hat: int,
    tau: int,
    *,
    min_in_band: float = 0.9,
) -> LemmaCheck:
    """Estimates land in ``[2n̂, τ²n̂]`` at least ``min_in_band`` often.

    For n̂ = 0 the lemma degenerates: every estimate must be 0.
    """
    est = np.asarray(estimates)
    if n_hat == 0:
        ok = bool(np.all(est == 0))
        return LemmaCheck(
            "Lemma 8", ok, "empty class ⇒ all estimates 0" if ok else
            "nonzero estimate for an empty class"
        )
    frac = float(np.mean((est >= 2 * n_hat) & (est <= tau * tau * n_hat)))
    return LemmaCheck(
        "Lemma 8",
        frac >= min_in_band,
        f"in-band fraction {frac:.3f} (threshold {min_in_band})",
    )


def check_theorem14(
    successes: int,
    trials: int,
    window: int,
    *,
    max_failure_scale: float = 2.0,
    exponent: float = 0.5,
) -> LemmaCheck:
    """Per-job failure consistent with ``<= c/w^b``.

    Uses the Wilson upper bound on the failure rate, so a clean sample
    of moderate size can still certify a small-failure claim.  Defaults
    demand failure ≤ 2/√w — far weaker than the theorem but strong
    enough to catch any real regression.
    """
    fails = trials - successes
    _, fail_hi = wilson_interval(fails, trials)
    bound = max_failure_scale / (window**exponent)
    return LemmaCheck(
        "Theorem 14",
        fail_hi <= bound,
        f"failure upper CI {fail_hi:.4f} vs bound {bound:.4f} "
        f"(w={window})",
    )
