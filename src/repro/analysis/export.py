"""Structured export of simulation results and traces.

Writers that turn a :class:`~repro.sim.metrics.SimulationResult` or a
:class:`~repro.sim.trace.TraceRecorder` into portable records (dicts →
JSON, rows → CSV) so downstream analysis can leave Python.  Pure
functions plus thin file helpers; no dependencies beyond the stdlib.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Any, Dict, List, Union

from repro.sim.metrics import SimulationResult
from repro.sim.trace import TraceRecorder

__all__ = [
    "result_to_records",
    "trace_to_records",
    "result_summary_dict",
    "write_csv",
    "write_json",
]

PathLike = Union[str, pathlib.Path]


def result_to_records(result: SimulationResult) -> List[Dict[str, Any]]:
    """One dict per job outcome, in release order."""
    return [
        {
            "job_id": o.job.job_id,
            "release": o.job.release,
            "deadline": o.job.deadline,
            "window": o.job.window,
            "status": o.status.value,
            "succeeded": o.succeeded,
            "completion_slot": o.completion_slot,
            "latency": o.latency,
            "transmissions": o.transmissions,
        }
        for o in result.outcomes
    ]


def trace_to_records(trace: TraceRecorder) -> List[Dict[str, Any]]:
    """One dict per recorded slot."""
    return [
        {
            "slot": r.slot,
            "feedback": r.feedback.value,
            "n_transmitters": r.n_transmitters,
            "n_live": r.n_live,
            "contention": None if r.contention != r.contention else r.contention,
            "jammed": r.jammed,
            "message_type": r.message_type,
        }
        for r in trace.records
    ]


def result_summary_dict(result: SimulationResult) -> Dict[str, Any]:
    """The aggregate view as one JSON-ready dict."""
    return {
        "n_jobs": len(result),
        "n_succeeded": result.n_succeeded,
        "success_rate": result.success_rate,
        "slots_simulated": result.slots_simulated,
        "success_by_window": {
            str(w): {"succeeded": s, "total": t}
            for w, (s, t) in result.success_by_window().items()
        },
    }


def write_csv(records: List[Dict[str, Any]], path: PathLike) -> None:
    """Write homogeneous dict records as CSV (column order = first record)."""
    path = pathlib.Path(path)
    if not records:
        path.write_text("")
        return
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(records[0]))
        writer.writeheader()
        writer.writerows(records)


def write_json(payload: Any, path: PathLike) -> None:
    """Write any JSON-serializable payload, indented for humans."""
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
