"""Instrumentation captures: schedule and stage histories from live runs.

Two reusable observers that the Figure-1/Figure-2 experiments, the CLI,
and the examples all need (and previously each reimplemented):

* :class:`ScheduleCapture` — wraps an ALIGNED factory and records, per
  slot, which class was active and whether it was estimating or
  broadcasting (the data behind the paper's Figure 1);
* :class:`StageCapture` — wraps a PUNCTUAL factory and records every
  per-job stage transition (the data behind Figure 2's state machine).

Both are pure observers: the wrapped protocols' behaviour is untouched
(decisions, randomness, and timing are identical with or without the
capture), which the tests verify.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.aligned import AlignedProtocol
from repro.core.punctual import PunctualProtocol, Stage
from repro.params import AlignedParams, PunctualParams
from repro.sim.job import Job
from repro.sim.protocolbase import ProtocolContext

__all__ = ["ScheduleCapture", "StageCapture", "StageTransition"]


class ScheduleCapture:
    """Record the pecking-order schedule of an ALIGNED run.

    Usage::

        capture = ScheduleCapture(params)
        simulate(instance, capture.factory(), seed=0)
        active, kinds = capture.timeline(horizon)
    """

    def __init__(self, params: AlignedParams) -> None:
        self.params = params
        self.log: Dict[int, Tuple[int, str]] = {}

    def factory(self):
        """An ALIGNED protocol factory that logs into this capture."""
        capture = self

        class _Logging(AlignedProtocol):
            def on_act(self, slot):
                msg = super().on_act(slot)
                view = self.machine.view
                if view is not None and view.active_level is not None:
                    lv = view.active_level
                    run = view.run_of(lv)
                    kind = (
                        "est"
                        if run.steps_taken < run.estimation_steps
                        else "bcast"
                    )
                    capture.log[slot] = (lv, kind)
                return msg

        def make(job: Job, rng: np.random.Generator) -> AlignedProtocol:
            return _Logging(ProtocolContext.for_job(job, rng), capture.params)

        return make

    def timeline(
        self, horizon: int
    ) -> Tuple[List[Optional[int]], List[str]]:
        """Per-slot (active level, step kind) lists over ``[0, horizon)``."""
        active = [
            self.log[t][0] if t in self.log else None for t in range(horizon)
        ]
        kinds = [self.log[t][1] if t in self.log else "" for t in range(horizon)]
        return active, kinds

    def active_step_counts(self) -> Dict[int, Dict[str, int]]:
        """``{level: {"est": n, "bcast": m}}`` across the whole run."""
        out: Dict[int, Dict[str, int]] = {}
        for lv, kind in self.log.values():
            out.setdefault(lv, {"est": 0, "bcast": 0})[kind] += 1
        return out


@dataclass(frozen=True, slots=True)
class StageTransition:
    """One job's stage change at one slot."""

    slot: int
    job_id: int
    before: Stage
    after: Stage


class StageCapture:
    """Record every stage transition of a PUNCTUAL run."""

    def __init__(self, params: PunctualParams) -> None:
        self.params = params
        self.transitions: List[StageTransition] = []
        self.protocols: Dict[int, PunctualProtocol] = {}

    def factory(self):
        """A PUNCTUAL protocol factory that logs into this capture."""
        capture = self

        class _Logging(PunctualProtocol):
            def __init__(self, ctx, params):
                super().__init__(ctx, params)
                self._last_stage = self.stage

            def observe(self, slot, obs):
                super().observe(slot, obs)
                if self.stage is not self._last_stage:
                    capture.transitions.append(
                        StageTransition(
                            slot, self.ctx.job_id, self._last_stage, self.stage
                        )
                    )
                    self._last_stage = self.stage

        def make(job: Job, rng: np.random.Generator) -> PunctualProtocol:
            proto = _Logging(ProtocolContext.for_job(job, rng), capture.params)
            capture.protocols[job.job_id] = proto
            return proto

        return make

    def census(self) -> collections.Counter:
        """Counter of ``(before, after)`` stage-name pairs."""
        return collections.Counter(
            (t.before.value, t.after.value) for t in self.transitions
        )

    def final_stages(self) -> Dict[int, Stage]:
        """Each job's last recorded stage."""
        return {jid: p.stage for jid, p in self.protocols.items()}

    def jobs_reaching(self, stage: Stage) -> List[int]:
        """Job ids that ever entered ``stage``."""
        out = {t.job_id for t in self.transitions if t.after is stage}
        out |= {
            jid for jid, p in self.protocols.items() if p.stage is stage
        }
        return sorted(out)
