"""Plain-text tables and schedule diagrams for the experiment harness.

Benchmarks print their paper-vs-measured results through
:func:`format_table`; :func:`render_schedule` redraws the paper's
Figure 1 (pecking-order active steps per class over time) as ASCII art
from a live simulation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["format_table", "render_schedule"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``.  Column widths adapt to content.
    """
    def fmt(x: object) -> str:
        if isinstance(x, bool):
            return "yes" if x else "no"
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    cols = len(headers)
    for row in cells:
        if len(row) != cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {cols}: {row}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(x.rjust(w) for x, w in zip(row, widths)))
    return "\n".join(lines)


def render_schedule(
    active_levels: Sequence[Optional[int]],
    step_kinds: Sequence[str],
    levels: Sequence[int],
    *,
    start: int = 0,
    max_width: int = 200,
) -> str:
    """ASCII rendition of a pecking-order schedule (the paper's Figure 1).

    Parameters
    ----------
    active_levels:
        Per slot, the active class (or None) — from a simulation observer.
    step_kinds:
        Per slot, ``"est"``, ``"bcast"``, or ``""`` — which stage the
        active class was in (Figure 1's yellow squares vs. blue circles).
    levels:
        The class levels to draw, one row each (smallest first, like the
        figure's top row).
    start:
        Slot index of the first entry (axis labelling).
    max_width:
        Truncate longer schedules (with a marker) to keep output sane.

    Legend: ``E`` estimation step, ``B`` broadcast step, ``.`` idle slot
    for that class, ``|`` window boundary of that class.
    """
    n = min(len(active_levels), max_width)
    truncated = len(active_levels) > n
    lines: List[str] = []
    lines.append(
        f"slots {start}..{start + n - 1}"
        + (f" (truncated from {len(active_levels)})" if truncated else "")
    )
    for lv in levels:
        w = 1 << lv
        row: List[str] = []
        for i in range(n):
            t = start + i
            boundary = t % w == 0
            if active_levels[i] == lv:
                ch = "E" if step_kinds[i] == "est" else "B"
            else:
                ch = "."
            if boundary and i > 0:
                row.append("|")
            row.append(ch)
        lines.append(f"class {lv:>2} (w={w:>5}): " + "".join(row))
    lines.append("legend: E=estimation step, B=broadcast step, .=idle, |=window boundary")
    return "\n".join(lines)
