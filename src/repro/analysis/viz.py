"""Plain-text visualizations of simulation traces.

Terminal-friendly companions to :mod:`repro.analysis.tables`:

* :func:`channel_timeline` — one character per slot bucket showing what
  the channel carried (silence / success / collision mix);
* :func:`contention_sparkline` — a unicode sparkline of C(t);
* :func:`utilization_profile` — bucketed utilization/collision table.

All operate on a :class:`~repro.sim.trace.TraceRecorder` so they compose
with any simulation run with ``trace=True``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.errors import InvalidParameterError
from repro.sim.trace import TraceRecorder

__all__ = ["channel_timeline", "contention_sparkline", "utilization_profile"]

_SPARK = "▁▂▃▄▅▆▇█"


def _bucket(values: np.ndarray, width: int) -> List[np.ndarray]:
    """Split ``values`` into ``width`` (nearly) equal contiguous buckets."""
    if width < 1:
        raise InvalidParameterError(f"width must be >= 1, got {width}")
    edges = np.linspace(0, len(values), min(width, len(values)) + 1).astype(int)
    return [values[a:b] for a, b in zip(edges[:-1], edges[1:]) if b > a]


def channel_timeline(trace: TraceRecorder, width: int = 80) -> str:
    """One character per time bucket summarizing channel activity.

    Legend: ``.`` all silence, ``s`` some successes, ``S`` mostly
    successes, ``x`` some collisions, ``X`` mostly collisions, ``#``
    contested mix (successes and collisions).
    """
    if len(trace) == 0:
        return "(empty trace)"
    codes = trace.feedback_codes()
    chars = []
    for bucket in _bucket(codes, width):
        succ = float(np.mean(bucket == 1))
        coll = float(np.mean(bucket == 2))
        if succ == 0 and coll == 0:
            chars.append(".")
        elif succ > 0 and coll > 0:
            chars.append("#")
        elif succ > 0:
            chars.append("S" if succ > 0.5 else "s")
        else:
            chars.append("X" if coll > 0.5 else "x")
    legend = (
        "legend: .=silent  s/S=successes (some/most)  "
        "x/X=collisions (some/most)  #=mixed"
    )
    return "".join(chars) + "\n" + legend


def contention_sparkline(trace: TraceRecorder, width: int = 80) -> str:
    """A sparkline of per-slot contention C(t) (nan-slots ignored).

    The line is annotated with the max so the scale is readable.
    """
    cs = trace.contentions()
    cs = cs[~np.isnan(cs)]
    if cs.size == 0:
        return "(no contention data — protocols did not report last_p)"
    buckets = [float(np.mean(b)) for b in _bucket(cs, width)]
    top = max(max(buckets), 1e-9)
    line = "".join(
        _SPARK[min(int(v / top * (len(_SPARK) - 1)), len(_SPARK) - 1)]
        for v in buckets
    )
    return f"{line}\nmax C(t) bucket mean = {top:.3f}"


def utilization_profile(
    trace: TraceRecorder, buckets: int = 8
) -> str:
    """A table of utilization / collision / silence rates per time bucket."""
    if len(trace) == 0:
        return "(empty trace)"
    codes = trace.feedback_codes()
    rows = []
    edges = np.linspace(0, len(codes), min(buckets, len(codes)) + 1).astype(int)
    for a, b in zip(edges[:-1], edges[1:]):
        if b <= a:
            continue
        part = codes[a:b]
        rows.append(
            [
                f"{trace.records[a].slot}..{trace.records[b - 1].slot}",
                float(np.mean(part == 1)),
                float(np.mean(part == 2)),
                float(np.mean(part == 0)),
            ]
        )
    return format_table(
        ["slots", "success rate", "collision rate", "silence rate"],
        rows,
        title="channel utilization profile",
    )
