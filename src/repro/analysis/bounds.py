"""Closed-form bounds from the paper, as checkable functions.

* Lemma 1 (standard exponential inequalities): for ``0 <= x < 1``,
  ``e^{-x/(1-x)} <= 1 - x <= e^{-x}``.
* Lemma 2: with all transmit probabilities <= 1/2,
  ``C/e^{2C} <= p_suc <= 2C/e^C`` for contention ``C``.
* Chernoff bounds used throughout the proofs, in the multiplicative form.

These power the E3 experiment (empirical success probability vs. the
Lemma 2 envelope) and various test oracles.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "lemma1_lower",
    "lemma1_upper",
    "lemma2_lower",
    "lemma2_upper",
    "success_probability_exact",
    "contention",
    "chernoff_upper_tail",
    "chernoff_lower_tail",
]

ArrayLike = Union[float, np.ndarray]


def lemma1_lower(x: ArrayLike) -> ArrayLike:
    """``e^{-x/(1-x)}`` — the lower bound of Lemma 1 on ``1 - x``."""
    x = np.asarray(x, dtype=float)
    out = np.exp(-x / (1.0 - x))
    return out if out.ndim else float(out)


def lemma1_upper(x: ArrayLike) -> ArrayLike:
    """``e^{-x}`` — the upper bound of Lemma 1 on ``1 - x``."""
    x = np.asarray(x, dtype=float)
    out = np.exp(-x)
    return out if out.ndim else float(out)


def lemma2_lower(c: ArrayLike) -> ArrayLike:
    """``C / e^{2C}`` — Lemma 2's lower bound on the success probability."""
    c = np.asarray(c, dtype=float)
    out = c / np.exp(2.0 * c)
    return out if out.ndim else float(out)


def lemma2_upper(c: ArrayLike) -> ArrayLike:
    """``2C / e^{C}`` — Lemma 2's upper bound on the success probability."""
    c = np.asarray(c, dtype=float)
    out = 2.0 * c / np.exp(c)
    return out if out.ndim else float(out)


def contention(probabilities: Sequence[float]) -> float:
    """``C(t) = Σ_j p_j(t)`` — the paper's contention (Section 2.1)."""
    return float(np.sum(np.asarray(probabilities, dtype=float)))


def success_probability_exact(probabilities: Sequence[float]) -> float:
    """Exact ``p_suc`` for independent transmitters with the given probabilities.

    ``p_suc = Σ_j p_j Π_{k≠j} (1 - p_k)`` — the quantity Lemma 2
    sandwiches.  Numerically stable product-form evaluation.
    """
    p = np.asarray(probabilities, dtype=float)
    if p.size == 0:
        return 0.0
    if np.any((p < 0) | (p > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    q = 1.0 - p
    if np.any(q == 0.0):
        # any p_j = 1 transmits surely; success iff exactly one such and
        # no other transmitter fires
        ones = int(np.sum(p == 1.0))
        if ones > 1:
            return 0.0
        rest = p[p < 1.0]
        return float(np.prod(1.0 - rest))
    total = np.prod(q)
    return float(total * np.sum(p / q))


def chernoff_upper_tail(mean: float, delta: float) -> float:
    """``Pr[X >= (1+δ)μ] <= exp(-δ²μ/(2+δ))`` for sums of independent 0/1s."""
    if mean < 0 or delta < 0:
        raise ValueError("mean and delta must be nonnegative")
    if mean == 0:
        return 0.0 if delta > 0 else 1.0
    return math.exp(-(delta * delta) * mean / (2.0 + delta))


def chernoff_lower_tail(mean: float, delta: float) -> float:
    """``Pr[X <= (1-δ)μ] <= exp(-δ²μ/2)`` for sums of independent 0/1s."""
    if mean < 0 or not 0 <= delta <= 1:
        raise ValueError("need mean >= 0 and 0 <= delta <= 1")
    return math.exp(-(delta * delta) * mean / 2.0)
