"""Contention analyses over simulation traces (Section 2.1).

Ties the recorded per-slot contention ``C(t)`` (from protocols that
report their transmit probabilities) to the observed channel outcomes,
and provides the Monte-Carlo machinery for experiment E3: estimate
``p_suc`` as a function of ``C`` and compare against Lemma 2's envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.bounds import lemma2_lower, lemma2_upper
from repro.sim.trace import TraceRecorder

__all__ = [
    "ContentionBucket",
    "bucket_trace_by_contention",
    "simulate_success_probability",
    "lemma2_envelope_check",
]


@dataclass(frozen=True, slots=True)
class ContentionBucket:
    """Aggregated slots whose contention falls in one bin."""

    c_low: float
    c_high: float
    n_slots: int
    n_successes: int

    @property
    def c_mid(self) -> float:
        return 0.5 * (self.c_low + self.c_high)

    @property
    def success_rate(self) -> float:
        return self.n_successes / self.n_slots if self.n_slots else float("nan")


def bucket_trace_by_contention(
    trace: TraceRecorder, edges: Sequence[float]
) -> List[ContentionBucket]:
    """Group a trace's slots into contention bins and count successes.

    Slots with unreported (nan) contention are skipped.
    """
    cs = trace.contentions()
    codes = trace.feedback_codes()
    ok = ~np.isnan(cs)
    cs, codes = cs[ok], codes[ok]
    out: List[ContentionBucket] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (cs >= lo) & (cs < hi)
        out.append(
            ContentionBucket(
                float(lo), float(hi), int(mask.sum()), int((codes[mask] == 1).sum())
            )
        )
    return out


def simulate_success_probability(
    contention_value: float,
    n_players: int,
    n_slots: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo ``p_suc`` with ``n`` equal players at total contention C.

    Each of ``n_players`` transmits i.i.d. with probability
    ``C/n_players`` (must be <= 1) in each of ``n_slots`` independent
    slots; returns the fraction of slots with exactly one transmitter.
    """
    p = contention_value / n_players
    if not 0.0 <= p <= 1.0:
        raise ValueError(
            f"per-player probability {p} outside [0,1]; raise n_players"
        )
    counts = rng.binomial(n_players, p, size=n_slots)
    return float(np.mean(counts == 1))


def lemma2_envelope_check(
    c_values: Sequence[float], success_rates: Sequence[float], slack: float = 0.0
) -> List[Tuple[float, float, float, float, bool]]:
    """Check empirical rates against the Lemma 2 envelope.

    Returns ``(C, rate, lower, upper, within)`` per point, where *within*
    allows an additive ``slack`` for Monte-Carlo noise.  Note Lemma 2
    assumes every individual probability is <= 1/2; callers must respect
    that regime for the envelope to be valid.
    """
    out = []
    for c, r in zip(c_values, success_rates):
        lo = float(lemma2_lower(c))
        hi = float(lemma2_upper(c))
        out.append((float(c), float(r), lo, hi, lo - slack <= r <= hi + slack))
    return out
