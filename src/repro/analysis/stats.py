"""Statistical helpers for the experiment harness.

Wilson score intervals for success-probability estimates, a log-log
regression extracting the failure-probability exponent (the experiments'
way of checking "with high probability *in the window size*" claims —
failure ~ ``w^{-Θ(λ)}`` should show as a negative slope of log-failure
against log-w), and a tiny bootstrap for comparing protocols.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "wilson_interval",
    "ProportionEstimate",
    "estimate_proportion",
    "failure_exponent",
    "bootstrap_mean_diff",
    "bootstrap_proportion",
]


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0 or all successes) unlike the normal
    approximation — exactly the regime our high-probability experiments
    live in.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes outside [0, trials]")
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass(frozen=True, slots=True)
class ProportionEstimate:
    """A binomial estimate with its Wilson interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def point(self) -> float:
        return self.successes / self.trials

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.point:.4f} [{self.low:.4f}, {self.high:.4f}] ({self.successes}/{self.trials})"


def estimate_proportion(successes: int, trials: int, z: float = 1.96) -> ProportionEstimate:
    """A :class:`ProportionEstimate` with its Wilson score interval."""
    lo, hi = wilson_interval(successes, trials, z)
    return ProportionEstimate(successes, trials, lo, hi)


def failure_exponent(
    window_sizes: Sequence[int], failure_rates: Sequence[float], floor: float = 1e-9
) -> Tuple[float, float]:
    """Fit ``failure ≈ a · w^{-b}`` by least squares in log-log space.

    Returns ``(b, r_squared)``.  Zero failure rates are floored (they
    only *strengthen* a high-probability claim, but break the log);
    callers should report them separately.
    """
    w = np.asarray(window_sizes, dtype=float)
    f = np.maximum(np.asarray(failure_rates, dtype=float), floor)
    if w.size < 2:
        raise ValueError("need at least two points to fit an exponent")
    x = np.log(w)
    y = np.log(f)
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return (-float(slope), r2)


def bootstrap_mean_diff(
    a: Sequence[float],
    b: Sequence[float],
    rng: np.random.Generator,
    n_boot: int = 2000,
    alpha: float = 0.05,
) -> Tuple[float, float, float]:
    """Bootstrap CI for ``mean(a) − mean(b)``.

    Returns ``(point, low, high)``; used by the protocol-comparison bench
    to state whether PUNCTUAL's advantage over a baseline is significant.
    """
    xa = np.asarray(a, dtype=float)
    xb = np.asarray(b, dtype=float)
    if xa.size == 0 or xb.size == 0:
        raise ValueError("both samples must be non-empty")
    point = float(xa.mean() - xb.mean())
    diffs = np.empty(n_boot)
    for i in range(n_boot):
        diffs[i] = (
            xa[rng.integers(0, xa.size, xa.size)].mean()
            - xb[rng.integers(0, xb.size, xb.size)].mean()
        )
    lo, hi = np.quantile(diffs, [alpha / 2, 1 - alpha / 2])
    return (point, float(lo), float(hi))


def bootstrap_proportion(
    per_run: Sequence[Tuple[int, int]],
    rng: np.random.Generator,
    n_boot: int = 2000,
    alpha: float = 0.05,
) -> ProportionEstimate:
    """Bootstrap CI for a success proportion pooled over clustered runs.

    Success counts from one seed's jobs are *not* independent (they
    share one channel and one adversary realization), so the Wilson
    interval over pooled jobs is anti-conservative.  This resamples the
    *runs* — ``per_run`` is a sequence of ``(successes, trials)`` pairs,
    one per seed — and returns the pooled estimate with percentile
    bounds, packaged as a :class:`ProportionEstimate` so callers can
    swap it in wherever a Wilson estimate is reported.
    """
    pairs = np.asarray(per_run, dtype=float)
    if pairs.ndim != 2 or pairs.shape[1] != 2 or pairs.shape[0] == 0:
        raise ValueError("per_run must be a non-empty sequence of (ok, n)")
    ok = int(pairs[:, 0].sum())
    n = int(pairs[:, 1].sum())
    if n <= 0:
        raise ValueError("total trials must be positive")
    n_runs = pairs.shape[0]
    rates = np.empty(n_boot)
    for i in range(n_boot):
        pick = pairs[rng.integers(0, n_runs, n_runs)]
        tot = pick[:, 1].sum()
        rates[i] = pick[:, 0].sum() / tot if tot > 0 else 1.0
    lo, hi = np.quantile(rates, [alpha / 2, 1 - alpha / 2])
    return ProportionEstimate(ok, n, float(lo), float(hi))
