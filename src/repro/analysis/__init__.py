"""Analysis toolkit: paper bounds, contention curves, statistics, tables."""

from repro.analysis.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    contention,
    lemma1_lower,
    lemma1_upper,
    lemma2_lower,
    lemma2_upper,
    success_probability_exact,
)
from repro.analysis.contention import (
    ContentionBucket,
    bucket_trace_by_contention,
    lemma2_envelope_check,
    simulate_success_probability,
)
from repro.analysis.stats import (
    ProportionEstimate,
    bootstrap_mean_diff,
    estimate_proportion,
    failure_exponent,
    wilson_interval,
)
from repro.analysis.capture import ScheduleCapture, StageCapture, StageTransition
from repro.analysis.lemmas import (
    LemmaCheck,
    check_lemma2,
    check_lemma4,
    check_lemma5,
    check_lemma8,
    check_theorem14,
)
from repro.analysis.export import (
    result_summary_dict,
    result_to_records,
    trace_to_records,
    write_csv,
    write_json,
)
from repro.analysis.tables import format_table, render_schedule
from repro.analysis.viz import (
    channel_timeline,
    contention_sparkline,
    utilization_profile,
)

__all__ = [
    "ScheduleCapture",
    "StageCapture",
    "StageTransition",
    "LemmaCheck",
    "check_lemma2",
    "check_lemma4",
    "check_lemma5",
    "check_lemma8",
    "check_theorem14",
    "channel_timeline",
    "contention_sparkline",
    "utilization_profile",
    "result_summary_dict",
    "result_to_records",
    "trace_to_records",
    "write_csv",
    "write_json",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "contention",
    "lemma1_lower",
    "lemma1_upper",
    "lemma2_lower",
    "lemma2_upper",
    "success_probability_exact",
    "ContentionBucket",
    "bucket_trace_by_contention",
    "lemma2_envelope_check",
    "simulate_success_probability",
    "ProportionEstimate",
    "bootstrap_mean_diff",
    "estimate_proportion",
    "failure_exponent",
    "wilson_interval",
    "format_table",
    "render_schedule",
]
