"""The per-run telemetry bundle and its JSONL artifact format.

A :class:`Telemetry` object travels through the stack as one optional
argument: :func:`repro.sim.engine.simulate` accepts ``telemetry=`` and
feeds it slot statistics, lifecycle events, and a per-run span;
:func:`repro.experiments.parallel.run_seeds`,
:class:`repro.experiments.sweep.Sweep`, and
:func:`repro.experiments.robustness.run_robustness` add scheduling-level
telemetry (cache hits/misses, retries, per-phase spans).  One object may
observe many runs — counters accumulate.

Nothing here is consulted by the engine unless a telemetry object is
attached, and attaching one never changes simulation *results*:
telemetry draws no randomness and takes no branches that protocols can
observe, so outcomes stay bit-identical to an un-instrumented run.

Artifact format (JSONL)
-----------------------
One JSON object per line, discriminated by ``type``:

* ``manifest`` — first line: schema version, label, creation time,
  free-form ``context`` (the CLI records its command line here);
* ``metric`` — one per registered metric (``metric`` is ``counter`` /
  ``gauge`` / ``histogram`` / ``timer``; histograms serialize count,
  nan-aware mean/max, and percentiles, never raw samples);
* ``span`` — one per recorded span (name, start offset, duration);
* ``event`` — one per lifecycle event, in emission order;
* ``summary`` — last line: totals plus per-kind event counts, so a
  reader can sanity-check truncation (a killed run is detectable by a
  missing summary line).

:func:`read_artifact` loads one artifact back into a
:class:`TelemetryArtifact`; ``repro obs`` renders any number of them
(see :mod:`repro.obs.report`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Union

from repro.obs.events import EventLog
from repro.obs.metrics import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.metrics import SimulationResult

__all__ = [
    "TELEMETRY_SCHEMA",
    "SpanRecord",
    "Telemetry",
    "TelemetryArtifact",
    "read_artifact",
]

#: Bump when the JSONL record layout changes incompatibly.
TELEMETRY_SCHEMA = 1


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One timed phase: name, start offset (s since telemetry start),
    and duration in seconds."""

    name: str
    start: float
    seconds: float

    def as_record(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
        }


class _SlotStats:
    """Per-telemetry slot accounting, kept as plain ints for speed."""

    __slots__ = (
        "total", "silence", "success", "collision", "jammed",
        "transmissions", "max_live",
    )

    def __init__(self) -> None:
        self.total = 0
        self.silence = 0
        self.success = 0
        self.collision = 0
        self.jammed = 0
        self.transmissions = 0
        self.max_live = 0


class Telemetry:
    """Metrics + events + spans for one or more simulation runs.

    Parameters
    ----------
    label:
        Free-form run label recorded in the manifest.
    context:
        Arbitrary JSON-serializable manifest payload (the CLI stores the
        command line, workload, and protocol here).

    Attributes
    ----------
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry`.
    events:
        The buffering :class:`~repro.obs.events.EventLog` protocols and
        the engine emit into.
    spans:
        Completed :class:`SpanRecord` phases, in completion order.
    """

    def __init__(
        self, label: str = "run", context: Optional[Dict[str, Any]] = None
    ) -> None:
        self.label = label
        self.context: Dict[str, Any] = dict(context or {})
        self.metrics = MetricsRegistry()
        self.events = EventLog()
        self.spans: List[SpanRecord] = []
        self.created = time.time()
        self._t0 = time.perf_counter()
        self._slots = _SlotStats()
        self._contention = Histogram("contention")
        self._run_started_at = 0.0

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time one phase; records a span and updates the named timer."""
        start = time.perf_counter()
        try:
            yield
        finally:
            now = time.perf_counter()
            self.spans.append(
                SpanRecord(name, start - self._t0, now - start)
            )
            self.metrics.timer(f"time.{name}").add(now - start)

    def add_span(self, name: str, seconds: float) -> None:
        """Record an externally timed phase (engine-internal use)."""
        now = time.perf_counter()
        self.spans.append(
            SpanRecord(name, now - seconds - self._t0, seconds)
        )
        self.metrics.timer(f"time.{name}").add(seconds)

    # -- engine hooks --------------------------------------------------------
    #
    # The engine calls these three methods (and nothing else).  They are
    # deliberately free of any engine imports so repro.obs stays a leaf
    # package the whole stack can depend on.

    def on_run_start(
        self,
        *,
        seed: int,
        n_jobs: int,
        horizon: int,
        jammer: Optional[Any] = None,
        faults: Optional[Any] = None,
    ) -> None:
        """One ``simulate()`` call is starting."""
        self._run_started_at = time.perf_counter()
        self.metrics.counter("runs.total").inc()
        self.events.emit(
            "run.started", -1, -1, seed=seed, n_jobs=n_jobs, horizon=horizon
        )
        if jammer is not None:
            self.metrics.counter("runs.jammed").inc()
        if faults is not None:
            self.metrics.counter("faults.runs_with_plan").inc()
            describe = getattr(faults, "describe", None)
            self.events.emit(
                "fault.plan_bound",
                -1,
                -1,
                plan=describe() if callable(describe) else repr(faults),
            )

    def record_slot(
        self, n_tx: int, jammed: bool, n_live: int, contention: float
    ) -> None:
        """One simulated slot's channel statistics (engine hot loop).

        ``contention`` is the summed live transmit probability, NaN when
        no live protocol reported one this slot.
        """
        s = self._slots
        s.total += 1
        s.transmissions += n_tx
        if n_live > s.max_live:
            s.max_live = n_live
        if jammed:
            s.jammed += 1
            s.collision += 1
        elif n_tx == 0:
            s.silence += 1
        elif n_tx == 1:
            s.success += 1
        else:
            s.collision += 1
        if contention == contention:  # nan-free fast check
            self._contention.values.append(contention)

    def on_run_end(self, result: "SimulationResult") -> None:
        """One ``simulate()`` call finished; fold per-run stats in."""
        m = self.metrics
        s = self._slots
        m.counter("engine.slots").inc(s.total)
        m.counter("channel.silence").inc(s.silence)
        m.counter("channel.success").inc(s.success)
        m.counter("channel.collision").inc(s.collision)
        m.counter("channel.jammed").inc(s.jammed)
        m.counter("engine.transmissions").inc(s.transmissions)
        m.gauge("engine.max_live").max(s.max_live)
        self._slots = _SlotStats()

        hist = m.histogram("contention")
        if self._contention.values:
            hist.values.extend(self._contention.values)
            self._contention = Histogram("contention")

        n_ok = result.n_succeeded
        n_all = len(result)
        m.counter("jobs.total").inc(n_all)
        m.counter("jobs.succeeded").inc(n_ok)
        gave_up = sum(
            1 for o in result.outcomes if o.status.name == "GAVE_UP"
        )
        m.counter("jobs.gave_up").inc(gave_up)
        m.counter("jobs.deadline_missed").inc(n_all - n_ok - gave_up)
        energy = 0
        energy_jammed = 0
        lat = m.histogram("latency")
        for o in result.outcomes:
            energy += o.transmissions
            energy_jammed += o.jammed_transmissions
            if o.succeeded:
                lat.observe(o.latency)
        m.counter("jobs.energy").inc(energy)
        m.counter("jobs.energy_jammed").inc(energy_jammed)
        seconds = time.perf_counter() - self._run_started_at
        self.add_span("simulate", seconds)
        self.events.emit(
            "run.finished",
            -1,
            -1,
            slots=result.slots_simulated,
            succeeded=n_ok,
            jobs=n_all,
        )

    # -- cache / scheduler hooks --------------------------------------------

    def record_cache(self, hits: int, misses: int, puts: int) -> None:
        """Fold one batch's cache activity in (deltas, not totals)."""
        if hits:
            self.metrics.counter("cache.hits").inc(hits)
        if misses:
            self.metrics.counter("cache.misses").inc(misses)
        if puts:
            self.metrics.counter("cache.puts").inc(puts)

    # -- serialization -------------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        return {
            "type": "manifest",
            "schema": TELEMETRY_SCHEMA,
            "label": self.label,
            "created": self.created,
            "context": self.context,
        }

    def summary(self) -> Dict[str, Any]:
        return {
            "type": "summary",
            "events": len(self.events),
            "metrics": len(self.metrics),
            "spans": len(self.spans),
            "event_counts": dict(sorted(self.events.counts.items())),
        }

    def as_records(self) -> List[Dict[str, Any]]:
        """Every JSONL line of the artifact, in order."""
        records: List[Dict[str, Any]] = [self.manifest()]
        records.extend(self.metrics.as_records())
        records.extend(s.as_record() for s in self.spans)
        records.extend(self.events.as_records())
        records.append(self.summary())
        return records

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Serialize the full artifact; returns the written path."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as f:
            for rec in self.as_records():
                f.write(json.dumps(rec) + "\n")
        return path


@dataclass
class TelemetryArtifact:
    """One telemetry artifact loaded back from JSONL.

    Attributes mirror the line types; ``summary`` is ``None`` when the
    artifact was truncated (writer died before the final line).
    """

    path: str
    manifest: Dict[str, Any] = field(default_factory=dict)
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None

    def metric(self, name: str) -> Optional[Dict[str, Any]]:
        """The metric record with this name, or None."""
        for m in self.metrics:
            if m.get("name") == name:
                return m
        return None

    def counter_value(self, name: str, default: int = 0) -> int:
        m = self.metric(name)
        return int(m["value"]) if m and m.get("metric") == "counter" else default

    def event_counts(self) -> Dict[str, int]:
        """``kind -> count`` (from the summary line when present)."""
        if self.summary and "event_counts" in self.summary:
            return dict(self.summary["event_counts"])
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e["kind"]] = counts.get(e["kind"], 0) + 1
        return counts


def read_artifact(path: Union[str, Path]) -> TelemetryArtifact:
    """Load one JSONL artifact (tolerates a truncated final line)."""
    art = TelemetryArtifact(path=str(path))
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue  # truncated tail from a killed writer
        kind = rec.get("type")
        if kind == "manifest":
            art.manifest = rec
        elif kind == "metric":
            art.metrics.append(rec)
        elif kind == "span":
            art.spans.append(rec)
        elif kind == "event":
            art.events.append(rec)
        elif kind == "summary":
            art.summary = rec
    return art
