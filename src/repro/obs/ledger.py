"""The run ledger: a persistent, append-only index of every run.

PR 3's telemetry is excellent *inside* one run; the ledger is the
cross-run memory.  Every top-level invocation — ``run_seeds``, a
``Sweep``, a certification, a streaming run, a verification battery, a
plain ``simulate`` from the CLI — can append one :class:`RunRecord` to
a JSONL ledger file, carrying:

* a short random ``run_id`` plus wall-clock start / duration;
* the configuration (a human-readable dict *and* its
  :func:`~repro.cache.stable_digest`, so "same config, different
  outcome" is one string comparison);
* ``ENGINE_VERSION`` / ``KERNEL_VERSION``, so regressions across a
  version bump are attributable;
* outcome counters (jobs, successes, sheds, watchdog trips, ...) and
  artifact paths (telemetry JSONL, reports, checkpoints).

Durability contract (mirrors the streaming checkpoints of PR 7):

* **Appends are a single atomic write.**  One record is one
  ``os.write`` on an ``O_APPEND`` descriptor, so concurrent appenders
  (``run_seeds`` worker processes, parallel sweeps sharing one ledger)
  interleave whole lines, never fragments.
* **Torn tails never poison the index.**  A crash mid-write can leave
  a partial final line; :meth:`RunLedger.read` skips any line that does
  not parse, and the next append heals a missing trailing newline
  before writing its own record.
* **The clean path costs nothing.**  Nothing in the simulation stack
  imports this module unless a ledger is attached; ``ledger=None``
  (the default everywhere) takes a single ``is None`` branch.

``repro runs list|show|compare`` is the CLI over this file (see
:mod:`repro.cli`); :func:`compare_runs` computes the config/metric
diff between two records.
"""

from __future__ import annotations

import json
import os
import socket
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

__all__ = [
    "LEDGER_SCHEMA",
    "RunLedger",
    "RunRecord",
    "append_jsonl_atomic",
    "as_ledger",
    "compare_runs",
    "default_ledger_path",
    "new_run_id",
    "read_jsonl_tolerant",
]

#: Bump when the record layout changes incompatibly.  Readers keep
#: loading older records (fields are defaulted), so a bump marks intent,
#: not a breaking purge.
LEDGER_SCHEMA = 1

#: Environment variable naming the default ledger file.
LEDGER_ENV = "REPRO_LEDGER"


def default_ledger_path() -> Path:
    """``$REPRO_LEDGER`` or ``.repro/ledger.jsonl`` in the cwd."""
    env = os.environ.get(LEDGER_ENV, "")
    if env:
        return Path(env)
    return Path(".repro") / "ledger.jsonl"


def new_run_id() -> str:
    """A short, collision-resistant run id (12 hex chars)."""
    return os.urandom(6).hex()


def append_jsonl_atomic(path: Union[str, Path], record: Dict[str, Any]) -> None:
    """Append one JSON record to ``path`` as a single atomic write.

    The durability contract shared by the run ledger and the campaign
    state file (:mod:`repro.campaign.state`): one record is one
    ``os.write`` on an ``O_APPEND`` descriptor, so concurrent appenders
    interleave whole lines, never fragments — and when the existing file
    lacks a trailing newline (a torn tail from a killed writer), the
    healing newline is folded into the same write so the append stays
    atomic under concurrency.
    """
    path = Path(path)
    payload = (json.dumps(record) + "\n").encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        size = path.stat().st_size
    except OSError:
        size = 0
    if size > 0:
        with open(path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                payload = b"\n" + payload
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)


def read_jsonl_tolerant(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every parseable JSON-object line of ``path``, in file order.

    A missing file reads as empty; a torn final line (or foreign
    garbage) is skipped, never fatal — the reader half of the
    :func:`append_jsonl_atomic` contract.
    """
    records: List[Dict[str, Any]] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(rec, dict):
            records.append(rec)
    return records


@dataclass
class RunRecord:
    """One ledger line: who ran what, how long, and how it went.

    ``config`` is the human-readable configuration summary;
    ``config_digest`` is its stable content address (or, when the
    caller has a richer key — e.g. the streaming engine's resume key —
    the digest of that).  ``counters`` holds flat outcome numbers;
    ``artifacts`` lists paths this run wrote (telemetry, reports,
    checkpoints) so ``repro runs show`` can point back at them.
    """

    run_id: str
    kind: str
    started: float
    wall_seconds: float
    status: str = "ok"
    config: Dict[str, Any] = field(default_factory=dict)
    config_digest: str = ""
    engine_version: Optional[int] = None
    kernel_version: Optional[int] = None
    counters: Dict[str, Any] = field(default_factory=dict)
    watchdog_trips: int = 0
    artifacts: List[str] = field(default_factory=list)
    context: Dict[str, Any] = field(default_factory=dict)
    hostname: str = ""
    pid: int = 0

    def as_record(self) -> Dict[str, Any]:
        return {
            "type": "run",
            "schema": LEDGER_SCHEMA,
            "run_id": self.run_id,
            "kind": self.kind,
            "started": self.started,
            "wall_seconds": self.wall_seconds,
            "status": self.status,
            "config": self.config,
            "config_digest": self.config_digest,
            "engine_version": self.engine_version,
            "kernel_version": self.kernel_version,
            "counters": self.counters,
            "watchdog_trips": self.watchdog_trips,
            "artifacts": list(self.artifacts),
            "context": self.context,
            "hostname": self.hostname,
            "pid": self.pid,
        }

    @classmethod
    def from_record(cls, rec: Dict[str, Any]) -> "RunRecord":
        return cls(
            run_id=str(rec.get("run_id", "")),
            kind=str(rec.get("kind", "?")),
            started=float(rec.get("started", 0.0)),
            wall_seconds=float(rec.get("wall_seconds", 0.0)),
            status=str(rec.get("status", "ok")),
            config=dict(rec.get("config") or {}),
            config_digest=str(rec.get("config_digest", "")),
            engine_version=rec.get("engine_version"),
            kernel_version=rec.get("kernel_version"),
            counters=dict(rec.get("counters") or {}),
            watchdog_trips=int(rec.get("watchdog_trips", 0)),
            artifacts=list(rec.get("artifacts") or []),
            context=dict(rec.get("context") or {}),
            hostname=str(rec.get("hostname", "")),
            pid=int(rec.get("pid", 0)),
        )


class _Tracker:
    """Mutable scratchpad handed out by :meth:`RunLedger.track`."""

    def __init__(self) -> None:
        self.config: Dict[str, Any] = {}
        self.config_digest: str = ""
        self.counters: Dict[str, Any] = {}
        self.watchdog_trips: int = 0
        self.artifacts: List[str] = []
        self.context: Dict[str, Any] = {}
        self.engine_version: Optional[int] = None
        self.kernel_version: Optional[int] = None
        self.run_id: str = ""

    def artifact(self, path: Union[str, Path]) -> None:
        """Register one artifact path (duplicates collapsed)."""
        s = str(path)
        if s and s not in self.artifacts:
            self.artifacts.append(s)


class RunLedger:
    """An append-only JSONL index of runs (see the module docstring)."""

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self.path = Path(path) if path is not None else default_ledger_path()

    # -- writing -------------------------------------------------------------

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record as a single atomic write; returns it.

        The record gets a fresh ``run_id`` / hostname / pid when the
        caller left them blank.  If the existing file lacks a trailing
        newline (a torn tail from a killed writer), the healing newline
        is folded into the same ``os.write`` so the append stays atomic
        under concurrency.
        """
        if not record.run_id:
            record.run_id = new_run_id()
        if not record.hostname:
            record.hostname = socket.gethostname()
        if not record.pid:
            record.pid = os.getpid()
        append_jsonl_atomic(self.path, record.as_record())
        return record

    @contextmanager
    def track(
        self,
        kind: str,
        *,
        config: Optional[Dict[str, Any]] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> Iterator[_Tracker]:
        """Time a run and append its record on exit.

        The yielded tracker collects counters / artifacts / versions as
        the run progresses.  An exception flips the record's status to
        ``"failed"`` (the exception propagates); the record is appended
        either way, so crashed runs stay visible in ``repro runs list``.
        """
        tracker = _Tracker()
        tracker.config = dict(config or {})
        tracker.context = dict(context or {})
        tracker.run_id = new_run_id()
        started = time.time()
        t0 = time.perf_counter()
        status = "ok"
        try:
            yield tracker
        except BaseException:
            status = "failed"
            raise
        finally:
            self.append(
                RunRecord(
                    run_id=tracker.run_id,
                    kind=kind,
                    started=started,
                    wall_seconds=time.perf_counter() - t0,
                    status=status,
                    config=tracker.config,
                    config_digest=tracker.config_digest,
                    engine_version=tracker.engine_version,
                    kernel_version=tracker.kernel_version,
                    counters=tracker.counters,
                    watchdog_trips=tracker.watchdog_trips,
                    artifacts=tracker.artifacts,
                    context=tracker.context,
                )
            )

    # -- reading -------------------------------------------------------------

    def read(self) -> List[RunRecord]:
        """Every parseable record, in file order (torn tail skipped)."""
        return [
            RunRecord.from_record(rec)
            for rec in read_jsonl_tolerant(self.path)
            if rec.get("type") == "run"
        ]

    def find(self, run_id: str) -> RunRecord:
        """The record whose id equals or uniquely starts with ``run_id``."""
        records = self.read()
        exact = [r for r in records if r.run_id == run_id]
        if exact:
            return exact[-1]
        prefixed = [r for r in records if r.run_id.startswith(run_id)]
        if len(prefixed) == 1:
            return prefixed[0]
        if not prefixed:
            raise KeyError(f"no ledger entry matches run id {run_id!r}")
        raise KeyError(
            f"run id {run_id!r} is ambiguous: matches "
            f"{[r.run_id for r in prefixed]}"
        )

    def __len__(self) -> int:
        return len(self.read())


def as_ledger(
    knob: Union[None, bool, str, Path, RunLedger],
) -> Optional[RunLedger]:
    """Map the ``ledger=`` knob onto a :class:`RunLedger` (or None).

    Mirrors :func:`repro.cache.as_cache`: ``None``/``False`` disables,
    ``True`` uses :func:`default_ledger_path`, a path selects an
    explicit file, an existing ledger passes through.
    """
    if knob is None or knob is False:
        return None
    if knob is True:
        return RunLedger()
    if isinstance(knob, RunLedger):
        return knob
    return RunLedger(knob)


# -- comparing two runs ------------------------------------------------------


def _flat_numbers(counters: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in counters.items():
        if isinstance(value, bool):
            out[key] = float(value)
        elif isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def compare_runs(a: RunRecord, b: RunRecord) -> Dict[str, Any]:
    """A structured diff of two ledger entries.

    Returns a dict with:

    * ``same_config`` — whether the config digests match;
    * ``config`` — ``key -> [a, b]`` for keys whose values differ
      (missing keys show as ``None``);
    * ``versions`` — engine/kernel version pairs when they differ;
    * ``counters`` — ``key -> {a, b, delta, ratio}`` for every numeric
      counter present in either record;
    * ``wall_seconds`` — ``{a, b, delta, ratio}``.
    """
    config_diff: Dict[str, List[Any]] = {}
    for key in sorted(set(a.config) | set(b.config)):
        va, vb = a.config.get(key), b.config.get(key)
        if va != vb:
            config_diff[key] = [va, vb]
    versions: Dict[str, List[Any]] = {}
    if a.engine_version != b.engine_version:
        versions["engine_version"] = [a.engine_version, b.engine_version]
    if a.kernel_version != b.kernel_version:
        versions["kernel_version"] = [a.kernel_version, b.kernel_version]
    na, nb = _flat_numbers(a.counters), _flat_numbers(b.counters)
    counter_diff: Dict[str, Dict[str, Optional[float]]] = {}
    for key in sorted(set(na) | set(nb)):
        va2, vb2 = na.get(key), nb.get(key)
        entry: Dict[str, Optional[float]] = {"a": va2, "b": vb2}
        if va2 is not None and vb2 is not None:
            entry["delta"] = vb2 - va2
            entry["ratio"] = vb2 / va2 if va2 else None
        counter_diff[key] = entry
    wall: Dict[str, Optional[float]] = {
        "a": a.wall_seconds,
        "b": b.wall_seconds,
        "delta": b.wall_seconds - a.wall_seconds,
        "ratio": (
            b.wall_seconds / a.wall_seconds if a.wall_seconds else None
        ),
    }
    return {
        "a": a.run_id,
        "b": b.run_id,
        "kinds": [a.kind, b.kind],
        "same_config": bool(
            a.config_digest and a.config_digest == b.config_digest
        ),
        "config": config_diff,
        "versions": versions,
        "counters": counter_diff,
        "wall_seconds": wall,
    }


def summarize_records(
    records: Sequence[RunRecord],
) -> List[List[Any]]:
    """Table rows for ``repro runs list`` (newest last)."""
    rows: List[List[Any]] = []
    for r in records:
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(r.started))
        headline = ""
        for key in (
            "success_rate",
            "jobs",
            "points",
            "cells",
            "jobs_succeeded",
            "released",
            "checks",
        ):
            if key in r.counters:
                headline = f"{key}={r.counters[key]}"
                break
        rows.append(
            [
                r.run_id,
                r.kind,
                when,
                round(r.wall_seconds, 3),
                r.status,
                r.config_digest[:12],
                headline,
            ]
        )
    return rows
