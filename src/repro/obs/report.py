"""Render ``repro obs`` reports from telemetry artifacts.

Turns one or more JSONL artifacts (see :mod:`repro.obs.telemetry`) into
the plain-text summary the CLI prints: top metrics, per-phase timing,
event counts grouped by protocol family, leader-election churn,
contention percentiles, and cache / retry / fault counters.  Pure
functions over loaded :class:`~repro.obs.telemetry.TelemetryArtifact`
objects — no simulation imports — so reports can be generated anywhere
the artifact travels.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.obs.events import family_of
from repro.obs.telemetry import TelemetryArtifact

__all__ = ["jsonable", "render_report", "render_reports", "report_data"]

#: Leader-churn event kinds, in display order.
_CHURN_KINDS = (
    "punctual.leader_elected",
    "punctual.leader_deposed",
    "punctual.leader_handover",
    "punctual.leader_abdicated",
    "punctual.leader_lost",
    "punctual.anarchist_release",
)


def _fmt(value: Any) -> Any:
    if isinstance(value, float):
        if value != value:
            return "nan"
        return round(value, 4)
    return value


def _num(value: Any) -> float:
    """Coerce a metric value to float; None/garbage count as 0.

    Artifacts are read tolerantly (truncated lines are skipped, foreign
    records pass through), so a metric record may carry ``null`` or a
    non-numeric value — sorting must not crash on it.
    """
    try:
        f = float(value)
    except (TypeError, ValueError):
        return 0.0
    return 0.0 if f != f else f


def _float_or_nan(value: Any) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return float("nan")


def jsonable(value: Any) -> Any:
    """Strict-JSON copy: non-finite floats become ``None``.

    ``json.dumps`` happily emits bare ``NaN`` tokens, which downstream
    consumers (``jq``, strict parsers) reject — and an all-NaN histogram
    (every observation skipped) is a legal artifact.
    """
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else None
    if isinstance(value, dict):
        return {k: jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


def _top_metrics(art: TelemetryArtifact, limit: int = 14) -> str:
    scalars = [
        m for m in art.metrics if m.get("metric") in ("counter", "gauge")
    ]
    scalars.sort(key=lambda m: (-_num(m.get("value")), str(m.get("name"))))
    rows = [
        [m.get("name"), m["metric"], _fmt(m.get("value", 0))]
        for m in scalars[:limit]
    ]
    if not rows:
        return "(no metrics recorded)"
    return format_table(
        ["metric", "type", "value"], rows, title="top metrics"
    )


def _timing_table(art: TelemetryArtifact) -> str:
    """Aggregate spans by name into the per-phase timing table."""
    agg: Dict[str, List[float]] = {}
    for s in art.spans:
        agg.setdefault(s["name"], []).append(float(s["seconds"]))
    if not agg:
        return "(no spans recorded)"
    rows = []
    for name in sorted(agg, key=lambda n: -sum(agg[n])):
        vals = agg[name]
        total = sum(vals)
        rows.append(
            [name, len(vals), _fmt(total), _fmt(total / len(vals)),
             _fmt(max(vals))]
        )
    return format_table(
        ["phase", "count", "total s", "mean s", "max s"],
        rows,
        title="per-phase timing",
    )


def _event_table(art: TelemetryArtifact) -> str:
    counts = art.event_counts()
    if not counts:
        return "(no events recorded)"
    rows = []
    for kind in sorted(counts):
        rows.append([family_of(kind), kind, counts[kind]])
    return format_table(
        ["family", "event", "count"],
        rows,
        title="lifecycle events by protocol family",
    )


def _churn_lines(art: TelemetryArtifact) -> Optional[str]:
    counts = art.event_counts()
    if not any(family_of(k) == "punctual" for k in counts):
        return None
    parts = [
        f"{kind.split('.', 1)[1]}={counts.get(kind, 0)}"
        for kind in _CHURN_KINDS
    ]
    return "leader-election churn: " + ", ".join(parts)


def _contention_lines(art: TelemetryArtifact) -> str:
    m = art.metric("contention")
    if m is None or not m.get("count"):
        return "contention: (no protocol reported transmit probabilities)"
    pct = m.get("percentiles") or {}
    parts = [
        f"p{str(q).split('.')[0]}={_fmt(_float_or_nan(v))}"
        for q, v in pct.items()
    ]
    parts.append(f"max={_fmt(_float_or_nan(m.get('max')))}")
    parts.append(f"mean={_fmt(_float_or_nan(m.get('mean')))}")
    return (
        f"contention C(t) over {m['count']} slots: " + ", ".join(parts)
    )


def _cache_fault_lines(art: TelemetryArtifact) -> str:
    hits = art.counter_value("cache.hits")
    misses = art.counter_value("cache.misses")
    puts = art.counter_value("cache.puts")
    retries = art.counter_value("runs.retries")
    failures = art.counter_value("runs.worker_failures")
    faulted = art.counter_value("faults.runs_with_plan")
    lines = [
        f"cache: {hits} hits, {misses} misses, {puts} writes",
        f"retries: {retries} rounds, {failures} worker failures",
    ]
    plans = [
        e.get("data", {}).get("plan")
        for e in art.events
        if e.get("kind") == "fault.plan_bound"
    ]
    if faulted or plans:
        uniq = sorted({p for p in plans if p})
        lines.append(
            f"faults: {faulted} runs under a plan"
            + (f" ({'; '.join(uniq)})" if uniq else "")
        )
    else:
        lines.append("faults: none injected")
    return "\n".join(lines)


def render_report(art: TelemetryArtifact) -> str:
    """The full plain-text report for one artifact."""
    man = art.manifest or {}
    header = [f"== telemetry: {art.path} =="]
    if man:
        label = man.get("label", "run")
        header.append(f"label: {label}  (schema {man.get('schema', '?')})")
        ctx = man.get("context") or {}
        for key in sorted(ctx):
            header.append(f"{key}: {ctx[key]}")
    if art.summary is None:
        header.append(
            "WARNING: no summary line — artifact looks truncated"
        )
    sections = [
        "\n".join(header),
        _top_metrics(art),
        _timing_table(art),
        _event_table(art),
    ]
    churn = _churn_lines(art)
    if churn is not None:
        sections.append(churn)
    sections.append(_contention_lines(art))
    sections.append(_cache_fault_lines(art))
    return "\n\n".join(sections)


def render_reports(artifacts: Sequence[TelemetryArtifact]) -> str:
    """Reports for several artifacts, plus a combined event tally.

    An empty artifact list renders a well-formed one-line report (so
    scripted callers piping the output never see a zero-byte file).
    """
    if not artifacts:
        return "== telemetry ==\n(no artifacts found)"
    parts = [render_report(a) for a in artifacts]
    if len(artifacts) > 1:
        combined: Dict[str, int] = {}
        for a in artifacts:
            for kind, n in a.event_counts().items():
                combined[kind] = combined.get(kind, 0) + n
        rows = [[k, combined[k]] for k in sorted(combined)]
        parts.append(
            format_table(
                ["event", "count"],
                rows,
                title=f"combined events across {len(artifacts)} artifacts",
            )
        )
    return "\n\n".join(parts)


def report_data(art: TelemetryArtifact) -> Dict[str, Any]:
    """A JSON-serializable summary of one artifact (``repro obs --json``).

    The machine-readable twin of :func:`render_report`: manifest,
    scalar metrics, aggregated span timings, event counts, the
    contention summary record, and the trailing summary line — enough
    for CI and the campaign layer to consume without scraping text.
    """
    spans: Dict[str, Dict[str, float]] = {}
    for s in art.spans:
        name = str(s.get("name"))
        agg = spans.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        secs = _float_or_nan(s.get("seconds"))
        if secs == secs:
            agg["count"] += 1
            agg["total_s"] += secs
            agg["max_s"] = max(agg["max_s"], secs)
    scalars = {
        str(m.get("name")): jsonable(m.get("value"))
        for m in art.metrics
        if m.get("metric") in ("counter", "gauge")
    }
    return {
        "path": str(art.path),
        "manifest": jsonable(art.manifest or {}),
        "truncated": art.summary is None,
        "metrics": scalars,
        "histograms": [
            jsonable(m)
            for m in art.metrics
            if m.get("metric") == "histogram"
        ],
        "spans": spans,
        "events": art.event_counts(),
        "summary": jsonable(art.summary),
    }
