"""Memory-bounded stream summaries: reservoir samples and quantile sketches.

The closed-instance observability stack keeps *everything* — one
:class:`~repro.sim.metrics.JobOutcome` per job, one ``SlotRecord`` per
slot — which is exactly what an open-arrival streaming run cannot
afford: a sustained-load run processes millions of jobs and must hold
O(1) telemetry state.  This module provides the two bounded summaries
the streaming engine uses instead:

* :class:`ReservoirSampler` — a uniform sample of a stream (Algorithm R)
  with a deterministic private RNG, so runs reproduce bit-identically
  and checkpoints can snapshot the sampler mid-stream.  Used for
  *examples*: a representative set of raw latencies, shed jobs, etc.
* :class:`QuantileSketch` — a logarithmic-bucket quantile sketch in the
  style of DDSketch: every quantile estimate is within a documented
  *relative* error ``alpha`` of an actual stream value at that rank,
  the bucket count is bounded by the dynamic range (a few hundred
  buckets for any realistic latency range), and two sketches merge by
  adding bucket counts — which is what the sharded runner does.

Both are nan-safe in the same sense as :mod:`repro.obs.metrics`: NaN
inputs are ignored, and summaries of an empty stream are NaN rather
than an exception.  Both pickle, so checkpoints capture them exactly.

Error bound (:class:`QuantileSketch`)
-------------------------------------
Positive values are mapped to bucket ``i = ceil(log_gamma(x))`` with
``gamma = (1 + alpha) / (1 - alpha)``; the bucket's representative
value ``2 * gamma^i / (gamma + 1)`` is within a factor ``1 ± alpha`` of
every value stored in it.  :meth:`QuantileSketch.quantile` therefore
returns an estimate ``v`` such that there is a true stream value ``x``
of rank ``⌈q·n⌉`` with ``|v - x| <= alpha * x``.  The estimate is
additionally clamped to the exact observed ``[min, max]``, so extreme
quantiles of tiny streams never leave the data range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["ReservoirSampler", "QuantileSketch"]


class ReservoirSampler:
    """A uniform fixed-size sample of an unbounded stream (Algorithm R).

    Parameters
    ----------
    capacity:
        Maximum number of retained samples.
    seed:
        Seeds the sampler's private generator.  Replacement decisions
        draw *only* from this stream, so attaching a sampler to a
        simulation never perturbs simulation randomness, and equal
        seeds replay identical retention decisions.
    """

    __slots__ = ("capacity", "_rng", "_items", "n_offered")

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise InvalidParameterError(
                f"capacity must be positive, got {capacity}"
            )
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._items: List[float] = []
        self.n_offered = 0

    def offer(self, value: float) -> None:
        """Offer one value; NaN is ignored (nan-safe like repro.obs)."""
        v = float(value)
        if math.isnan(v):
            return
        self.n_offered += 1
        if len(self._items) < self.capacity:
            self._items.append(v)
            return
        j = int(self._rng.integers(0, self.n_offered))
        if j < self.capacity:
            self._items[j] = v

    def extend(self, values: Sequence[float]) -> None:
        for v in values:
            self.offer(v)

    @property
    def values(self) -> np.ndarray:
        """The current sample (order is an implementation detail)."""
        return np.asarray(self._items, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._items)

    def quantile(self, q: float) -> float:
        """Empirical quantile of the sample (NaN when empty)."""
        if not self._items:
            return float("nan")
        return float(np.quantile(np.asarray(self._items), q))

    def merge(self, other: "ReservoirSampler") -> None:
        """Fold ``other`` into this sampler (shard merge).

        Each retained slot is drawn from the two reservoirs with
        probability proportional to their offered counts, which keeps
        the merged reservoir an (approximately) uniform sample of the
        concatenated streams.  Draws come from *this* sampler's private
        stream, so merges are deterministic given merge order.
        """
        if other.n_offered == 0:
            return
        if self.n_offered == 0:
            self._items = list(other._items)
            self.n_offered = other.n_offered
            return
        total = self.n_offered + other.n_offered
        pool_self = list(self._items)
        pool_other = list(other._items)
        k = min(self.capacity, len(pool_self) + len(pool_other))
        merged: List[float] = []
        for _ in range(k):
            take_self = (
                pool_self
                and (
                    not pool_other
                    or self._rng.random() < self.n_offered / total
                )
            )
            pool = pool_self if take_self else pool_other
            j = int(self._rng.integers(0, len(pool)))
            merged.append(pool.pop(j))
        self._items = merged
        self.n_offered = total

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ReservoirSampler(capacity={self.capacity}, "
            f"held={len(self._items)}, offered={self.n_offered})"
        )


@dataclass
class QuantileSketch:
    """A mergeable log-bucket quantile sketch with relative error ``alpha``.

    See the module docstring for the error bound.  State is a dict of
    bucket counts plus exact ``count`` / ``min`` / ``max``, so memory is
    bounded by the dynamic range of the stream, not its length, and two
    sketches with the same ``alpha`` merge exactly (bucket counts add).
    """

    alpha: float = 0.01
    _buckets: Dict[int, int] = field(default_factory=dict)
    count: int = 0
    zero_count: int = 0
    _min: float = math.inf
    _max: float = -math.inf

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise InvalidParameterError(
                f"alpha must be in (0, 1), got {self.alpha}"
            )
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)

    def __getstate__(self):
        return {
            "alpha": self.alpha,
            "_buckets": self._buckets,
            "count": self.count,
            "zero_count": self.zero_count,
            "_min": self._min,
            "_max": self._max,
        }

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)

    def offer(self, value: float) -> None:
        """Offer one value; NaN is ignored, non-positive values go to a
        dedicated zero bucket (latencies are >= 1, so this is a guard,
        not a hot path)."""
        v = float(value)
        if math.isnan(v):
            return
        self.count += 1
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        if v <= 0.0:
            self.zero_count += 1
            return
        idx = math.ceil(math.log(v) / self._log_gamma)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def extend(self, values: Sequence[float]) -> None:
        for v in values:
            self.offer(v)

    @property
    def n_buckets(self) -> int:
        """Occupied buckets — the sketch's memory footprint."""
        return len(self._buckets)

    def quantile(self, q: float) -> float:
        """The q-quantile estimate (NaN when the sketch is empty)."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return min(0.0, self._max)
        seen = self.zero_count
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                g = self._gamma
                est = 2.0 * (g ** idx) / (g + 1.0)
                return float(min(max(est, self._min), self._max))
        return float(self._max)

    def quantiles(self, qs: Sequence[float]) -> Dict[float, float]:
        return {q: self.quantile(q) for q in qs}

    def merge(self, other: "QuantileSketch") -> None:
        """Add ``other``'s buckets into this sketch (exact for equal alpha)."""
        if not math.isclose(self.alpha, other.alpha):
            raise InvalidParameterError(
                f"cannot merge sketches with alpha {self.alpha} and "
                f"{other.alpha}"
            )
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        self.count += other.count
        self.zero_count += other.zero_count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"QuantileSketch(alpha={self.alpha:g}, count={self.count}, "
            f"buckets={self.n_buckets})"
        )
