"""The performance observatory: trended benchmarks with regression gates.

``BENCH_engine.json`` used to be a one-shot snapshot — each benchmark
run overwrote the last, so a kernel that quietly lost 30% between PRs
was invisible until the coarse static floor in ``perf_smoke.py``
(set 10× under the day-one numbers) finally tripped.  This module turns
it into a trajectory:

* :func:`environment_fingerprint` — hostname / python / numpy / cpu
  provenance, because a slots/second figure without its machine is
  silently misleading across hosts;
* :func:`measure_smoke` — per-repeat throughput samples for the smoke
  labels (engine + the three full-protocol kernels), *samples*, not a
  single best-of, so the regression test has a distribution to resample;
* :func:`append_history` — grows a timestamped ``history`` list inside
  ``BENCH_engine.json`` (capped, oldest dropped), each entry carrying
  the fingerprint and ``ENGINE_VERSION`` / ``KERNEL_VERSION``;
* :func:`detect_regressions` — compares today's samples against recent
  same-host history with the run-clustered bootstrap machinery from
  :mod:`repro.analysis.stats`: a label is flagged only when the CI on
  ``mean(now) − mean(history)`` excludes zero from below *and* the
  relative drop beats a noise threshold;
* :func:`trend_floor` — the trend-aware gate ``perf_smoke.py`` uses in
  place of its static constants: ``max(static, fraction × trailing
  median)`` once enough history exists.

``repro perf`` is the CLI over all of this (measure → append → gate).
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.stats import bootstrap_mean_diff

__all__ = [
    "DEFAULT_BENCH_PATH",
    "append_history",
    "detect_regressions",
    "environment_fingerprint",
    "history_samples",
    "load_bench",
    "measure_smoke",
    "trend_floor",
]

#: The committed trajectory file at the repository root.
DEFAULT_BENCH_PATH = "BENCH_engine.json"

#: History entries kept per file; oldest beyond this are dropped.
MAX_HISTORY = 200

#: Minimum same-label history entries before trend gates activate
#: (below this, static floors and "no regression" verdicts apply).
MIN_TREND_HISTORY = 3

#: A drop smaller than this fraction of the historical mean is treated
#: as machine noise even when statistically significant.
REL_DROP_THRESHOLD = 0.15

#: Trend floor = this fraction of the trailing median (CI runners are
#: noisy; 2× headroom under the median only trips on real cliffs).
TREND_FLOOR_FRACTION = 0.5


def environment_fingerprint() -> Dict[str, Any]:
    """Provenance for one benchmark entry: where these numbers came from."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


# -- measurement --------------------------------------------------------------


def measure_smoke(repeats: int = 3) -> Dict[str, List[float]]:
    """Per-repeat slots/second samples for the smoke labels.

    Same instances as ``benchmarks/perf_smoke.py``; unlike the smoke
    script this keeps every repeat (the bootstrap needs samples, not a
    best-of).  Imported lazily so merely loading the obs package never
    pulls the simulation stack.
    """
    from repro.core.aligned import aligned_factory
    from repro.core.punctual import punctual_factory
    from repro.core.uniform import uniform_factory
    from repro.fastpath.batched import plan_fastpath, simulate_fastpath
    from repro.params import AlignedParams, PunctualParams
    from repro.sim.engine import simulate
    from repro.workloads import batch_instance, single_class_instance

    aligned_params = AlignedParams(lam=1, tau=4, min_level=9)
    punctual_params = PunctualParams(
        aligned=AlignedParams(lam=1, tau=2, min_level=10),
        lam=2,
        pullback_exp=1,
        slingshot_exp=2,
    )

    def engine_samples(instance, factory_fn) -> List[float]:
        out = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = simulate(instance, factory_fn(), seed=0)
            out.append(res.slots_simulated / (time.perf_counter() - t0))
        return out

    def kernel_samples(instance, factory, trials=32) -> List[float]:
        plan, reason = plan_fastpath(instance, factory)
        assert plan is not None, f"kernel should qualify: {reason}"
        out = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            slots = sum(
                simulate_fastpath(plan, s).slots_simulated
                for s in range(trials)
            )
            out.append(slots / (time.perf_counter() - t0))
        return out

    uniform_inst = batch_instance(64, window=8192)
    return {
        "engine/uniform": engine_samples(uniform_inst, uniform_factory),
        "kernel/uniform": kernel_samples(uniform_inst, uniform_factory()),
        "kernel/aligned": kernel_samples(
            single_class_instance(16, level=10),
            aligned_factory(aligned_params),
        ),
        "kernel/punctual": kernel_samples(
            batch_instance(16, window=8192),
            punctual_factory(punctual_params),
        ),
    }


# -- the trajectory file ------------------------------------------------------


def load_bench(path: Union[str, Path] = DEFAULT_BENCH_PATH) -> Dict[str, Any]:
    """Load ``BENCH_engine.json`` (empty scaffold when missing/corrupt)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        data = {}
    if not isinstance(data, dict):
        data = {}
    data.setdefault("history", [])
    if not isinstance(data["history"], list):
        data["history"] = []
    return data


def append_history(
    samples: Dict[str, Sequence[float]],
    *,
    path: Union[str, Path] = DEFAULT_BENCH_PATH,
    engine_version: Optional[int] = None,
    kernel_version: Optional[int] = None,
    note: str = "",
    now: Optional[float] = None,
    max_entries: int = MAX_HISTORY,
) -> Dict[str, Any]:
    """Append one timestamped entry to the trajectory; returns the entry.

    The write is atomic (tmp + ``os.replace``) and preserves every
    non-``history`` key of the existing file — the one-shot ``families``
    snapshot from ``bench_engine_perf.py`` and this trajectory coexist.
    """
    if engine_version is None or kernel_version is None:
        from repro.fastpath.batched import KERNEL_VERSION
        from repro.sim.engine import ENGINE_VERSION

        engine_version = (
            ENGINE_VERSION if engine_version is None else engine_version
        )
        kernel_version = (
            KERNEL_VERSION if kernel_version is None else kernel_version
        )
    entry: Dict[str, Any] = {
        "timestamp": time.time() if now is None else now,
        "engine_version": engine_version,
        "kernel_version": kernel_version,
        "env": environment_fingerprint(),
        "rates": {
            label: {
                "samples": [float(s) for s in vals],
                "mean": float(np.mean(vals)) if len(vals) else None,
                "best": float(np.max(vals)) if len(vals) else None,
            }
            for label, vals in samples.items()
        },
    }
    if note:
        entry["note"] = note
    data = load_bench(path)
    data["history"].append(entry)
    if max_entries > 0 and len(data["history"]) > max_entries:
        data["history"] = data["history"][-max_entries:]
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return entry


def history_samples(
    data: Dict[str, Any],
    label: str,
    *,
    hostname: Optional[str] = None,
    window: int = 20,
    exclude_last: bool = False,
) -> List[float]:
    """Flat per-repeat samples for ``label`` from recent history.

    Only entries from ``hostname`` (default: this host) count —
    cross-machine numbers must never gate each other.  ``window`` caps
    how many entries back to look; ``exclude_last`` drops the newest
    entry (used when it is the measurement under test, already
    appended).
    """
    if hostname is None:
        hostname = socket.gethostname()
    entries = [
        e
        for e in data.get("history", [])
        if isinstance(e, dict)
        and (e.get("env") or {}).get("hostname") == hostname
        and label in (e.get("rates") or {})
    ]
    if exclude_last and entries:
        entries = entries[:-1]
    samples: List[float] = []
    for e in entries[-window:]:
        rec = e["rates"][label]
        vals = rec.get("samples")
        if isinstance(vals, list) and vals:
            samples.extend(float(v) for v in vals)
        elif rec.get("mean") is not None:
            samples.append(float(rec["mean"]))
    return samples


# -- regression detection -----------------------------------------------------


def detect_regressions(
    current: Dict[str, Sequence[float]],
    data: Dict[str, Any],
    *,
    hostname: Optional[str] = None,
    window: int = 20,
    exclude_last: bool = False,
    rel_threshold: float = REL_DROP_THRESHOLD,
    n_boot: int = 2000,
    seed: int = 0,
) -> Dict[str, Dict[str, Any]]:
    """Per-label verdicts of today's samples against recent history.

    For each label a bootstrap CI on ``mean(current) − mean(history)``
    is computed (:func:`~repro.analysis.stats.bootstrap_mean_diff`);
    the label is a **regression** when the CI's high end is below zero
    (the drop is statistically real) *and* the relative drop exceeds
    ``rel_threshold`` (the drop is large enough to matter).  Labels
    with fewer than :data:`MIN_TREND_HISTORY` historical samples report
    ``"insufficient-history"`` and never flag.
    """
    rng = np.random.default_rng(seed)
    out: Dict[str, Dict[str, Any]] = {}
    for label in sorted(current):
        now_samples = [float(v) for v in current[label]]
        past = history_samples(
            data,
            label,
            hostname=hostname,
            window=window,
            exclude_last=exclude_last,
        )
        entry: Dict[str, Any] = {
            "current_mean": (
                float(np.mean(now_samples)) if now_samples else None
            ),
            "history_mean": float(np.mean(past)) if past else None,
            "history_n": len(past),
            "regression": False,
            "verdict": "ok",
        }
        if len(past) < MIN_TREND_HISTORY or not now_samples:
            entry["verdict"] = "insufficient-history"
            out[label] = entry
            continue
        point, low, high = bootstrap_mean_diff(
            now_samples, past, rng, n_boot=n_boot
        )
        hist_mean = float(np.mean(past))
        rel = point / hist_mean if hist_mean else 0.0
        entry.update(
            {
                "diff": point,
                "ci_low": low,
                "ci_high": high,
                "rel_change": rel,
            }
        )
        if high < 0.0 and rel < -rel_threshold:
            entry["regression"] = True
            entry["verdict"] = (
                f"regression: {rel * 100:.1f}% vs trailing mean "
                f"(CI [{low:,.0f}, {high:,.0f}] slots/s)"
            )
        elif high < 0.0:
            entry["verdict"] = (
                f"slower but within noise band ({rel * 100:.1f}%)"
            )
        out[label] = entry
    return out


def trend_floor(
    data: Dict[str, Any],
    label: str,
    static_floor: float,
    *,
    hostname: Optional[str] = None,
    window: int = 20,
    fraction: float = TREND_FLOOR_FRACTION,
) -> float:
    """The throughput gate for ``label``: trend-aware when possible.

    ``max(static_floor, fraction × median(recent same-host samples))``
    once :data:`MIN_TREND_HISTORY` entries exist; the static floor
    alone otherwise.  The floor therefore rises as the kernels get
    faster, instead of staying 10× under day-one numbers forever.
    """
    past = history_samples(data, label, hostname=hostname, window=window)
    if len(past) < MIN_TREND_HISTORY:
        return float(static_floor)
    return max(float(static_floor), fraction * float(np.median(past)))
