"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

Anything the telemetry layer counts can be scraped: this module renders
the registry in the Prometheus text exposition format (version 0.0.4 —
the plain-text format every scraper and ``promtool`` accepts) and,
behind an explicit opt-in, serves it from a stdlib ``http.server``
``/metrics`` endpoint in a daemon thread.

Mapping:

* :class:`~repro.obs.metrics.Counter` → ``counter``;
* :class:`~repro.obs.metrics.Gauge` → ``gauge``;
* :class:`~repro.obs.metrics.Histogram` → a ``summary``: one
  ``{name}{quantile="0.5"}`` series per exported percentile plus
  ``_count`` (NaN-skipping, like the JSONL artifact);
* :class:`~repro.obs.metrics.Timer` → ``{name}_seconds_count`` /
  ``_seconds_sum`` (the conventional cumulative-duration pair).

Metric names are sanitized (dots → underscores, a ``repro_`` prefix)
so ``engine.slots`` scrapes as ``repro_engine_slots``.  Serving is
strictly observational — the server thread only ever *reads* the
registry and a caller-supplied snapshot provider; it draws no
randomness and cannot perturb simulation results.
"""

from __future__ import annotations

import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)

__all__ = [
    "MetricsServer",
    "prometheus_name",
    "prometheus_text",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """Sanitize a registry metric name into a legal Prometheus name."""
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned or not cleaned[0].isalpha() and cleaned[0] != "_":
        cleaned = "_" + cleaned
    full = prefix + cleaned
    assert _NAME_OK.match(full), full
    return full


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(
    registry: MetricsRegistry,
    *,
    prefix: str = "repro_",
    extra_gauges: Optional[Dict[str, float]] = None,
) -> str:
    """Render a registry in the Prometheus text exposition format.

    ``extra_gauges`` lets callers append computed values (a progress
    fraction, an ETA) without registering them as real metrics.
    """
    lines: List[str] = []

    def emit(name: str, kind: str, samples: List[str]) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    for metric in sorted(registry, key=lambda m: m.name):
        name = prometheus_name(metric.name, prefix)
        if isinstance(metric, Counter):
            emit(
                name + "_total",
                "counter",
                [f"{name}_total {_fmt_value(metric.value)}"],
            )
        elif isinstance(metric, Gauge):
            emit(name, "gauge", [f"{name} {_fmt_value(metric.value)}"])
        elif isinstance(metric, Histogram):
            samples = [
                f'{name}{{quantile="{q / 100.0:g}"}} {_fmt_value(v)}'
                for q, v in metric.percentiles().items()
            ]
            samples.append(f"{name}_count {metric.count}")
            emit(name, "summary", samples)
        elif isinstance(metric, Timer):
            emit(
                name + "_seconds",
                "summary",
                [
                    f"{name}_seconds_count {metric.count}",
                    f"{name}_seconds_sum {_fmt_value(metric.total_seconds)}",
                ],
            )
    for gname in sorted(extra_gauges or {}):
        name = prometheus_name(gname, prefix)
        emit(
            name,
            "gauge",
            [f"{name} {_fmt_value((extra_gauges or {})[gname])}"],
        )
    return "\n".join(lines) + ("\n" if lines else "")


class MetricsServer:
    """A stdlib ``/metrics`` endpoint over a registry (opt-in only).

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to expose.  The server reads it on
        every scrape; attach the same registry your telemetry uses.
    port:
        TCP port; ``0`` picks a free one (see :attr:`port` after
        :meth:`start`).
    extra:
        Optional zero-argument callable returning extra gauge values
        (e.g. a :meth:`ProgressTracker.snapshot`-derived dict) folded
        into each scrape.

    ``start()`` binds and serves from a daemon thread; ``stop()`` shuts
    down.  Usable as a context manager.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        extra: Optional[Callable[[], Dict[str, float]]] = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.extra = extra
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def render(self) -> str:
        extra = self.extra() if self.extra is not None else None
        return prometheus_text(self.registry, extra_gauges=extra)

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                if self.path.rstrip("/") not in ("", "/metrics".rstrip("/")):
                    self.send_response(404)
                    self.end_headers()
                    return
                body = server.render().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the run's stdout

        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
