"""Typed protocol lifecycle events and the sinks that collect them.

The paper's lemmas are statements about *internal* protocol dynamics —
ALIGNED's size estimation converging (Lemmas 8–9), the pecking order
handing the channel to a class (Lemma 7), PUNCTUAL electing and deposing
leaders (Lemmas 16–18), anarchist releases — none of which are visible
in a :class:`~repro.sim.metrics.SimulationResult`.  Protocols therefore
emit **typed events** through an engine-owned :class:`EventSink`, giving
experiments and tests lemma-level visibility without any protocol
exposing its private state.

Event kinds are dotted strings, ``<family>.<what>``; the family prefix
(``job``, ``aligned``, ``punctual``, ``uniform``, ``run``, ``fault``,
``watchdog``)
groups events in the ``repro obs`` report.  The full taxonomy lives in
:data:`EVENT_KINDS` and docs/OBSERVABILITY.md.

Emission is strictly pay-for-what-you-use: protocols hold an optional
sink (``None`` by default) and every emission site guards on it, so an
un-instrumented run performs no event work at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventLog",
    "EventSink",
    "NullSink",
    "family_of",
]


# -- taxonomy ----------------------------------------------------------------

#: Every event kind the built-in engine and protocols can emit, with a
#: one-line meaning.  Protocols outside this repo may add their own
#: dotted kinds; the report groups them by prefix all the same.
EVENT_KINDS: Dict[str, str] = {
    # engine-level job lifecycle (ground truth, emitted by the engine)
    "job.activated": "a job's protocol was constructed and begun",
    "job.success": "the job's data message was delivered in its window",
    "job.deadline_miss": "the window closed without a delivery",
    "job.gave_up": "the protocol stopped contending before its deadline",
    # run / fault bookkeeping (emitted by the engine)
    "run.started": "one simulate() call began",
    "run.finished": "one simulate() call completed",
    "fault.plan_bound": "a FaultPlan was bound to this run",
    # watchdog cancellations (emitted by the engine; see sim/watchdog.py)
    "watchdog.slot_budget": "run cancelled: simulated-slot budget exhausted",
    "watchdog.wall_clock": "run cancelled: wall-clock budget exhausted",
    "watchdog.stall": "run cancelled: no delivery progress for the stall budget",
    # ALIGNED internals (slot = machine slot; virtual time under PUNCTUAL)
    "aligned.estimation_started": "my class began its size-estimation phase",
    "aligned.estimation_converged": "my class's estimate is fixed (Lemma 9)",
    "aligned.class_agreement": "the pecking order handed my class the channel",
    "aligned.broadcast_started": "my class began batch broadcast",
    "aligned.exhausted": "my class's run completed without my delivery",
    # PUNCTUAL internals (slot = engine slot)
    "punctual.synced": "round structure established (SYNC complete)",
    "punctual.slingshot_entered": "began the SLINGSHOT pullback",
    "punctual.leader_elected": "my leader claim succeeded",
    "punctual.leader_deposed": "a later-deadline claimant deposed me",
    "punctual.leader_handover": "handed over with my payload attached",
    "punctual.leader_abdicated": "abdicated at window end with payload",
    "punctual.leader_lost": "follower heard a silent timekeeper slot",
    "punctual.follow_entered": "adopted a leader and trimmed my window",
    "punctual.anarchist_release": "released into the anarchist stage",
    "punctual.truncation": "trimmed virtual window expired undelivered",
    # UNIFORM internals
    "uniform.exhausted": "all chosen slots used without a success",
}


def family_of(kind: str) -> str:
    """The taxonomy family of an event kind (prefix before the dot)."""
    return kind.split(".", 1)[0]


# -- event + sinks -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Event:
    """One emitted lifecycle event.

    Attributes
    ----------
    kind:
        Dotted taxonomy name (see :data:`EVENT_KINDS`).
    slot:
        The slot the event refers to (engine slot for engine/PUNCTUAL
        events, machine/virtual slot for ALIGNED machine events), or -1.
    job_id:
        The emitting job, or -1 for engine-level events.
    data:
        Small JSON-serializable payload (``None`` when empty).
    """

    kind: str
    slot: int = -1
    job_id: int = -1
    data: Optional[Dict[str, Any]] = None

    def as_record(self) -> Dict[str, Any]:
        rec: Dict[str, Any] = {
            "type": "event",
            "kind": self.kind,
            "slot": self.slot,
            "job": self.job_id,
        }
        if self.data:
            rec["data"] = self.data
        return rec


class EventSink:
    """Receiver interface for lifecycle events.

    Subclasses override :meth:`emit`.  The base class is also usable
    directly as a no-op (see :class:`NullSink`).
    """

    __slots__ = ()

    def emit(
        self, kind: str, slot: int = -1, job_id: int = -1, **data: Any
    ) -> None:
        """Receive one event (default: drop it)."""


class NullSink(EventSink):
    """Explicitly discards every event (placeholder / testing)."""

    __slots__ = ()


class EventLog(EventSink):
    """A buffering sink: stores every event and counts kinds.

    The standard sink owned by a :class:`~repro.obs.telemetry.Telemetry`
    object.  Counting happens at emission (one dict update) so summary
    tables never re-scan the buffer.
    """

    __slots__ = ("events", "counts")

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.counts: Dict[str, int] = {}

    def emit(
        self, kind: str, slot: int = -1, job_id: int = -1, **data: Any
    ) -> None:
        self.events.append(Event(kind, slot, job_id, data or None))
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def of_kind(self, kind: str) -> List[Event]:
        """All buffered events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def counts_by_family(self) -> Dict[str, Dict[str, int]]:
        """``family -> kind -> count`` over everything buffered."""
        out: Dict[str, Dict[str, int]] = {}
        for kind, n in sorted(self.counts.items()):
            out.setdefault(family_of(kind), {})[kind] = n
        return out

    def as_records(self) -> List[Dict[str, Any]]:
        return [e.as_record() for e in self.events]
