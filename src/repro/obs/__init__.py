"""repro.obs — run telemetry: metrics, lifecycle events, spans, reports.

The observability layer for the whole stack.  One
:class:`~repro.obs.telemetry.Telemetry` object rides through
``simulate`` / ``run_seeds`` / ``Sweep`` / ``run_robustness`` as an
optional argument, collecting:

* **metrics** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  / :class:`Timer` in a :class:`MetricsRegistry`;
* **lifecycle events** — typed, taxonomy-named protocol events (leader
  elections, estimation convergence, anarchist releases, job fates)
  through an engine-owned :class:`EventSink`;
* **spans** — wall-clock phase timings;

and serializing everything to a JSONL artifact that ``repro obs``
summarizes.  Attaching telemetry never changes simulation results, and
leaving it off costs the engine nothing (see docs/OBSERVABILITY.md for
the guarantees and the artifact schema).
"""

from repro.obs.events import (
    EVENT_KINDS,
    Event,
    EventLog,
    EventSink,
    NullSink,
    family_of,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.report import render_report, render_reports
from repro.obs.sketches import QuantileSketch, ReservoirSampler
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    SpanRecord,
    Telemetry,
    TelemetryArtifact,
    read_artifact,
)

__all__ = [
    "EVENT_KINDS",
    "TELEMETRY_SCHEMA",
    "Counter",
    "Event",
    "EventLog",
    "EventSink",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSink",
    "QuantileSketch",
    "ReservoirSampler",
    "SpanRecord",
    "Telemetry",
    "TelemetryArtifact",
    "Timer",
    "family_of",
    "read_artifact",
    "render_report",
    "render_reports",
]
