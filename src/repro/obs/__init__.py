"""repro.obs — run telemetry: metrics, lifecycle events, spans, reports.

The observability layer for the whole stack.  One
:class:`~repro.obs.telemetry.Telemetry` object rides through
``simulate`` / ``run_seeds`` / ``Sweep`` / ``run_robustness`` as an
optional argument, collecting:

* **metrics** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  / :class:`Timer` in a :class:`MetricsRegistry`;
* **lifecycle events** — typed, taxonomy-named protocol events (leader
  elections, estimation convergence, anarchist releases, job fates)
  through an engine-owned :class:`EventSink`;
* **spans** — wall-clock phase timings;

and serializing everything to a JSONL artifact that ``repro obs``
summarizes.  Attaching telemetry never changes simulation results, and
leaving it off costs the engine nothing (see docs/OBSERVABILITY.md for
the guarantees and the artifact schema).
"""

from repro.obs.events import (
    EVENT_KINDS,
    Event,
    EventLog,
    EventSink,
    NullSink,
    family_of,
)
from repro.obs.expose import MetricsServer, prometheus_text
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    RunRecord,
    as_ledger,
    compare_runs,
    default_ledger_path,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.progress import (
    Heartbeat,
    ProgressTracker,
    read_heartbeat,
    scan_heartbeats,
)
from repro.obs.report import render_report, render_reports, report_data
from repro.obs.sketches import QuantileSketch, ReservoirSampler
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    SpanRecord,
    Telemetry,
    TelemetryArtifact,
    read_artifact,
)

__all__ = [
    "EVENT_KINDS",
    "LEDGER_SCHEMA",
    "TELEMETRY_SCHEMA",
    "Counter",
    "Event",
    "EventLog",
    "EventSink",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NullSink",
    "ProgressTracker",
    "QuantileSketch",
    "ReservoirSampler",
    "RunLedger",
    "RunRecord",
    "SpanRecord",
    "Telemetry",
    "TelemetryArtifact",
    "Timer",
    "as_ledger",
    "compare_runs",
    "default_ledger_path",
    "family_of",
    "prometheus_text",
    "read_artifact",
    "read_heartbeat",
    "render_report",
    "render_reports",
    "report_data",
    "scan_heartbeats",
]
