"""Live progress tracking: rate / ETA estimation and heartbeat files.

A long run (a 10k-seed batch, a million-job stream, a nightly
certification) is a black box between its first and last line of
output.  :class:`ProgressTracker` turns the existing
``progress(done, total)`` callbacks of the experiment layer into a live
signal:

* **rate** — an exponentially weighted average of recent completion
  rate (per second), falling back to the overall average until enough
  updates arrive;
* **ETA** — remaining work over the current rate, ``None`` when the
  total is unknown or the rate is still zero;
* **heartbeats** — an attached :class:`Heartbeat` serializes the
  tracker's snapshot to a small JSON file at a throttled cadence, with
  the atomic tmp-write + ``os.replace`` discipline of the streaming
  checkpoints, so ``repro top`` can tail in-flight runs without ever
  reading a half-written file.

The tracker is itself callable with the ``(done, total)`` signature, so
it drops straight into ``run_seeds(progress=...)``,
``Sweep(progress=...)``, ``stream_simulate(progress=...)``, and the
``repro certify`` probe hook.  Everything here is observational: no
randomness, no branches any protocol can see.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "Heartbeat",
    "ProgressTracker",
    "read_heartbeat",
    "scan_heartbeats",
]

#: A heartbeat older than this many seconds is reported as stale by
#: ``repro top`` (the writer likely finished or died).
STALE_AFTER_SECONDS = 30.0


class ProgressTracker:
    """Rate/ETA estimation over ``(done, total)`` progress updates.

    Parameters
    ----------
    total:
        Expected number of work units, when known up front.  Updates
        may override it (the experiment callbacks pass their own).
    label:
        Free-form name recorded in every snapshot (the CLI uses the
        command line).
    heartbeat:
        Optional :class:`Heartbeat`; every update offers it a snapshot
        (the heartbeat throttles actual writes).
    smoothing:
        EWMA factor in (0, 1] for the recent-rate estimate; higher
        tracks bursts faster, lower is steadier.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        *,
        label: str = "run",
        heartbeat: Optional["Heartbeat"] = None,
        smoothing: float = 0.3,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.label = label
        self.total = total
        self.heartbeat = heartbeat
        self.smoothing = smoothing
        self.done = 0
        self.started = time.time()
        self._t0 = time.perf_counter()
        self._last_t = self._t0
        self._last_done = 0
        self._ewma_rate: Optional[float] = None
        self.context: Dict[str, Any] = {}

    # -- updating ------------------------------------------------------------

    def __call__(self, done: int, total: Optional[int] = None) -> None:
        self.update(done, total)

    def update(self, done: int, total: Optional[int] = None) -> None:
        """Record that ``done`` units are complete (monotonic or not)."""
        now = time.perf_counter()
        if total is not None:
            self.total = total
        delta_done = done - self._last_done
        delta_t = now - self._last_t
        if delta_done > 0 and delta_t > 0:
            inst = delta_done / delta_t
            if self._ewma_rate is None:
                self._ewma_rate = inst
            else:
                a = self.smoothing
                self._ewma_rate = a * inst + (1 - a) * self._ewma_rate
            self._last_t = now
            self._last_done = done
        self.done = done
        if self.heartbeat is not None:
            self.heartbeat.offer(self.snapshot())

    def add(self, n: int = 1) -> None:
        """Increment completed work by ``n`` (counter-style callers)."""
        self.update(self.done + n)

    # -- reading -------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    @property
    def rate(self) -> float:
        """Completions per second (EWMA; overall average as fallback)."""
        if self._ewma_rate is not None:
            return self._ewma_rate
        elapsed = self.elapsed
        return self.done / elapsed if elapsed > 0 and self.done else 0.0

    @property
    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion, ``None`` when unknowable."""
        if self.total is None or self.total <= 0:
            return None
        rate = self.rate
        if rate <= 0:
            return None
        return max(self.total - self.done, 0) / rate

    @property
    def fraction(self) -> Optional[float]:
        if self.total is None or self.total <= 0:
            return None
        return min(self.done / self.total, 1.0)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable view of the current state."""
        eta = self.eta_seconds
        frac = self.fraction
        snap: Dict[str, Any] = {
            "label": self.label,
            "done": self.done,
            "total": self.total,
            "fraction": None if frac is None else round(frac, 6),
            "rate_per_s": round(self.rate, 6),
            "eta_s": None if eta is None else round(eta, 3),
            "elapsed_s": round(self.elapsed, 3),
            "started": self.started,
            "updated": time.time(),
            "pid": os.getpid(),
        }
        if self.context:
            snap["context"] = dict(self.context)
        return snap

    def finish(self, status: str = "done") -> None:
        """Force a final heartbeat write with a terminal status."""
        if self.heartbeat is not None:
            snap = self.snapshot()
            snap["status"] = status
            self.heartbeat.write(snap)


class Heartbeat:
    """A throttled, atomically replaced JSON snapshot file.

    ``offer`` drops snapshots arriving within ``every_seconds`` of the
    last write (the hot loops call it per completion/slot block; disk
    traffic must not scale with them).  ``write`` always writes —
    tmp file in the same directory, flush, ``os.replace`` — so readers
    see either the previous or the new snapshot, never a torn one.
    """

    def __init__(
        self, path: Union[str, Path], every_seconds: float = 1.0
    ) -> None:
        if every_seconds < 0:
            raise ValueError(
                f"every_seconds must be >= 0, got {every_seconds}"
            )
        self.path = Path(path)
        self.every_seconds = every_seconds
        self._last_write = 0.0
        self.writes = 0

    def offer(self, snapshot: Dict[str, Any]) -> bool:
        """Write if the throttle window has passed; returns whether."""
        now = time.perf_counter()
        if self.writes and now - self._last_write < self.every_seconds:
            return False
        self.write(snapshot)
        return True

    def write(self, snapshot: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(snapshot, fh)
            fh.write("\n")
            fh.flush()
        os.replace(tmp, self.path)
        self._last_write = time.perf_counter()
        self.writes += 1


def read_heartbeat(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Load one heartbeat snapshot; ``None`` when missing/corrupt."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    data["path"] = str(path)
    updated = data.get("updated")
    if isinstance(updated, (int, float)):
        data["age_s"] = round(max(time.time() - updated, 0.0), 3)
        data["stale"] = (
            data.get("status") is None
            and data["age_s"] > STALE_AFTER_SECONDS
        )
    return data


def scan_heartbeats(
    paths: Union[str, Path, List[Union[str, Path]]],
) -> List[Dict[str, Any]]:
    """Heartbeat snapshots under the given files/directories.

    Directories are scanned (non-recursively) for ``*.heartbeat.json``;
    explicit files are read as given.  Unreadable entries are skipped.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    snaps: List[Dict[str, Any]] = []
    for p in paths:
        p = Path(p)
        candidates = (
            sorted(p.glob("*.heartbeat.json")) if p.is_dir() else [p]
        )
        for c in candidates:
            snap = read_heartbeat(c)
            if snap is not None:
                snaps.append(snap)
    snaps.sort(key=lambda s: s.get("updated") or 0.0)
    return snaps
