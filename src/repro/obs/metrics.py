"""A small metrics registry: counters, gauges, histograms, timers.

The telemetry layer's accounting primitives.  Design constraints, in
order:

1. **Zero cost when absent** — nothing in this module is imported or
   instantiated by the simulation engine unless a
   :class:`~repro.obs.telemetry.Telemetry` object is attached, so the
   clean fast path never pays for observability.
2. **Cheap when present** — metrics are plain Python attributes behind
   ``__slots__``; incrementing a counter is one attribute add, and
   histograms append raw floats (summaries are computed lazily at
   export time, never per observation).
3. **NaN-aware** — histogram reductions skip NaN samples (protocols
   without a ``last_p`` report contention as NaN; one such protocol
   must not poison a whole run's percentiles).

All metric types serialize themselves to plain dicts via
``as_record()`` for the JSONL artifact (see
:mod:`repro.obs.telemetry`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
]


class Counter:
    """A monotonically increasing count (events, slots, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_record(self) -> Dict[str, Any]:
        return {
            "type": "metric",
            "metric": "counter",
            "name": self.name,
            "value": self.value,
        }


class Gauge:
    """A point-in-time value (last run's peak live set, a knob setting)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def max(self, value: float) -> None:
        """Keep the running maximum (``set`` only when larger)."""
        if value > self.value:
            self.value = float(value)

    def as_record(self) -> Dict[str, Any]:
        return {
            "type": "metric",
            "metric": "gauge",
            "name": self.name,
            "value": self.value,
        }


class Histogram:
    """A distribution of float samples with nan-aware lazy summaries.

    Samples are appended raw (one list append per observation); count,
    mean, max, and percentiles are computed only when asked, using
    nan-skipping reductions so unreported samples never poison the
    summary.
    """

    __slots__ = ("name", "values")

    #: Percentiles serialized into the JSONL artifact.
    PERCENTILES: Sequence[float] = (50.0, 90.0, 99.0)

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def extend(self, values: Sequence[float]) -> None:
        self.values.extend(float(v) for v in values)

    def __len__(self) -> int:
        return len(self.values)

    def _valid(self) -> np.ndarray:
        arr = np.asarray(self.values, dtype=np.float64)
        return arr[~np.isnan(arr)]

    @property
    def count(self) -> int:
        """Number of non-NaN samples."""
        return int(self._valid().size)

    def mean(self) -> float:
        v = self._valid()
        return float(v.mean()) if v.size else float("nan")

    def max(self) -> float:
        v = self._valid()
        return float(v.max()) if v.size else float("nan")

    def percentile(self, q: float) -> float:
        v = self._valid()
        return float(np.percentile(v, q)) if v.size else float("nan")

    def percentiles(
        self, qs: Optional[Sequence[float]] = None
    ) -> Dict[float, float]:
        qs = list(self.PERCENTILES if qs is None else qs)
        v = self._valid()
        if not v.size:
            return {q: float("nan") for q in qs}
        vals = np.percentile(v, qs)
        return {float(q): float(x) for q, x in zip(qs, vals)}

    def as_record(self) -> Dict[str, Any]:
        return {
            "type": "metric",
            "metric": "histogram",
            "name": self.name,
            "count": self.count,
            "mean": self.mean(),
            "max": self.max(),
            "percentiles": {
                str(q): v for q, v in self.percentiles().items()
            },
        }


class Timer:
    """Accumulated wall-clock timings of one named operation.

    ``time()`` returns a context manager; each exit adds one sample.
    Only count / total / max are kept (spans carry the individual
    timings — see :meth:`repro.obs.telemetry.Telemetry.span`).
    """

    __slots__ = ("name", "count", "total_seconds", "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else float("nan")

    def as_record(self) -> Dict[str, Any]:
        return {
            "type": "metric",
            "metric": "timer",
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "max_seconds": self.max_seconds,
        }


class _TimerContext:
    __slots__ = ("timer", "_t0")

    def __init__(self, timer: Timer) -> None:
        self.timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.timer.add(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Get-or-create home for every metric of one telemetry session.

    Each name maps to exactly one metric; asking for an existing name
    with a different type raises, so two subsystems cannot silently
    alias (say) a counter and a gauge.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, cls: type, name: str) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(Counter, name)

    def gauge(self, name: str) -> Gauge:
        return self._get(Gauge, name)

    def histogram(self, name: str) -> Histogram:
        return self._get(Histogram, name)

    def timer(self, name: str) -> Timer:
        return self._get(Timer, name)

    def get(self, name: str) -> Optional[Any]:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def as_records(self) -> List[Dict[str, Any]]:
        """One serializable dict per metric, sorted by name."""
        return [
            self._metrics[name].as_record()
            for name in sorted(self._metrics)
        ]

    def snapshot(self) -> Dict[str, Any]:
        """``name -> scalar`` for counters/gauges (handy in tests)."""
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if isinstance(m, (Counter, Gauge)):
                out[name] = m.value
        return out
