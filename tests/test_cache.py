"""Cache correctness: digests, hit/miss behavior, corruption recovery.

The content-addressed cache must be invisible to results: a warm cache
returns exactly what a cold run computes, any input change moves to a
different key, and a corrupted entry falls back to recomputation.
"""

from __future__ import annotations

import warnings

import pytest

import repro.experiments.parallel as parallel_mod
from repro.cache import ResultCache, as_cache, run_key, stable_digest
from repro.channel.jamming import PeriodicJammer, StochasticJammer
from repro.core.uniform import uniform_factory
from repro.experiments import Sweep, SeedDigest, run_seeds
from repro.workloads import batch_instance


def build_small():
    return batch_instance(6, window=512)


def build_other():
    return batch_instance(7, window=512)


def protocol(instance):
    return uniform_factory()


class TestStableDigest:
    def test_deterministic_across_calls(self):
        inst = build_small()
        assert stable_digest(inst) == stable_digest(build_small())

    def test_distinguishes_types(self):
        assert stable_digest(1) != stable_digest("1")
        assert stable_digest((1,)) != stable_digest([1])
        assert stable_digest(True) != stable_digest(1)

    def test_closure_parameters_matter(self):
        from repro.baselines import window_scaled_aloha_factory

        a = stable_digest(window_scaled_aloha_factory(4.0))
        b = stable_digest(window_scaled_aloha_factory(8.0))
        assert a != b

    def test_numpy_arrays(self):
        import numpy as np

        a = stable_digest(np.arange(4))
        b = stable_digest(np.arange(4))
        c = stable_digest(np.arange(5))
        assert a == b and a != c

    def test_cycles_terminate(self):
        loop = []
        loop.append(loop)
        assert isinstance(stable_digest(loop), str)


class TestRunKey:
    def test_each_ingredient_changes_key(self):
        base = dict(
            instance=build_small(),
            protocol=protocol,
            jammer=StochasticJammer(0.25),
            seed=3,
        )
        key = run_key(**base)
        assert key == run_key(**base)  # stable
        assert key != run_key(**{**base, "instance": build_other()})
        assert key != run_key(**{**base, "seed": 4})
        assert key != run_key(**{**base, "jammer": StochasticJammer(0.5)})
        assert key != run_key(**{**base, "jammer": PeriodicJammer(5, [0])})
        assert key != run_key(**{**base, "jammer": None})
        assert key != run_key(
            **{**base, "protocol": lambda instance: uniform_factory()}
        )

    def test_fault_plan_changes_key_and_noop_plan_does_not(self):
        from repro.channel.jamming import BudgetJammer
        from repro.faults import FaultPlan, FeedbackFault, JobFault

        base = dict(instance=build_small(), protocol=protocol, seed=3)
        clean = run_key(**base)
        # Clean keys are unchanged by the faults parameter existing:
        # None and a no-op plan both digest exactly like the old layout.
        assert run_key(**base, faults=None) == clean
        assert run_key(**base, faults=FaultPlan()) == clean
        assert run_key(**base, faults=FaultPlan(feedback=FeedbackFault())) == clean
        # A real plan changes the key; different plans get different keys.
        faulted = run_key(
            **base, faults=FaultPlan(feedback=FeedbackFault(0.1))
        )
        assert faulted != clean
        assert faulted != run_key(
            **base, faults=FaultPlan(feedback=FeedbackFault(0.2))
        )
        assert faulted != run_key(
            **base, faults=FaultPlan(jobs=JobFault(p_crash=0.1))
        )

    def test_spent_jammer_digests_like_fresh(self):
        from repro.channel.jamming import BudgetJammer
        from repro.faults import FaultPlan

        base = dict(instance=build_small(), protocol=protocol, seed=3)
        spent = BudgetJammer(10)
        spent.remaining = 0  # as if a previous run consumed it
        fresh_key = run_key(**base, faults=FaultPlan(jammer=BudgetJammer(10)))
        assert run_key(**base, faults=FaultPlan(jammer=spent)) == fresh_key
        direct = BudgetJammer(10)
        direct.remaining = 3
        assert run_key(**base, jammer=direct) == run_key(
            **base, jammer=BudgetJammer(10)
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1 and cache.puts == 1

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"not a pickle \x00\xff")
        assert cache.get(key) is None  # no crash, reported as a miss
        assert not cache.path_for(key).exists()  # bad entry removed
        cache.put(key, [4])
        assert cache.get(key) == [4]

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" + "e" * 60, i)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_as_cache_coercion(self, tmp_path):
        assert as_cache(None) is None
        assert as_cache(False) is None
        assert isinstance(as_cache(str(tmp_path)), ResultCache)
        cache = ResultCache(tmp_path)
        assert as_cache(cache) is cache


class TestRunSeedsCaching:
    def test_warm_cache_skips_simulation(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cold = run_seeds(build_small, protocol, seeds=range(4), cache=cache)
        assert cache.puts == 4

        def boom(*a, **k):  # any simulate call on the warm path is a bug
            raise AssertionError("simulate called despite warm cache")

        monkeypatch.setattr(parallel_mod, "simulate", boom)
        warm = run_seeds(build_small, protocol, seeds=range(4), cache=cache)
        assert warm == cold
        assert cache.hits == 4

    def test_warm_results_equal_uncached(self, tmp_path):
        cached = run_seeds(
            build_small, protocol, seeds=range(3), cache=ResultCache(tmp_path)
        )
        rerun = run_seeds(
            build_small, protocol, seeds=range(3), cache=ResultCache(tmp_path)
        )
        plain = run_seeds(build_small, protocol, seeds=range(3))
        assert cached == rerun == plain

    def test_partial_hits_fill_missing_seeds(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_seeds(build_small, protocol, seeds=[0, 2], cache=cache)
        out = run_seeds(build_small, protocol, seeds=[0, 1, 2, 3], cache=cache)
        assert [d.seed for d in out] == [0, 1, 2, 3]
        assert cache.hits == 2 and cache.puts == 4

    def test_jammer_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_seeds(build_small, protocol, seeds=[0], cache=cache)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # deliberately past 1/2
            jam = StochasticJammer(1.0)
        run_seeds(
            build_small, protocol, seeds=[0], jammer=jam, cache=cache,
        )
        assert cache.puts == 2  # different key, not a hit

    def test_corrupted_digest_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        (clean,) = run_seeds(build_small, protocol, seeds=[5], cache=cache)
        for p in cache.root.glob("*/*.pkl"):
            p.write_bytes(b"\x80garbage")
        (recomputed,) = run_seeds(build_small, protocol, seeds=[5], cache=cache)
        assert recomputed == clean


class TestSweepCaching:
    def test_warm_sweep_runs_zero_simulations(self, tmp_path, monkeypatch):
        def make_sweep():
            return Sweep(
                build=lambda n: batch_instance(n, window=512),
                protocol=protocol,
                seeds=3,
                cache=ResultCache(tmp_path),
            )

        cold = make_sweep().run({"n": [4, 8]})
        monkeypatch.setattr(
            parallel_mod, "simulate",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("simulate called despite warm cache")
            ),
        )
        warm = make_sweep().run({"n": [4, 8]})
        assert [p.params for p in warm] == [p.params for p in cold]
        assert [p.n_succeeded for p in warm] == [p.n_succeeded for p in cold]
        assert [p.mean_latency for p in warm] == [p.mean_latency for p in cold]

    def test_sweep_results_match_uncached(self, tmp_path):
        kwargs = dict(
            build=lambda n: batch_instance(n, window=512),
            protocol=protocol,
            seeds=2,
        )
        plain = Sweep(**kwargs).run({"n": [4]})
        cached = Sweep(**kwargs, cache=ResultCache(tmp_path)).run({"n": [4]})
        assert plain[0].n_succeeded == cached[0].n_succeeded
        assert plain[0].success.point == cached[0].success.point
        assert plain[0].mean_latency == cached[0].mean_latency
