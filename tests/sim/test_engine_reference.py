"""Cross-validation of the optimized engine against a pinned reference.

``_reference_simulate`` below is the original (pre-optimization) slot
engine, kept verbatim as a behavioral pin: dict-of-live-jobs bookkeeping,
``MultipleAccessChannel`` stepping, per-job ``observation_for`` calls,
per-slot ``getattr(proto, "last_p")`` probes, and ``isinstance``-based
delivery dispatch.  The optimized :func:`repro.sim.engine.simulate` must
produce byte-identical results — same outcomes, same slot counts, same
trace contention — on every protocol family, with and without jamming.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import pytest

from repro.baselines import beb_factory
from repro.channel.channel import MultipleAccessChannel, SlotOutcome
from repro.channel.jamming import Jammer, PeriodicJammer, StochasticJammer
from repro.channel.messages import DataMessage, Message, TimekeeperBeacon
from repro.core.aligned import aligned_factory
from repro.core.punctual import punctual_factory
from repro.core.uniform import uniform_factory
from repro.errors import SimulationError
from repro.params import AlignedParams, PunctualParams
from repro.sim.engine import ProtocolFactory, simulate
from repro.sim.instance import Instance
from repro.sim.job import Job, JobStatus
from repro.sim.metrics import JobOutcome, SimulationResult
from repro.sim.protocolbase import Protocol
from repro.sim.rng import RngFactory
from repro.sim.trace import TraceRecorder
from repro.workloads import batch_instance, single_class_instance

ALIGNED = AlignedParams(lam=1, tau=4, min_level=9)
PUNCTUAL = PunctualParams(
    aligned=AlignedParams(lam=1, tau=2, min_level=10),
    lam=2,
    pullback_exp=1,
    slingshot_exp=2,
)


def _reference_delivered_ids(outcome: SlotOutcome) -> Tuple[int, ...]:
    msg = outcome.message
    if msg is None:
        return ()
    if isinstance(msg, TimekeeperBeacon):
        if msg.payload is not None:
            return (msg.payload.sender,)
        return ()
    if isinstance(msg, DataMessage):
        return (msg.sender,)
    return ()


def _reference_simulate(
    instance: Instance,
    factory: ProtocolFactory,
    *,
    jammer: Optional[Jammer] = None,
    seed: int = 0,
    trace: bool = False,
    observers: Sequence = (),
    horizon: Optional[int] = None,
) -> SimulationResult:
    """The seed repository's engine, pinned for equivalence testing."""
    rngs = RngFactory(seed)
    channel = MultipleAccessChannel(jammer=jammer, rng=rngs.channel_rng())
    recorder = TraceRecorder() if trace else None

    jobs_sorted = list(instance.by_release)
    end = instance.horizon if horizon is None else min(horizon, instance.horizon)

    live: Dict[int, Tuple[Job, Protocol]] = {}
    outcomes: Dict[int, JobOutcome] = {}
    delivered_slot: Dict[int, int] = {}

    next_job = 0
    t = jobs_sorted[0].release if jobs_sorted else 0
    channel.now = t
    slots_simulated = 0

    def finalize(job: Job, proto: Protocol) -> None:
        if job.job_id in delivered_slot:
            status = JobStatus.SUCCEEDED
            comp = delivered_slot[job.job_id]
        elif proto.gave_up:
            status = JobStatus.GAVE_UP
            comp = -1
        else:
            status = JobStatus.FAILED
            comp = -1
        if proto.succeeded and status is not JobStatus.SUCCEEDED:
            raise SimulationError(
                f"job {job.job_id} claims success but no delivery was observed"
            )
        outcomes[job.job_id] = JobOutcome(job, status, comp, proto.transmissions)

    while t < end or live:
        if t >= end and not live:
            break
        while next_job < len(jobs_sorted) and jobs_sorted[next_job].release == t:
            job = jobs_sorted[next_job]
            proto = factory(job, rngs.job_rng(job.job_id))
            proto.begin(t)
            live[job.job_id] = (job, proto)
            next_job += 1
        if next_job < len(jobs_sorted) and not live:
            t = jobs_sorted[next_job].release
            channel.now = t
            continue

        transmissions: List[Tuple[int, Message]] = []
        contention = 0.0
        have_contention = False
        for jid, (job, proto) in live.items():
            msg = proto.act(t)
            if msg is not None:
                transmissions.append((jid, msg))
            p = getattr(proto, "last_p", None)
            if p is not None:
                contention += float(p)
                have_contention = True

        outcome = channel.step(transmissions)
        slots_simulated += 1
        for jid in _reference_delivered_ids(outcome):
            delivered_slot.setdefault(jid, t)

        transmitted_ids = {jid for jid, _ in transmissions}
        for jid, (job, proto) in live.items():
            obs = MultipleAccessChannel.observation_for(
                outcome, jid, jid in transmitted_ids
            )
            proto.observe(t, obs)

        if recorder is not None:
            recorder.record(
                outcome,
                n_live=len(live),
                contention=contention if have_contention else float("nan"),
            )
        if observers:
            ids = tuple(live.keys())
            for cb in observers:
                cb(outcome, ids)

        t += 1
        dead = [
            jid
            for jid, (job, proto) in live.items()
            if proto.done or t >= job.deadline
        ]
        for jid in dead:
            job, proto = live.pop(jid)
            finalize(job, proto)

        if next_job >= len(jobs_sorted) and not live:
            break

    for job in jobs_sorted:
        if job.job_id not in outcomes:
            outcomes[job.job_id] = JobOutcome(job, JobStatus.FAILED, -1, 0)

    ordered = tuple(outcomes[j.job_id] for j in instance.by_release)
    return SimulationResult(
        instance=instance,
        outcomes=ordered,
        slots_simulated=slots_simulated,
        trace=recorder,
    )


def _assert_identical(new: SimulationResult, ref: SimulationResult) -> None:
    assert new.slots_simulated == ref.slots_simulated
    assert len(new.outcomes) == len(ref.outcomes)
    for a, b in zip(new.outcomes, ref.outcomes):
        assert a.job == b.job
        assert a.status is b.status
        assert a.completion_slot == b.completion_slot
        assert a.transmissions == b.transmissions
    assert (new.trace is None) == (ref.trace is None)
    if new.trace is not None:
        assert len(new.trace) == len(ref.trace)
        for ra, rb in zip(new.trace.records, ref.trace.records):
            assert ra.slot == rb.slot
            assert ra.feedback is rb.feedback
            assert ra.n_transmitters == rb.n_transmitters
            assert ra.n_live == rb.n_live
            assert ra.jammed == rb.jammed
            assert ra.message_type == rb.message_type
            if math.isnan(rb.contention):
                assert math.isnan(ra.contention)
            else:
                assert ra.contention == rb.contention


CASES = [
    pytest.param(
        lambda: batch_instance(20, window=2048), lambda: uniform_factory(),
        id="uniform",
    ),
    pytest.param(
        lambda: single_class_instance(10, level=9),
        lambda: aligned_factory(ALIGNED),
        id="aligned",
    ),
    pytest.param(
        lambda: batch_instance(10, window=4096),
        lambda: punctual_factory(PUNCTUAL),
        id="punctual",
    ),
    pytest.param(
        lambda: batch_instance(24, window=4096), lambda: beb_factory(),
        id="beb",
    ),
]

JAMMERS = [
    pytest.param(lambda: None, id="nojam"),
    pytest.param(lambda: StochasticJammer(0.3), id="stochastic"),
    pytest.param(
        lambda: StochasticJammer(0.25, jam_silence=True), id="jam-silence"
    ),
    pytest.param(lambda: PeriodicJammer(7, [0, 3]), id="periodic"),
]


class TestEngineMatchesReference:
    @pytest.mark.parametrize("make_jammer", JAMMERS)
    @pytest.mark.parametrize("make_instance,make_factory", CASES)
    def test_identical_with_trace(self, make_instance, make_factory, make_jammer):
        for seed in (0, 3):
            new = simulate(
                make_instance(), make_factory(),
                jammer=make_jammer(), seed=seed, trace=True,
            )
            ref = _reference_simulate(
                make_instance(), make_factory(),
                jammer=make_jammer(), seed=seed, trace=True,
            )
            _assert_identical(new, ref)

    @pytest.mark.parametrize("make_instance,make_factory", CASES)
    def test_identical_without_trace(self, make_instance, make_factory):
        new = simulate(make_instance(), make_factory(), seed=1)
        ref = _reference_simulate(make_instance(), make_factory(), seed=1)
        _assert_identical(new, ref)

    def test_observer_callbacks_identical(self):
        def collect(log):
            def cb(outcome, ids):
                log.append((outcome.slot, outcome.feedback, ids))
            return cb

        new_log: list = []
        ref_log: list = []
        simulate(
            batch_instance(12, window=1024), uniform_factory(),
            seed=2, observers=[collect(new_log)],
        )
        _reference_simulate(
            batch_instance(12, window=1024), uniform_factory(),
            seed=2, observers=[collect(ref_log)],
        )
        assert new_log == ref_log

    def test_horizon_cut_identical(self):
        inst = batch_instance(8, window=2048)
        new = simulate(inst, uniform_factory(), seed=4, horizon=512)
        ref = _reference_simulate(inst, uniform_factory(), seed=4, horizon=512)
        _assert_identical(new, ref)

    def test_gapped_releases_identical(self):
        a = batch_instance(4, window=256)
        b = batch_instance(4, window=256).relabeled(start=50).shifted(5000)
        inst = a.merged(b)
        new = simulate(inst, uniform_factory(), seed=6, trace=True)
        ref = _reference_simulate(inst, uniform_factory(), seed=6, trace=True)
        _assert_identical(new, ref)


class TestPinnedSemantics:
    """Concrete pinned results for the current ENGINE_VERSION.

    The reference-equivalence tests above compare two implementations, so
    both would drift together if the RNG stream derivation changed.  These
    pins anchor the absolute semantics: any change to them must come with
    an ENGINE_VERSION bump (values below are for version 3, the blake2b
    stream keys)."""

    def _completions(self, res):
        return sorted(
            o.completion_slot for o in res.outcomes if o.succeeded
        )

    def test_version_is_pinned(self):
        from repro.sim.engine import ENGINE_VERSION

        assert ENGINE_VERSION == 3

    def test_uniform_pin(self):
        res = simulate(batch_instance(16, window=64), uniform_factory(), seed=1)
        assert res.n_succeeded == 12
        assert res.slots_simulated == 62
        assert self._completions(res) == [
            6, 14, 28, 32, 33, 36, 46, 47, 48, 49, 60, 61,
        ]

    def test_aligned_pin(self):
        res = simulate(
            single_class_instance(8, level=9), aligned_factory(ALIGNED), seed=2
        )
        assert res.n_succeeded == 8
        assert res.slots_simulated == 120
        assert self._completions(res) == [85, 87, 92, 94, 95, 106, 113, 119]

    def test_punctual_jammed_pin(self):
        res = simulate(
            batch_instance(6, window=2048),
            punctual_factory(PUNCTUAL),
            seed=3,
            jammer=StochasticJammer(0.2),
        )
        assert res.n_succeeded == 6
        assert res.slots_simulated == 523
        assert self._completions(res) == [302, 342, 352, 462, 502, 522]
