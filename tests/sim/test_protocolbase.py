"""Unit tests for the Protocol base-class contract."""

import numpy as np
import pytest

from repro.channel.feedback import Observation
from repro.channel.messages import ControlMessage, DataMessage
from repro.errors import ProtocolViolationError
from repro.sim.protocolbase import Protocol, ProtocolContext


class EchoProtocol(Protocol):
    """Transmits its data message every slot (test double)."""

    def on_act(self, slot):
        return DataMessage(self.ctx.job_id)


class SilentProtocol(Protocol):
    def on_act(self, slot):
        return None


def ctx(job_id=1, window=8):
    return ProtocolContext(job_id, window, np.random.default_rng(0))


class TestLifecycle:
    def test_begin_required_before_act(self):
        p = EchoProtocol(ctx())
        with pytest.raises(ProtocolViolationError):
            p.act(0)

    def test_begin_twice_rejected(self):
        p = EchoProtocol(ctx())
        p.begin(0)
        with pytest.raises(ProtocolViolationError):
            p.begin(1)

    def test_act_observe_pairing(self):
        p = EchoProtocol(ctx())
        p.begin(0)
        p.act(0)
        with pytest.raises(ProtocolViolationError):
            p.act(1)

    def test_observe_requires_act(self):
        p = EchoProtocol(ctx())
        p.begin(0)
        with pytest.raises(ProtocolViolationError):
            p.observe(0, Observation.silence())

    def test_local_age(self):
        p = SilentProtocol(ctx())
        p.begin(10)
        assert p.local_age(10) == 0
        assert p.local_age(13) == 3


class TestSuccessDetection:
    def test_own_data_success_sets_flag(self):
        p = EchoProtocol(ctx(job_id=5))
        p.begin(0)
        msg = p.act(0)
        assert isinstance(msg, DataMessage)
        p.observe(0, Observation.success(msg, transmitted=True, own=True))
        assert p.succeeded
        assert p.done

    def test_foreign_success_does_not(self):
        p = SilentProtocol(ctx(job_id=5))
        p.begin(0)
        p.act(0)
        p.observe(0, Observation.success(DataMessage(6)))
        assert not p.succeeded

    def test_own_control_success_does_not_complete(self):
        class ControlTx(Protocol):
            def on_act(self, slot):
                return ControlMessage(self.ctx.job_id)

        p = ControlTx(ctx(job_id=2))
        p.begin(0)
        msg = p.act(0)
        p.observe(0, Observation.success(msg, transmitted=True, own=True))
        assert not p.succeeded

    def test_transmission_counter(self):
        p = EchoProtocol(ctx())
        p.begin(0)
        for t in range(3):
            p.act(t)
            p.observe(t, Observation.noise(transmitted=True))
        assert p.transmissions == 3

    def test_done_protocol_stays_silent(self):
        p = EchoProtocol(ctx())
        p.begin(0)
        p.gave_up = True
        assert p.act(0) is None
        assert p.transmissions == 0
