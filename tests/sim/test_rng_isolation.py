"""Stream-isolation tests: jamming must not perturb protocol randomness.

The RngFactory design promises paired comparisons: the jammer draws from
its own stream, so enabling a jammer that never fires yields *bit
identical* protocol behaviour, and enabling one that does fire perturbs
only the outcomes it directly touches.
"""

import warnings

import numpy as np

from repro.channel.jamming import PeriodicJammer, StochasticJammer
from repro.core.aligned import aligned_factory
from repro.core.uniform import uniform_factory
from repro.params import AlignedParams
from repro.sim.engine import simulate
from repro.workloads import batch_instance, single_class_instance


class TestPairedRandomness:
    def test_never_firing_periodic_jammer_is_identical(self):
        inst = batch_instance(16, window=256)
        plain = simulate(inst, uniform_factory(), seed=3)
        jammed = simulate(
            inst,
            uniform_factory(),
            jammer=PeriodicJammer(10_000, [9_999]),
            seed=3,
        )
        assert [o.completion_slot for o in plain.outcomes] == [
            o.completion_slot for o in jammed.outcomes
        ]

    def test_zero_probability_stochastic_jammer_is_identical(self):
        inst = single_class_instance(8, level=8)
        params = AlignedParams(lam=1, tau=4, min_level=8)
        plain = simulate(inst, aligned_factory(params), seed=5)
        jammed = simulate(
            inst,
            aligned_factory(params),
            jammer=StochasticJammer(0.0),
            seed=5,
        )
        assert [o.completion_slot for o in plain.outcomes] == [
            o.completion_slot for o in jammed.outcomes
        ]

    def test_uniform_choices_survive_jamming(self):
        """UNIFORM's chosen slots are a pure function of the seed: full
        jamming changes outcomes but not *when* jobs transmit."""
        inst = batch_instance(8, window=128)
        plain = simulate(inst, uniform_factory(), seed=1, trace=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # deliberately past 1/2
            jam = StochasticJammer(1.0)
        jammed = simulate(
            inst,
            uniform_factory(),
            jammer=jam,
            seed=1,
            trace=True,
        )
        # same transmission pattern per slot...
        tx_plain = [r.n_transmitters for r in plain.trace.records]
        tx_jam = [r.n_transmitters for r in jammed.trace.records]
        assert tx_plain == tx_jam
        # ...but zero successes under certain jamming
        assert jammed.n_succeeded == 0
