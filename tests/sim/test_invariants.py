"""Runtime invariant checker: unit-level audits and end-to-end catches."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.channel.feedback import Observation
from repro.channel.messages import DataMessage, Message
from repro.core.uniform import uniform_factory
from repro.errors import InvariantViolationError
from repro.faults import FaultPlan, FeedbackFault
from repro.sim.engine import simulate
from repro.sim.invariants import InvariantChecker
from repro.sim.job import Job
from repro.sim.protocolbase import Protocol, ProtocolContext
from repro.workloads import batch_instance


def make_job(job_id=0, release=0, deadline=100):
    return Job(job_id=job_id, release=release, deadline=deadline)


class StubProtocol:
    """Bare attribute bag standing in for a Protocol in unit tests."""

    def __init__(self, succeeded=False, gave_up=False, transmissions=0,
                 last_p=0.0):
        self.succeeded = succeeded
        self.gave_up = gave_up
        self.transmissions = transmissions
        self.last_p = last_p


class DoubleSendProtocol(Protocol):
    """Deliberately broken: ignores its own success and keeps sending.

    ``observe`` skips the base class entirely, so ``succeeded`` is never
    set and the engine keeps driving the machine — it re-transmits its
    already-delivered message every slot.  The engine's own finalize
    cross-check cannot see this (ground-truth delivery did happen); only
    the per-slot audit catches the duplicate delivery.
    """

    __slots__ = ()

    def act(self, slot: int) -> Optional[Message]:
        self._awaiting_observation = True
        return DataMessage(self.ctx.job_id)

    def observe(self, slot: int, obs: Observation) -> None:
        self._awaiting_observation = False

    def on_act(self, slot: int) -> Optional[Message]:  # pragma: no cover
        return None


class TestUnitChecks:
    def test_activation_outside_window(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolationError, match="outside its window"):
            checker.on_activate(make_job(release=10), StubProtocol(), 5)

    def test_delivery_for_unknown_job(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolationError, match="never activated"):
            checker.after_slot(3, delivered=42, live_ids=[], live_protos=[],
                              tx_idx=[])

    def test_duplicate_delivery(self):
        checker = InvariantChecker()
        proto = StubProtocol()
        checker.on_activate(make_job(7), proto, 0)
        checker.after_slot(1, 7, [7], [proto], [])
        with pytest.raises(InvariantViolationError, match="duplicate delivery"):
            checker.after_slot(2, 7, [7], [proto], [])

    def test_duplicate_delivery_relaxed_under_erasure(self):
        checker = InvariantChecker(allow_redelivery=True)
        proto = StubProtocol()
        checker.on_activate(make_job(7), proto, 0)
        checker.after_slot(1, 7, [7], [proto], [])
        checker.after_slot(2, 7, [7], [proto], [])
        assert checker.deliveries == {7: 1}  # first delivery wins

    def test_transmission_after_known_success(self):
        checker = InvariantChecker()
        proto = StubProtocol(succeeded=True, transmissions=1)
        checker.on_activate(make_job(3), proto, 0)
        with pytest.raises(InvariantViolationError, match="double-send"):
            checker.after_slot(1, -1, [3], [proto], [0])

    def test_succeeded_must_not_revert(self):
        checker = InvariantChecker()
        proto = StubProtocol(succeeded=True)
        checker.on_activate(make_job(1), proto, 0)
        proto.succeeded = False
        with pytest.raises(InvariantViolationError, match="reverted"):
            checker.after_slot(1, -1, [1], [proto], [])

    def test_gave_up_must_not_revert(self):
        checker = InvariantChecker()
        proto = StubProtocol(gave_up=True)
        checker.on_activate(make_job(1), proto, 0)
        proto.gave_up = False
        with pytest.raises(InvariantViolationError, match="reverted"):
            checker.after_slot(1, -1, [1], [proto], [])

    def test_transmission_counter_must_not_decrease(self):
        checker = InvariantChecker()
        proto = StubProtocol(transmissions=5)
        checker.on_activate(make_job(1), proto, 0)
        proto.transmissions = 4
        with pytest.raises(InvariantViolationError, match="decreased"):
            checker.after_slot(1, -1, [1], [proto], [])

    def test_last_p_out_of_range(self):
        checker = InvariantChecker()
        proto = StubProtocol(last_p=1.5)
        checker.on_activate(make_job(1), proto, 0)
        with pytest.raises(InvariantViolationError, match="last_p"):
            checker.after_slot(1, -1, [1], [proto], [])

    def test_clean_sequence_passes(self):
        checker = InvariantChecker()
        proto = StubProtocol()
        checker.on_activate(make_job(1), proto, 0)
        proto.transmissions = 1
        checker.after_slot(0, -1, [1], [proto], [0])
        proto.succeeded = True
        checker.after_slot(1, 1, [1], [proto], [0])
        assert checker.slots_checked == 2
        assert checker.deliveries == {1: 1}


class TestEndToEnd:
    def factory(self, job, rng):
        return DoubleSendProtocol(ProtocolContext.for_job(job, rng))

    def test_checker_catches_double_send_protocol(self):
        inst = batch_instance(1, window=64)
        with pytest.raises(InvariantViolationError, match="duplicate delivery"):
            simulate(inst, self.factory, seed=0, invariants=True)

    def test_without_invariants_bug_goes_unnoticed(self):
        # The finalize cross-check sees a delivered job and calls it a
        # success; nothing flags the re-sends.  This contrast is the
        # reason the runtime audit exists.
        inst = batch_instance(1, window=64)
        res = simulate(inst, self.factory, seed=0)
        assert res.n_succeeded == 1

    def test_clean_protocols_pass_audit(self):
        inst = batch_instance(12, window=1024)
        res = simulate(inst, uniform_factory(), seed=1, invariants=True)
        assert len(res) == 12

    def test_erasure_fault_sets_allow_redelivery(self):
        # A *correct* transmitter that never learns of its success will
        # legitimately re-send; with the erasure fault active the engine
        # must relax only the duplicate-delivery check.
        inst = batch_instance(6, window=512)
        plan = FaultPlan(
            feedback=FeedbackFault(
                p_success_erasure=1.0, affect_transmitters=True
            )
        )
        res = simulate(
            inst, uniform_factory(), seed=2, faults=plan, invariants=True
        )
        assert res.n_succeeded == len(res)
