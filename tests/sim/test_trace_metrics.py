"""Unit tests for trace recording and result metrics."""

import numpy as np
import pytest

from repro.channel.channel import SlotOutcome
from repro.channel.feedback import Feedback
from repro.channel.messages import DataMessage
from repro.sim.instance import Instance
from repro.sim.job import Job, JobStatus
from repro.sim.metrics import JobOutcome, SimulationResult
from repro.sim.trace import TraceRecorder


def out(slot, feedback, n_tx=0, msg=None, jammed=False):
    return SlotOutcome(slot, feedback, msg, n_tx, jammed)


class TestTraceRecorder:
    def test_records_fields(self):
        tr = TraceRecorder()
        tr.record(out(0, Feedback.SILENCE), n_live=3)
        tr.record(out(1, Feedback.SUCCESS, 1, DataMessage(2)), n_live=3, contention=0.5)
        tr.record(out(2, Feedback.NOISE, 2), n_live=2)
        assert len(tr) == 3
        assert tr.records[1].message_type == "DataMessage"
        assert tr.records[1].contention == 0.5
        assert np.isnan(tr.records[0].contention)

    def test_feedback_codes(self):
        tr = TraceRecorder()
        tr.record(out(0, Feedback.SILENCE), 1)
        tr.record(out(1, Feedback.SUCCESS, 1, DataMessage(0)), 1)
        tr.record(out(2, Feedback.NOISE, 2), 1)
        assert list(tr.feedback_codes()) == [0, 1, 2]

    def test_utilization_and_collision_rate(self):
        tr = TraceRecorder()
        tr.record(out(0, Feedback.SUCCESS, 1, DataMessage(0)), 1)
        tr.record(out(1, Feedback.NOISE, 2), 1)
        tr.record(out(2, Feedback.SILENCE), 1)
        tr.record(out(3, Feedback.SILENCE), 1)
        assert tr.utilization() == pytest.approx(0.25)
        assert tr.collision_rate() == pytest.approx(0.25)

    def test_empty_rates(self):
        tr = TraceRecorder()
        assert tr.utilization() == 0.0
        assert tr.collision_rate() == 0.0

    def test_success_slots(self):
        tr = TraceRecorder()
        tr.record(out(5, Feedback.SUCCESS, 1, DataMessage(0)), 1)
        tr.record(out(6, Feedback.SILENCE), 1)
        tr.record(out(7, Feedback.SUCCESS, 1, DataMessage(1)), 1)
        assert list(tr.success_slots()) == [5, 7]


def outcome(jid, r, d, status, comp=-1, tx=0):
    return JobOutcome(Job(jid, r, d), status, comp, tx)


class TestSimulationResult:
    def make_result(self):
        jobs = [Job(0, 0, 8), Job(1, 0, 8), Job(2, 8, 24)]
        outs = (
            outcome(0, 0, 8, JobStatus.SUCCEEDED, comp=3, tx=1),
            outcome(1, 0, 8, JobStatus.FAILED, tx=2),
            outcome(2, 8, 24, JobStatus.SUCCEEDED, comp=10, tx=1),
        )
        return SimulationResult(Instance(jobs), outs, slots_simulated=24)

    def test_success_rate(self):
        res = self.make_result()
        assert res.n_succeeded == 2
        assert res.success_rate == pytest.approx(2 / 3)

    def test_missed(self):
        res = self.make_result()
        assert [o.job.job_id for o in res.missed] == [1]

    def test_success_by_window(self):
        res = self.make_result()
        table = res.success_by_window()
        assert table[8] == (1, 2)
        assert table[16] == (1, 1)

    def test_latencies(self):
        res = self.make_result()
        assert sorted(res.latencies().tolist()) == [3, 4]

    def test_latency_of_failure_is_minus_one(self):
        res = self.make_result()
        assert res.outcome_of(1).latency == -1

    def test_normalized_latencies_in_unit_interval(self):
        res = self.make_result()
        norm = res.normalized_latencies()
        assert np.all(norm > 0) and np.all(norm <= 1)

    def test_transmission_counts(self):
        res = self.make_result()
        assert res.transmission_counts().sum() == 4

    def test_summary_mentions_rates(self):
        text = self.make_result().summary()
        assert "success: 2/3" in text
