"""Trace JSONL round-trip and nan-aware contention reductions."""

import math
import warnings

import numpy as np
import pytest

from repro.channel.channel import SlotOutcome
from repro.channel.feedback import Feedback
from repro.channel.jamming import StochasticJammer
from repro.channel.messages import DataMessage
from repro.core.punctual import punctual_factory
from repro.params import PunctualParams
from repro.sim.engine import simulate
from repro.sim.instance import Instance
from repro.sim.job import Job
from repro.sim.trace import SlotRecord, TraceRecorder


def out(slot, feedback, n_tx=0, msg=None, jammed=False):
    return SlotOutcome(slot, feedback, msg, n_tx, jammed)


def same_records(a, b):
    """Field-wise SlotRecord equality with nan-tolerant contention
    (``nan != nan`` defeats plain dataclass equality)."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if (x.slot, x.feedback, x.n_transmitters, x.n_live, x.jammed,
                x.message_type) != (y.slot, y.feedback, y.n_transmitters,
                                    y.n_live, y.jammed, y.message_type):
            return False
        if x.contention != y.contention and not (
            math.isnan(x.contention) and math.isnan(y.contention)
        ):
            return False
    return True


def _sample_recorder():
    tr = TraceRecorder()
    tr.record(out(0, Feedback.SILENCE), n_live=3)
    tr.record(out(1, Feedback.SUCCESS, 1, DataMessage(2)), n_live=3, contention=0.5)
    tr.record(out(2, Feedback.NOISE, 2, jammed=True), n_live=2, contention=1.75)
    return tr


class TestSlotRecordRoundTrip:
    def test_record_round_trips(self):
        rec = SlotRecord(
            slot=4,
            feedback=Feedback.SUCCESS,
            n_transmitters=1,
            n_live=2,
            contention=0.25,
            jammed=False,
            message_type="BeaconMessage",
        )
        assert SlotRecord.from_record(rec.as_record()) == rec

    def test_nan_contention_encodes_as_none(self):
        rec = SlotRecord(0, Feedback.SILENCE, 0, 1, float("nan"), False, "")
        d = rec.as_record()
        assert d["contention"] is None
        back = SlotRecord.from_record(d)
        assert math.isnan(back.contention)


class TestTraceRecorderRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        tr = _sample_recorder()
        path = tr.write_jsonl(tmp_path / "trace.jsonl")
        back = TraceRecorder.read_jsonl(path)
        assert same_records(back.records, tr.records)
        assert np.array_equal(
            back.contentions(), tr.contentions(), equal_nan=True
        )
        assert list(back.feedback_codes()) == list(tr.feedback_codes())

    def test_round_trip_preserves_jammed_slots(self, tmp_path):
        tr = _sample_recorder()
        back = TraceRecorder.read_jsonl(tr.write_jsonl(tmp_path / "t.jsonl"))
        assert [r.jammed for r in back.records] == [False, False, True]

    def test_simulated_punctual_trace_round_trips(self, tmp_path):
        """End-to-end: a jammed punctual run (whose deliveries ride on
        beacons as well as plain data) survives the JSONL round-trip."""
        inst = Instance([Job(i, 0, 4096) for i in range(8)])
        result = simulate(
            inst,
            punctual_factory(PunctualParams()),
            seed=3,  # this seed's run carries a beacon delivery + a jam
            jammer=StochasticJammer(0.1),
            trace=True,
        )
        tr = result.trace
        back = TraceRecorder.read_jsonl(tr.write_jsonl(tmp_path / "run.jsonl"))
        assert same_records(back.records, tr.records)
        types = {r.message_type for r in back.records if r.message_type}
        assert "TimekeeperBeacon" in types  # piggybacked deliveries preserved
        assert any(r.jammed for r in back.records)

    def test_from_records_accepts_generator(self):
        tr = _sample_recorder()
        back = TraceRecorder.from_records(iter(tr.to_records()))
        assert same_records(back.records, tr.records)


class TestNanAwareContention:
    """Regression tests: one listen-only (nan) slot must not poison the
    contention aggregates, and all-nan traces must reduce quietly."""

    def test_mixed_nan_slots_are_ignored(self):
        tr = _sample_recorder()  # contentions: nan, 0.5, 1.75
        assert tr.mean_contention() == pytest.approx(1.125)
        assert tr.max_contention() == pytest.approx(1.75)
        pcts = tr.contention_percentiles((50.0,))
        assert pcts[50.0] == pytest.approx(1.125)

    def test_all_nan_trace_reduces_to_nan_without_warning(self):
        tr = TraceRecorder()
        tr.record(out(0, Feedback.SILENCE), n_live=1)
        tr.record(out(1, Feedback.SILENCE), n_live=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert math.isnan(tr.mean_contention())
            assert math.isnan(tr.max_contention())
            assert all(
                math.isnan(v)
                for v in tr.contention_percentiles().values()
            )

    def test_empty_trace_reduces_to_nan(self):
        tr = TraceRecorder()
        assert math.isnan(tr.mean_contention())
        assert math.isnan(tr.max_contention())
