"""Unit tests for γ-slack feasibility (peak density + EDF cross-check)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sim.feasibility import (
    is_slack_feasible,
    peak_density,
    slack_of,
    verify_edf_schedulable,
)
from repro.sim.instance import Instance
from repro.sim.job import Job


def make(jobs):
    return Instance(Job(i, r, d) for i, (r, d) in enumerate(jobs))


class TestPeakDensity:
    def test_empty(self):
        rep = peak_density(Instance(()))
        assert rep.density == 0.0

    def test_single_job(self):
        rep = peak_density(make([(0, 4)]))
        assert rep.density == pytest.approx(0.25)
        assert rep.interval == (0, 4)
        assert rep.nested_jobs == 1

    def test_two_jobs_same_window(self):
        rep = peak_density(make([(0, 4), (0, 4)]))
        assert rep.density == pytest.approx(0.5)

    def test_nested_windows_aggregate(self):
        # 2 jobs in [0,4), 2 jobs in [0,8): densest interval is [0,4)
        rep = peak_density(make([(0, 4), (0, 4), (0, 8), (0, 8)]))
        assert rep.density == pytest.approx(0.5)
        assert rep.interval == (0, 4)
        # the interval [0,8) holds all 4: density 0.5 too

    def test_disjoint_windows(self):
        rep = peak_density(make([(0, 10), (10, 20)]))
        assert rep.density == pytest.approx(0.1)

    def test_overlapping_but_not_nested_ignored(self):
        # a job overlapping the probe interval but not nested doesn't count
        rep = peak_density(make([(0, 8), (4, 12)]))
        # best interval is [0,8) or [4,12) with 1 job each, or [0,12) with 2
        assert rep.density == pytest.approx(2 / 12)

    def test_full_density(self):
        rep = peak_density(make([(0, 1), (1, 2), (2, 3)]))
        assert rep.density == pytest.approx(1.0)


class TestSlackFeasible:
    def test_gamma_validation(self):
        with pytest.raises(InvalidParameterError):
            is_slack_feasible(make([(0, 4)]), 0.0)
        with pytest.raises(InvalidParameterError):
            is_slack_feasible(make([(0, 4)]), 1.5)

    def test_feasible_and_not(self):
        inst = make([(0, 4), (0, 4)])  # density 1/2
        assert is_slack_feasible(inst, 0.5)
        assert not is_slack_feasible(inst, 0.25)

    def test_slack_of(self):
        assert slack_of(make([(0, 8)])) == pytest.approx(0.125)


class TestEdfCrossCheck:
    def test_feasible_instance_schedules(self):
        inst = make([(0, 4), (0, 4), (0, 4), (0, 4)])
        assert verify_edf_schedulable(inst) is None

    def test_overfull_instance_misses(self):
        inst = make([(0, 2), (0, 2), (0, 2)])
        assert verify_edf_schedulable(inst) is not None

    def test_message_length_scales(self):
        # density 1/4 ⇒ schedulable with message length 4, not 5
        inst = make([(0, 8), (0, 8)])
        assert verify_edf_schedulable(inst, message_length=4) is None
        assert verify_edf_schedulable(inst, message_length=5) is not None

    def test_bad_message_length(self):
        with pytest.raises(InvalidParameterError):
            verify_edf_schedulable(make([(0, 4)]), message_length=0)

    def test_density_edf_consistency_random(self):
        """Interval condition <=> EDF schedulability, on random instances."""
        rng = np.random.default_rng(7)
        for trial in range(30):
            jobs = []
            for i in range(rng.integers(1, 15)):
                r = int(rng.integers(0, 30))
                w = int(rng.integers(1, 12))
                jobs.append(Job(i, r, r + w))
            inst = Instance(jobs)
            c = int(rng.integers(1, 4))
            dens_ok = peak_density(inst).density <= 1.0 / c + 1e-12
            edf_ok = verify_edf_schedulable(inst, message_length=c) is None
            assert dens_ok == edf_ok, f"trial {trial}: density vs EDF disagree"
