"""Unit tests for jobs and window arithmetic."""

import pytest

from repro.errors import InvalidInstanceError
from repro.sim.job import Job, JobStatus, is_power_of_two, window_class


class TestPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for x in [0, -1, -8, 3, 5, 6, 7, 12, 100]:
            assert not is_power_of_two(x)

    def test_window_class(self):
        assert window_class(1) == 0
        assert window_class(2) == 1
        assert window_class(1024) == 10

    def test_window_class_rejects_non_power(self):
        with pytest.raises(InvalidInstanceError):
            window_class(6)


class TestJob:
    def test_window_size(self):
        assert Job(0, 5, 13).window == 8

    def test_rejects_empty_window(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 5, 5)
        with pytest.raises(InvalidInstanceError):
            Job(0, 5, 3)

    def test_rejects_negative_release(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, -1, 4)

    def test_alignment(self):
        assert Job(0, 16, 32).is_aligned
        assert Job(0, 0, 8).is_aligned
        assert not Job(0, 8, 24).is_aligned  # size 16, release not multiple

    def test_alignment_cases(self):
        assert Job(0, 0, 1).is_aligned  # size 1 at 0
        assert Job(0, 7, 8).is_aligned  # size 1 anywhere
        assert not Job(0, 4, 12).is_aligned  # size 8 at 4
        assert not Job(0, 0, 12).is_aligned  # size 12 not a power

    def test_job_class(self):
        assert Job(0, 32, 64).job_class == 5

    def test_job_class_rejects_unaligned(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 1, 9).job_class

    def test_contains_and_age(self):
        j = Job(0, 10, 20)
        assert j.contains(10)
        assert j.contains(19)
        assert not j.contains(9)
        assert not j.contains(20)
        assert j.local_age(10) == 0
        assert j.local_age(15) == 5

    def test_shifted(self):
        j = Job(1, 4, 8).shifted(12)
        assert (j.release, j.deadline) == (16, 20)
        assert j.job_id == 1

    def test_overlaps(self):
        a = Job(0, 0, 10)
        b = Job(1, 9, 20)
        c = Job(2, 10, 20)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_nested_in(self):
        inner = Job(0, 4, 8)
        outer = Job(1, 0, 16)
        assert inner.nested_in(outer)
        assert not outer.nested_in(inner)
        assert inner.nested_in(inner)


class TestJobStatus:
    def test_terminal(self):
        assert JobStatus.SUCCEEDED.terminal
        assert JobStatus.FAILED.terminal
        assert JobStatus.GAVE_UP.terminal
        assert not JobStatus.PENDING.terminal
        assert not JobStatus.LIVE.terminal
